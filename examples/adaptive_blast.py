#!/usr/bin/env python3
"""The full production loop: adaptive meshing around a blast wave.

Runs the complete cycle a production campaign performs — and in doing
so *creates* the temporal-level structure the paper's partitioning
problem is about:

    uniform mesh → blast → solve → refine where the front is →
    conservative transfer → re-derive levels → re-partition → repeat

Prints, per cycle: mesh size, where the refinement sits, conservation
error, and the SC_OC/MC_TL makespan ratio on that mesh generation —
watch it rise from ×1.0 (single-level mesh) as adaptation builds the
multi-level structure.

Run:  python examples/adaptive_blast.py
"""

import numpy as np

from repro.experiments import adaptation_study
from repro.viz import render_stacked_bars


def main() -> None:
    print("Running 4 adapt→solve cycles on an expanding blast wave…\n")
    result = adaptation_study.run(
        base_depth=5, max_depth=7, cycles=4, iterations_per_cycle=3
    )
    print(adaptation_study.report(result))

    cells = np.array([[c.num_cells] for c in result.cycles], dtype=float)
    print("\nmesh growth per cycle:")
    print(render_stacked_bars(cells, row_label="cycle", width=50))

    speedups = [c.speedup for c in result.cycles]
    print(
        "\nMC_TL speedup per cycle: "
        + "  ".join(f"×{s:.2f}" for s in speedups)
    )
    print(
        "\nCycle 0's mesh is uniform (one temporal level) so the two "
        "strategies coincide; once the front refines the mesh, the "
        "temporal-level classes appear and MC_TL pulls ahead — the "
        "paper's phenomenon, generated from physics rather than by "
        "construction."
    )


if __name__ == "__main__":
    main()
