#!/usr/bin/env python3
"""Blast-wave simulation with temporal-adaptive local time stepping.

One of the paper's motivating applications is "blast wave propagation
during rocket take-off".  This example runs the real finite-volume
solver on the CUBE replica mesh:

1. initializes a Gaussian pressure pulse;
2. derives per-cell stable time steps (CFL) and temporal levels;
3. advances several *iterations* of the temporal-adaptive scheme
   executed through the task graph (mini-FLUSEPA), while tracking the
   wave front and conservation errors;
4. compares the operation count against uniform (global-minimum)
   time stepping — the whole point of the adaptive scheme.

Run:  python examples/blast_wave_simulation.py
"""

import numpy as np

from repro.mesh import cube_mesh, level_statistics
from repro.partitioning import make_decomposition
from repro.solver import (
    LTSState,
    TaskDistributedSolver,
    blast_wave,
    pressure,
)
from repro.solver.timestep import stable_timesteps
from repro.temporal import levels_from_depth, num_subiterations, operating_costs


def main() -> None:
    mesh = cube_mesh(max_depth=9)
    tau = levels_from_depth(mesh, num_levels=4)
    stats = level_statistics(mesh, tau)
    print(
        f"mesh: {mesh.num_cells} cells; %cells per τ = "
        + " ".join(f"{100 * f:.1f}%" for f in stats.cell_fraction)
    )

    # Blast centred on the first hotspot (where the mesh is finest).
    U0 = blast_wave(mesh, center=(0.2, 0.25), radius=0.03, p_ratio=8.0)
    dt_min = float((stable_timesteps(mesh, U0) / np.exp2(tau)).min())
    nsub = num_subiterations(int(tau.max()))
    print(f"dt_min = {dt_min:.3e}, {nsub} subiterations per iteration")

    # The adaptive scheme's advantage: cell updates per iteration.
    adaptive_updates = operating_costs(tau).sum()
    uniform_updates = mesh.num_cells * nsub
    print(
        f"cell updates per iteration: adaptive {adaptive_updates:.0f} vs "
        f"uniform {uniform_updates} "
        f"(×{uniform_updates / adaptive_updates:.2f} saved)"
    )

    decomp = make_decomposition(mesh, tau, 8, 4, strategy="MC_TL", seed=0)
    solver = TaskDistributedSolver(mesh, tau, decomp, dt_min)
    state = LTSState(U0)

    mass0, _, _, energy0 = state.conserved_total(mesh)
    print(f"\n{'iter':>4} {'time':>10} {'p_max':>8} {'front_r':>8} "
          f"{'mass_err':>10} {'energy_err':>10}")
    t = 0.0
    for it in range(8):
        solver.run_iteration(state)
        t += nsub * dt_min
        p = pressure(state.U)
        # Wave front: outermost cell with overpressure > 5%.
        over = p > 1.05
        if over.any():
            r = np.hypot(
                mesh.cell_centers[over, 0] - 0.2,
                mesh.cell_centers[over, 1] - 0.25,
            ).max()
        else:
            r = float("nan")
        mass, _, _, energy = state.conserved_total(mesh)
        print(
            f"{it:>4} {t:>10.4f} {p.max():>8.3f} {r:>8.3f} "
            f"{abs(mass - mass0) / mass0:>10.2e} "
            f"{abs(energy - energy0) / energy0:>10.2e}"
        )

    print(
        "\nThe wave front expands, the peak decays, and mass/energy are "
        "conserved to machine precision — the conservative LTS scheme at "
        "work."
    )


if __name__ == "__main__":
    main()
