#!/usr/bin/env python3
"""Using ``repro.graph`` as a general multi-constraint partitioner.

The partitioning engine is independent of meshes: it accepts any CSR
graph with multi-column vertex weights — the METIS-style
multi-constraint interface of the paper's §V.  This example partitions
a synthetic social-network-like graph so that *three* vertex classes
(say, three job types in a heterogeneous workload) are each spread
evenly across four compute nodes while minimizing cut edges.

Run:  python examples/custom_partitioner.py
"""

import numpy as np

from repro.graph import (
    edge_cut,
    graph_from_edges,
    imbalance,
    part_weights,
    partition_graph,
    parts_connected,
)


def community_graph(rng, communities=8, size=150, p_in=0.1, p_out=0.002):
    """A planted-partition random graph."""
    n = communities * size
    edges = []
    for c in range(communities):
        lo = c * size
        for i in range(lo, lo + size):
            for j in range(i + 1, lo + size):
                if rng.random() < p_in:
                    edges.append((i, j))
    # Sparse inter-community edges.
    m_out = int(p_out * n * n / 2)
    for _ in range(m_out):
        i, j = rng.integers(0, n, 2)
        if i != j:
            edges.append((int(min(i, j)), int(max(i, j))))
    return n, np.array(edges)


def main() -> None:
    rng = np.random.default_rng(42)
    n, edges = community_graph(rng)

    # Three workload classes, deliberately correlated with communities
    # (the hard case — like temporal levels clustering in space).
    cls = (np.arange(n) // (n // 3)).clip(0, 2)
    vwgt = np.zeros((n, 3))
    vwgt[np.arange(n), cls] = 1.0

    g = graph_from_edges(n, edges, vwgt=vwgt)
    print(f"graph: {g.num_vertices} vertices, {g.num_edges} edges, "
          f"3 balance constraints")

    for label, weights in [
        ("single-constraint (total count only)", None),
        ("multi-constraint (every class balanced)", vwgt),
    ]:
        gg = g.with_vwgt(
            weights if weights is not None else np.ones((n, 1))
        )
        res = partition_graph(gg, 4, seed=0)
        # Evaluate class balance regardless of what was optimized.
        per_class = np.zeros((4, 3))
        np.add.at(per_class, (res.part, cls), 1.0)
        worst = (per_class.max(axis=0) / per_class.mean(axis=0)).max()
        print(f"\n{label}:")
        print(f"  edge cut            : {res.cut:.0f}")
        print(f"  worst class skew    : {worst:.2f}  (1.00 = perfect)")
        print(f"  per-part class count:\n"
              + "\n".join(
                  "    part {}: {}".format(p, per_class[p].astype(int))
                  for p in range(4)
              ))
        conn = parts_connected(gg, res.part, 4)
        print(f"  connected parts     : {conn.sum()}/4")


if __name__ == "__main__":
    main()
