#!/usr/bin/env python3
"""Automatic domain-granularity selection (paper §IX perspective).

"We are currently exploring ways to automatically determine the best
domain granularity with respect to the target machine's number of
cores."  This example runs that exploration: for a given cluster it
sweeps domain counts for both strategies under three cost regimes
(idealized, with per-task runtime overhead, and with a communication
penalty) and prints the selected granularity plus the whole objective
curve — showing *why* granularity cannot simply be "as fine as
possible".

Run:  python examples/granularity_tuning.py
"""

from repro.experiments import granularity_study


def main() -> None:
    result = granularity_study.run(
        mesh_name="cylinder", processes=8, cores=16
    )
    print(
        "Objective curves (domains:objective) per strategy and cost "
        "regime;\nbest = argmin of makespan + overhead/comm penalties:\n"
    )
    print(granularity_study.report(result))
    print()
    for strategy in ("SC_OC", "MC_TL"):
        free = result.best_domains(strategy, "free")
        full = result.best_domains(strategy, "overhead+comm")
        print(
            f"{strategy}: idealized optimum {free} domains; with runtime "
            f"overheads the tuner backs off to {full}."
        )
    print(
        "\nFiner granularity improves pipelining until per-task overhead "
        "and communication dominate — the trade the paper describes in "
        "§IV and proposes to automate in its conclusion."
    )


if __name__ == "__main__":
    main()
