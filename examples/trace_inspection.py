#!/usr/bin/env python3
"""Trace export and inspection workflow.

Simulates one iteration under both strategies, exports the traces to
JSON/CSV/Paje (the ViTE-compatible format used around StarPU, the
paper's runtime), and prints a per-subiteration occupancy analysis —
the numbers behind the Gantt charts.

Run:  python examples/trace_inspection.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.experiments.common import run_flusim
from repro.flusim.export import write_csv, write_json, write_paje


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("traces")
    out_dir.mkdir(parents=True, exist_ok=True)

    for strategy in ("SC_OC", "MC_TL"):
        dag, trace, metrics = run_flusim(
            "cylinder", 32, 8, 8, strategy, scale=9
        )
        base = out_dir / f"cylinder_{strategy.lower()}"
        write_json(trace, dag, base.with_suffix(".json"))
        write_csv(trace, dag, base.with_suffix(".csv"))
        write_paje(trace, dag, base.with_suffix(".paje"))
        print(f"{strategy}: exported {base}.{{json,csv,paje}}")

        # Per-subiteration occupancy: busy core-time over the
        # subiteration's wall-clock window, per process.
        t = dag.tasks
        nsub = int(t.subiteration.max()) + 1
        print(f"  makespan {metrics.makespan:.0f}, efficiency "
              f"{metrics.efficiency:.2f}")
        print("  subiteration:  " + "  ".join(f"{s:>6d}" for s in range(nsub)))
        busy = np.zeros(nsub)
        span = np.zeros(nsub)
        for s in range(nsub):
            sel = t.subiteration == s
            if not sel.any():
                continue
            busy[s] = (trace.end[sel] - trace.start[sel]).sum()
            span[s] = trace.end[sel].max() - trace.start[sel].min()
        occ = busy / np.maximum(span * trace.num_processes
                                * trace.cores_per_process, 1e-300)
        print("  occupancy:     " + "  ".join(f"{o:6.2f}" for o in occ))
        print()

    print(
        "Open the .paje files with ViTE (vite <file>) for the same "
        "Gantt views as the paper's figures; the .csv loads directly "
        "into pandas."
    )


if __name__ == "__main__":
    main()
