#!/usr/bin/env python3
"""Installed-jet-noise style study on the PPRIME_NOZZLE replica.

Mirrors the paper's production validation (§VII, Fig. 13): the real
finite-volume solver runs a jet-flow configuration through the task
graph, every task is wall-clock timed, and the measured durations are
replayed on a virtual 6-process × 4-core cluster for both partitioning
strategies.  Prints the per-strategy makespans, the improvement, and
the per-process busy times.

Run:  python examples/jet_noise_study.py           (~1 minute)
      python examples/jet_noise_study.py --small   (quick, ~10 s)
"""

import sys

import numpy as np

from repro.flusim import ClusterConfig, simulate, taskgraph_comm_volume
from repro.mesh import pprime_nozzle_mesh
from repro.partitioning import make_decomposition
from repro.solver import LTSState, TaskDistributedSolver, jet_flow
from repro.solver.timestep import stable_timesteps
from repro.taskgraph import generate_task_graph
from repro.temporal import levels_from_depth


def main() -> None:
    small = "--small" in sys.argv
    mesh = pprime_nozzle_mesh(max_depth=8 if small else 10)
    tau = levels_from_depth(mesh, num_levels=3)
    print(f"PPRIME_NOZZLE replica: {mesh.num_cells} cells, 3 temporal levels")

    U0 = jet_flow(mesh, axis_y=0.5, jet_half_width=0.03, mach=0.8)
    dt_min = float((stable_timesteps(mesh, U0) / np.exp2(tau)).min())
    cluster = ClusterConfig(6, 4)

    results = {}
    for strategy in ("SC_OC", "MC_TL"):
        decomp = make_decomposition(mesh, tau, 12, 6, strategy=strategy, seed=0)
        dag = generate_task_graph(mesh, tau, decomp)
        solver = TaskDistributedSolver(mesh, tau, decomp, dt_min, dag=dag)
        solver.run_iteration(LTSState(U0))  # warmup
        it = solver.run_iteration(LTSState(U0))
        trace = simulate(dag, cluster, durations=it.durations)
        results[strategy] = (dag, trace, it)
        busy = trace.busy_time_per_process() * 1e3
        print(
            f"\n{strategy}: {dag.num_tasks} tasks, "
            f"comm volume {taskgraph_comm_volume(dag)} edges"
        )
        print(
            f"  serial kernel time {it.durations.sum() * 1e3:7.1f} ms, "
            f"replayed makespan {trace.makespan * 1e3:7.2f} ms"
        )
        print(
            "  per-process busy (ms): "
            + " ".join(f"{b:6.1f}" for b in busy)
        )

    ms_sc = results["SC_OC"][1].makespan
    ms_mc = results["MC_TL"][1].makespan
    print(
        f"\nMC_TL vs SC_OC with measured kernel durations: "
        f"{100 * (1 - ms_mc / ms_sc):+.1f}% "
        f"(paper reports ≈20% in production at 12.6M cells)"
    )


if __name__ == "__main__":
    main()
