#!/usr/bin/env python3
"""Quickstart: the paper's pipeline in ~40 lines.

Generates the CYLINDER replica mesh, assigns temporal levels,
partitions it with both strategies (SC_OC baseline, MC_TL
contribution), generates the task graphs, simulates them with FLUSIM
on a virtual cluster, and prints makespans plus ASCII Gantt charts —
a miniature of the paper's Fig. 9.

Run:  python examples/quickstart.py
"""

from repro.flusim import ClusterConfig, schedule_metrics, simulate
from repro.mesh import cylinder_mesh
from repro.partitioning import make_decomposition
from repro.taskgraph import generate_task_graph
from repro.temporal import levels_from_depth
from repro.viz import render_process_gantt


def main() -> None:
    # 1. Mesh + temporal levels (τ = size octave above the finest cell).
    mesh = cylinder_mesh(max_depth=9)
    tau = levels_from_depth(mesh, num_levels=4)
    print(
        f"mesh: {mesh.num_cells} cells, {mesh.num_faces} faces, "
        f"{int(tau.max()) + 1} temporal levels"
    )

    # 2. Virtual cluster: 4 MPI processes × 8 cores, 16 domains.
    cluster = ClusterConfig(num_processes=4, cores_per_process=8)

    for strategy in ("SC_OC", "MC_TL"):
        # 3. Partition and map domains to processes.
        decomp = make_decomposition(
            mesh, tau, 16, cluster.num_processes, strategy=strategy, seed=0
        )
        # 4. Generate one iteration's task graph (Algorithm 1).
        dag = generate_task_graph(mesh, tau, decomp)
        # 5. Simulate with FLUSIM (eager scheduling, like StarPU).
        trace = simulate(dag, cluster)
        m = schedule_metrics(dag, trace)
        print(
            f"\n=== {strategy}: makespan {m.makespan:.0f} work-units, "
            f"efficiency {m.efficiency:.2f}, {dag.num_tasks} tasks ==="
        )
        print(render_process_gantt(trace, dag, width=96))

    print(
        "\nDigits = subiteration being executed, '.' = idle. "
        "Note SC_OC's idle blocks versus MC_TL's dense rows."
    )


if __name__ == "__main__":
    main()
