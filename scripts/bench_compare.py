#!/usr/bin/env python
"""Measure the hot-path perf suites and diff against the tracked baselines.

Usage::

    PYTHONPATH=src python scripts/bench_compare.py                # all suites
    PYTHONPATH=src python scripts/bench_compare.py --suite flusim
    PYTHONPATH=src python scripts/bench_compare.py --update       # refresh baselines
    PYTHONPATH=src python scripts/bench_compare.py --size smoke --repeats 2

Each suite (partitioner, taskgraph, flusim) diffs against its committed
``BENCH_<suite>.json``.  Exits 1 if any fast-path timing regressed by
more than ``--threshold`` (default 3x, absolute — loose because wall
times are machine-dependent) or any fast-over-reference speedup ratio
dropped by more than 20% (machine-robust: both engines run in the same
process).  Refresh the baselines with ``--update`` after intentional
changes.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.perf import (  # noqa: E402
    EXTRA_SUITES,
    SUITES,
    compare_results,
    get_suite,
    load_baseline,
    save_baseline,
)
from repro.perf.common import conservative_min  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def baseline_path(suite: str) -> str:
    return os.path.join(REPO_ROOT, f"BENCH_{suite}.json")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--suite",
        choices=[*SUITES, *EXTRA_SUITES, "all"],
        default="all",
        help="which perf suite(s) to run ('all' = the cheap default "
        "suites; the scale chain must be requested by name)",
    )
    ap.add_argument(
        "--size",
        choices=["smoke", "full", "both", "paper"],
        default="both",
        help="benchmark size; 'paper' (6.4M-cell cylinder chain) is "
        "scale-suite only",
    )
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument("--threshold", type=float, default=3.0)
    ap.add_argument(
        "--speedup-drop",
        type=float,
        default=1.2,
        help="speedup-ratio drop factor that counts as a regression",
    )
    ap.add_argument(
        "--rss-ratio",
        type=float,
        default=2.0,
        help="loose memory gate: fail if the suite's peak RSS exceeds "
        "this multiple of the baseline envelope's peak_rss_mib",
    )
    ap.add_argument(
        "--save-dir",
        default=None,
        help="also write each suite's result JSON into this directory",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baselines with this run instead of diffing",
    )
    ap.add_argument(
        "--update-runs",
        type=int,
        default=3,
        help="with --update: suite runs merged into a conservative "
        "baseline (each kernel entry comes from its lowest-speedup "
        "run, so the 20%% gate does not fire on run-to-run noise)",
    )
    args = ap.parse_args(argv)

    suites = list(SUITES) if args.suite == "all" else [args.suite]
    sizes = ("smoke", "full") if args.size == "both" else (args.size,)
    if args.size == "paper" and suites != ["scale"]:
        print(
            "--size paper is only defined for the scale suite "
            "(--suite scale --size paper)",
            file=sys.stderr,
        )
        return 2
    rc = 0
    for name in suites:
        mod = get_suite(name)
        kwargs = dict(repeats=args.repeats, seed=args.seed)
        if name in ("partitioner", "scale", "dagsched"):
            kwargs["n_jobs"] = args.jobs
        result = mod.run_suite(sizes, **kwargs)
        if args.update and args.update_runs > 1:
            result = conservative_min(
                [result]
                + [
                    mod.run_suite(sizes, **kwargs)
                    for _ in range(args.update_runs - 1)
                ]
            )
        print(f"== {name} ==")
        print(mod.format_report(result))

        if args.save_dir:
            os.makedirs(args.save_dir, exist_ok=True)
            out = os.path.join(args.save_dir, f"BENCH_{name}.json")
            save_baseline(result, out)
            print(f"saved {out}")

        path = baseline_path(name)
        if args.update:
            save_baseline(result, path)
            print(f"updated {path}")
            continue
        if not os.path.exists(path):
            print(
                f"no baseline at {path}; run with --update to create it",
                file=sys.stderr,
            )
            rc = max(rc, 2)
            continue
        try:
            baseline = load_baseline(path)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # A corrupt or half-written baseline is an actionable
            # one-liner, not a traceback.
            print(
                f"unparsable baseline {path} ({exc}); "
                f"re-create it with --update",
                file=sys.stderr,
            )
            rc = max(rc, 2)
            continue
        problems = compare_results(
            baseline,
            result,
            threshold=args.threshold,
            speedup_drop=args.speedup_drop,
            rss_ratio=args.rss_ratio,
        )
        if problems:
            for msg in problems:
                print(f"REGRESSION [{name}] {msg}", file=sys.stderr)
            rc = 1
        else:
            print(f"no regressions vs {path}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
