#!/usr/bin/env python
"""Measure the partitioner hot paths and diff against the tracked baseline.

Usage::

    PYTHONPATH=src python scripts/bench_compare.py            # diff vs BENCH_partitioner.json
    PYTHONPATH=src python scripts/bench_compare.py --update   # re-measure and overwrite it
    PYTHONPATH=src python scripts/bench_compare.py --size smoke --repeats 2

Exits 1 if any HEM/FM fast-path timing regressed by more than
``--threshold`` (default 3x) against the baseline.  The baseline file
is committed so the perf trajectory is tracked PR-over-PR; refresh it
with ``--update`` after intentional changes (numbers are
machine-dependent — compare like with like).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.perf import (  # noqa: E402
    compare_results,
    format_report,
    load_baseline,
    run_suite,
    save_baseline,
)

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_partitioner.json",
)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--baseline", default=DEFAULT_BASELINE, help="baseline JSON path"
    )
    ap.add_argument("--size", choices=["smoke", "full", "both"], default="both")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument("--jobs", type=int, default=2)
    ap.add_argument("--threshold", type=float, default=3.0)
    ap.add_argument(
        "--update",
        action="store_true",
        help="overwrite the baseline with this run instead of diffing",
    )
    args = ap.parse_args(argv)

    sizes = ("smoke", "full") if args.size == "both" else (args.size,)
    result = run_suite(
        sizes, repeats=args.repeats, seed=args.seed, n_jobs=args.jobs
    )
    print(format_report(result))

    if args.update:
        save_baseline(result, args.baseline)
        print(f"updated {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(
            f"no baseline at {args.baseline}; run with --update to create it",
            file=sys.stderr,
        )
        return 2
    problems = compare_results(
        load_baseline(args.baseline), result, threshold=args.threshold
    )
    if problems:
        for msg in problems:
            print(f"REGRESSION {msg}", file=sys.stderr)
        return 1
    print(f"no regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
