#!/usr/bin/env python
"""CI smoke test for the pipeline artifact store.

Runs the same scenario twice against a throwaway disk store and
asserts the content-addressed cache actually does its job:

* the cold run computes every stage (no hits);
* the warm run is served from the store for *every* stage;
* the warm run is faster than the cold run.

Exit code 0 on success, 1 with a diagnostic on any violation.

Usage::

    PYTHONPATH=src python scripts/pipeline_smoke.py [--scenario NAME]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.pipeline import ArtifactStore, Pipeline, get_scenario


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scenario", default="characteristics")
    ap.add_argument(
        "--set",
        dest="options",
        action="append",
        default=["scale=6", "domains=8", "processes=4"],
        metavar="KEY=VALUE",
    )
    args = ap.parse_args(argv)

    options = {}
    for item in args.options:
        key, _, value = item.partition("=")
        try:
            options[key] = int(value)
        except ValueError:
            options[key] = value
    scenario = get_scenario(args.scenario, **options)

    problems: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as root:
        store = ArtifactStore(root)
        pipe = Pipeline(store, n_jobs=1)

        t0 = time.perf_counter()
        cold = pipe.run(scenario)
        cold_s = time.perf_counter() - t0

        # drop the in-process objects so the warm run must exercise
        # the disk layer end to end
        store.clear_memory()

        t0 = time.perf_counter()
        warm = pipe.run(scenario)
        warm_s = time.perf_counter() - t0

        print(f"scenario {args.scenario} ({options})")
        print(f"cold: {cold_s * 1e3:8.1f} ms, {cold.cache_hits}/5 hits")
        print(cold.explain())
        print(f"warm: {warm_s * 1e3:8.1f} ms, {warm.cache_hits}/5 hits")
        print(warm.explain())

        if cold.cache_hits != 0:
            problems.append(
                f"cold run hit the empty store ({cold.cache_hits} hits)"
            )
        for name, rec in warm.provenance.items():
            if not rec.hit:
                problems.append(f"warm run recomputed stage {name!r}")
        if warm.metrics.makespan != cold.metrics.makespan:
            problems.append(
                "cached makespan "
                f"{warm.metrics.makespan} != computed "
                f"{cold.metrics.makespan}"
            )
        if warm_s >= cold_s:
            problems.append(
                f"warm run ({warm_s:.3f}s) not faster than cold "
                f"({cold_s:.3f}s)"
            )

    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    if not problems:
        print(f"OK: warm run {cold_s / warm_s:.1f}x faster, all stages cached")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
