"""Fig. 6 — idleness persists with unbounded cores.

CYLINDER, 64 domains on 64 processes, unlimited cores per process,
eager scheduling (optimal in this regime).  Prints idle fractions and
the composite-process Gantt chart.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig06_unbounded


def test_fig06_unbounded_cores(once):
    result = once(fig06_unbounded.run)
    print("\n" + fig06_unbounded.report(result))
    # Eager + unbounded cores achieves the critical path…
    assert result.makespan == np.float64(result.critical_path)
    # …yet a substantial share of composite-process time is idle
    # (the paper's Fig. 6 pattern).
    assert result.mean_idle_fraction > 0.10
    # Some processes idle much more than others (imbalanced graph).
    spread = (
        result.idle_fraction_per_process.max()
        - result.idle_fraction_per_process.min()
    )
    assert spread > 0.10
