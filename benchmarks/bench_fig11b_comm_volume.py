"""Fig. 11b — estimated communication volume vs domain count.

Communication = task-graph edges crossing process boundaries (the
paper's definition).  MC_TL pays more communication than SC_OC since
balancing all temporal levels breaks domain contiguity, and the gap
grows with the domain count.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig11_sweep


def test_fig11b_comm_volume(once):
    result = once(
        fig11_sweep.run, domain_counts=(16, 32, 64, 128)
    )
    print("\n" + fig11_sweep.report(result))
    for name in result.meshes:
        sc = result.comm_sc_oc[name]
        mc = result.comm_mc_tl[name]
        # MC_TL communicates at least as much as SC_OC at every count…
        assert np.all(mc >= sc), name
        # …strictly more in aggregate…
        assert mc.sum() > sc.sum(), name
        # …and volume grows with domain count for both strategies.
        assert sc[-1] > sc[0] and mc[-1] > mc[0], name
