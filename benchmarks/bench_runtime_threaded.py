"""Extension — real threaded execution of the solver task graph.

A StarPU-like runtime executes the actual FV kernels on worker
threads; the resulting *real* trace shows MC_TL's better occupancy and
per-process balance, and the physics matches serial execution exactly.
(On a single-core host wall-clock does not improve — the trace-level
metrics are the hardware-independent signal.)
"""

from __future__ import annotations

from repro.experiments import runtime_validation


def test_runtime_threaded_execution(once):
    result = once(runtime_validation.run)
    print("\n" + runtime_validation.report(result))
    for s in result.strategies:
        # The hard guarantee: threaded physics is identical to serial.
        assert result.matches_serial[s], s
        # Sanity bounds on the timing-derived trace metrics; their
        # exact values — and any cross-strategy comparison — are
        # unreliable on a time-shared single-core host, so the
        # deterministic MC_TL-vs-SC_OC claims live in the FLUSIM
        # benchmarks, not here.
        assert 0.0 < result.efficiency[s] <= 1.0
        assert result.busy_balance[s] < 2.5
