"""Fig. 10 — MC_TL domain characteristics (CYLINDER, 16 proc × 32
cores).

Counterpart of Fig. 7: with MC_TL every process holds a near-equal
share of *every* temporal level, and per-subiteration work is flat.
"""

from __future__ import annotations

from repro.experiments import fig07_10_characteristics as ch


def test_fig10_mc_tl_characteristics(once):
    result = once(ch.run, "MC_TL")
    print("\n" + ch.report(result))
    sc = ch.run("SC_OC")  # cached; for the side-by-side claim
    # Level mixing: MC_TL's concentration far below SC_OC's.
    assert result.concentration < sc.concentration - 0.1
    # No process front-loads its work into subiteration 0 the way
    # SC_OC's do.
    assert (
        result.max_first_subiteration_share
        < sc.max_first_subiteration_share
    )
    # Per-subiteration balance: max/mean within 35% for every
    # subiteration (paper: "completely balanced workload for each
    # subiteration").
    w = result.work_by_process_subiteration
    per_sub = w.max(axis=0) / w.mean(axis=0)
    assert per_sub.max() < 1.35
