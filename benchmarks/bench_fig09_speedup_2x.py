"""Fig. 9 — the headline ×2 speedup.

CYLINDER and CUBE, 128 domains, 16 processes × 32 cores (512 cores),
FLUSIM with eager scheduling.  The paper's traces show an acceleration
factor of ≈2 from MC_TL on both meshes.
"""

from __future__ import annotations

from repro.experiments import fig09_speedup


def test_fig09_speedup_2x(once):
    result = once(fig09_speedup.run)
    print("\n" + fig09_speedup.report(result))
    for name in result.meshes:
        # Shape claim: MC_TL decisively faster — ×1.5–×3 envelope
        # around the paper's ×2.
        assert 1.5 < result.speedup[name] < 3.0, name
        assert result.efficiency_mc_tl[name] > result.efficiency_sc_oc[name]
