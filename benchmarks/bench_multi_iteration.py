"""Extension — cross-iteration pipelining (steady-state behaviour).

The paper simulates one iteration; chaining several without barriers
shows both strategies pipeline across the boundary — and MC_TL
benefits *more* (its dense final subiterations feed the next
iteration's first phases sooner), so the steady-state speedup exceeds
the single-iteration one.
"""

from __future__ import annotations

from repro.experiments import multi_iteration


def test_multi_iteration_pipelining(once):
    result = once(multi_iteration.run)
    print("\n" + multi_iteration.report(result))
    for s in ("SC_OC", "MC_TL"):
        # Amortized per-iteration cost never exceeds the single
        # iteration's (pipelining can only help)…
        assert result.amortized[s] <= result.single[s] * 1.001
    # …and MC_TL's steady-state advantage holds.
    assert result.speedup_amortized > 1.3
