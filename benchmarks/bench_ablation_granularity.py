"""Extension ablation — automatic granularity selection (paper
conclusion).

The tuner searches the domain count minimizing (penalized) makespan:
with free tasks, finer is better (pipelining); adding per-task
overhead and communication penalties pushes the optimum coarser —
the trade the paper describes in §IV.
"""

from __future__ import annotations

from repro.experiments import granularity_study


def test_granularity_autotuning(once):
    result = once(granularity_study.run)
    print("\n" + granularity_study.report(result))
    for strategy in ("SC_OC", "MC_TL"):
        free = result.best_domains(strategy, "free")
        over = result.best_domains(strategy, "overhead")
        full = result.best_domains(strategy, "overhead+comm")
        # Overheads never push the optimum finer.
        assert over <= free, strategy
        assert full <= over, strategy
