"""Micro-benchmarks of the partitioner hot paths (HEM + FM).

Times the vectorized :func:`repro.graph.coarsen.heavy_edge_matching`
and the incremental-gain :func:`repro.graph.refine.fm_refine` against
the seed implementations preserved in :mod:`repro.graph.reference`,
on the graded benchmark mesh of :mod:`repro.perf.partitioner` — in
both single-constraint and MC_TL (temporal-level indicator) mode.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_partitioner_hotpaths.py -s

or standalone (prints the full perf-suite report)::

    PYTHONPATH=src python benchmarks/bench_partitioner_hotpaths.py [--size smoke]

The tracked baseline lives in ``BENCH_partitioner.json``; refresh or
diff it with ``scripts/bench_compare.py`` or ``python -m repro bench``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.coarsen import heavy_edge_matching
from repro.graph.reference import fm_refine_ref, heavy_edge_matching_ref
from repro.graph.refine import fm_refine
from repro.perf.partitioner import _projected_partition, bench_graphs

SEED = 3


@pytest.fixture(scope="module")
def graphs():
    return bench_graphs("smoke")


@pytest.fixture(scope="module")
def fm_inputs(graphs):
    g_sc, g_mc = graphs
    return _projected_partition(g_sc, SEED), _projected_partition(g_mc, SEED)


def _hem(g, fn):
    match = fn(g, np.random.default_rng(SEED))
    assert np.array_equal(match[match], np.arange(g.num_vertices))
    return match


def test_bench_hem_sc_ref(benchmark, graphs):
    _hem(graphs[0], lambda g, rng: benchmark(heavy_edge_matching_ref, g, rng))


def test_bench_hem_sc_fast(benchmark, graphs):
    _hem(graphs[0], lambda g, rng: benchmark(heavy_edge_matching, g, rng))


def test_bench_hem_mc_tl_ref(benchmark, graphs):
    _hem(graphs[1], lambda g, rng: benchmark(heavy_edge_matching_ref, g, rng))


def test_bench_hem_mc_tl_fast(benchmark, graphs):
    _hem(graphs[1], lambda g, rng: benchmark(heavy_edge_matching, g, rng))


def _fm(g, part0, fn):
    def run():
        p = part0.copy()
        fn(g, p, rng=np.random.default_rng(SEED + 5))
        return p

    return run


def test_bench_fm_sc_ref(benchmark, graphs, fm_inputs):
    benchmark(_fm(graphs[0], fm_inputs[0], fm_refine_ref))


def test_bench_fm_sc_fast(benchmark, graphs, fm_inputs):
    benchmark(_fm(graphs[0], fm_inputs[0], fm_refine))


def test_bench_fm_mc_tl_ref(benchmark, graphs, fm_inputs):
    benchmark(_fm(graphs[1], fm_inputs[1], fm_refine_ref))


def test_bench_fm_mc_tl_fast(benchmark, graphs, fm_inputs):
    benchmark(_fm(graphs[1], fm_inputs[1], fm_refine))


if __name__ == "__main__":  # pragma: no cover
    import argparse

    from repro.perf import format_report, run_suite

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", choices=["smoke", "full", "both"], default="full")
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args()
    sizes = ("smoke", "full") if args.size == "both" else (args.size,)
    print(format_report(run_suite(sizes, repeats=args.repeats)))
