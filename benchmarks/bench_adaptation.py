"""Extension — the full production loop: solve → adapt → transfer →
re-level → re-partition.

Starting from a uniform mesh and a blast wave, cyclic adaptation
creates the very level structure the paper's problem is about: the
first (single-level) cycle shows SC_OC ≡ MC_TL, and as the mesh
refines around the front MC_TL's advantage emerges.
"""

from __future__ import annotations

from repro.experiments import adaptation_study


def test_adaptation_production_loop(once):
    result = once(adaptation_study.run)
    print("\n" + adaptation_study.report(result))
    cycles = result.cycles
    # The mesh refines as the solution develops…
    assert cycles[-1].num_cells > cycles[0].num_cells
    # …the refinement tracks the front (median finest-cell radius is
    # near the blast, not spread over the domain).
    assert cycles[-1].front_radius < 0.25
    # Conservative transfers: cumulative mass error stays tiny
    # (residual = transmissive-boundary tails, not transfer loss).
    assert cycles[-1].mass_error < 1e-8
    # The paper's phenomenon emerges with the level structure:
    # single-level start ⇒ parity; adapted meshes ⇒ MC_TL wins.
    assert abs(cycles[0].speedup - 1.0) < 0.2
    assert cycles[-1].speedup > 1.2
