"""Extension ablation — communication-cost sensitivity (α/β model).

Quantifies the paper's overlap assumption: MC_TL's larger
communication volume (Fig. 11b) costs nothing in FLUSIM's overhead-free
model; with an α/β link model its advantage erodes and eventually
crosses over — the motivation for the §VII dual-phase scheme, which
stays between the two.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import comm_sensitivity


def test_comm_sensitivity(once):
    result = once(comm_sensitivity.run)
    print("\n" + comm_sensitivity.report(result))
    ratio = result.ratio()
    # At zero cost MC_TL wins decisively (the paper's regime)…
    assert ratio[0] > 1.2
    # …its advantage decays as the link gets slower…
    assert ratio[-1] < ratio[0]
    # …and a crossover exists at high enough latency: unoverlapped
    # communication eventually erases the gain — the motivation for
    # the §VII dual-phase compromise.
    assert result.crossover_latency() is not None
    # DUAL stays a compromise: close to the best strategy throughout
    # the realistic (overlappable) latency range; only at the extreme
    # unoverlapped end does its residual volume cost more.
    best = np.minimum(
        result.makespan["SC_OC"], result.makespan["MC_TL"]
    )
    lats = np.array(result.latencies)
    realistic = lats <= 100.0
    assert np.all(
        result.makespan["DUAL"][realistic] <= 1.25 * best[realistic]
    )
