"""Ablations — partitioner method and geometric baselines.

1. Recursive bisection vs direct k-way on the multi-constraint MC_TL
   problem (the paper chose recursive bisection for quality, §V).
2. RCB / SFC geometric comparators (related work, §VIII): they balance
   total cost like SC_OC and hence inherit its subiteration imbalance.
"""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_rb_vs_kway(once):
    result = once(ablations.run_method_ablation)
    print(
        f"\nRB vs k-way (MC_TL constraints): "
        f"cut RB={result.cut['recursive']:.0f} "
        f"kway={result.cut['kway']:.0f}; worst imbalance "
        f"RB={result.worst_imbalance['recursive']:.3f} "
        f"kway={result.worst_imbalance['kway']:.3f}"
    )
    # Both drivers must produce feasible multi-constraint partitions.
    assert result.worst_imbalance["recursive"] < 1.6
    assert result.worst_imbalance["kway"] < 1.8


def test_ablation_geometric_baselines(once):
    result = once(ablations.run_baseline_ablation)
    print(
        "\ngeometric baselines (CYLINDER, 64 domains, 16p × 32c): "
        + "  ".join(
            f"{s}={result.makespan[s]:.0f}" for s in result.strategies
        )
    )
    # MC_TL beats every single-criterion strategy, including the
    # geometric ones.
    for s in ("SC_OC", "RCB", "SFC"):
        assert (
            result.makespan["MC_TL"] < result.makespan[s]
        ), s
