"""Benchmark configuration.

Every benchmark runs its experiment once per round (``pedantic``
mode) — the experiments are deterministic, so statistical repetition
only matters for the micro-benchmarks.  Each benchmark also *prints*
the table/figure series it reproduces (run with ``-s`` to see them;
they are summarized in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single round/iteration and return its
    result (suitable for whole-experiment benchmarks)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
