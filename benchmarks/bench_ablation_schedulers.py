"""Ablation — scheduling policy cannot rescue SC_OC (paper §III-C).

Runs every scheduler (eager, LIFO, critical-path, SJF, LJF, random) on
both strategies' task graphs.  The paper's argument: idleness comes
from the task-graph shape, so even clairvoyant priorities on the SC_OC
graph cannot reach MC_TL's performance.
"""

from __future__ import annotations

from repro.experiments import ablations


def test_ablation_schedulers(once):
    result = once(ablations.run_scheduler_ablation)
    rows = ["\nscheduler ablation (CYLINDER, 64 domains, 16p × 32c):"]
    for strategy in ("SC_OC", "MC_TL"):
        line = f"  {strategy}: " + "  ".join(
            f"{s}={result.makespan[(strategy, s)]:.0f}"
            for s in result.schedulers
        )
        rows.append(line)
    print("\n".join(rows))
    best_sc_oc = min(
        result.makespan[("SC_OC", s)] for s in result.schedulers
    )
    # No scheduler on SC_OC beats plain eager on MC_TL.
    assert best_sc_oc > result.makespan[("MC_TL", "eager")]
    # And the best scheduler's gain within SC_OC is modest compared to
    # switching the partitioning strategy.
    gain_sched = result.best_improvement_within("SC_OC")
    gain_strategy = 1.0 - result.makespan[("MC_TL", "eager")] / result.makespan[
        ("SC_OC", "eager")
    ]
    assert gain_strategy > gain_sched
