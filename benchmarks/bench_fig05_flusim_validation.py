"""Fig. 5 — FLUSIM validity vs a measured execution.

PPRIME_NOZZLE, 12 domains (SC_OC), 6 processes × 4 cores.  Prints the
model-predicted vs measured-replay makespans and their relative
variance (paper: ~20%).
"""

from __future__ import annotations

from repro.experiments import fig05_validation


def test_fig05_flusim_validation(once):
    result = once(fig05_validation.run)
    print("\n" + fig05_validation.report(result))
    # FLUSIM must predict the measured schedule within 50% at replica
    # scale (the paper's 20% is at 500× larger meshes, where per-task
    # overhead noise is proportionally smaller).
    assert result.variance < 0.5
    assert result.makespan_measured > 0
    assert result.makespan_model > 0
