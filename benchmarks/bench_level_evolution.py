"""Extension — verify the paper's §III-A stationarity assumption.

"The temporal levels of the cells experience minimal evolution across
iterations" is what justifies optimizing a single iteration.  A real
multi-iteration blast-wave campaign with hysteresis re-leveling shows
drift decaying to a few percent after the initial transient.
"""

from __future__ import annotations

from repro.experiments import level_evolution


def test_level_evolution_stationarity(once):
    result = once(level_evolution.run)
    print("\n" + level_evolution.report(result))
    drift = result.drift_fraction
    # Drift decays after the transient…
    assert drift[-1] < 0.5 * max(drift[0], 1e-9) + 1e-9
    # …to a small tail (levels essentially frozen).
    assert drift[-1] < 0.05
    # Repartitioning stops being needed in the tail.
    assert result.num_repartitions < result.iterations
