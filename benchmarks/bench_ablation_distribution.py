"""Extension ablation — when does MC_TL matter?

Sweeping the fine-cell fraction at fixed geometry maps the regime
structure: with a vanishing or dominating fine class the mesh is
effectively single-level (SC_OC ≈ MC_TL); in the paper's regime —
a minority of fine cells holding a large computation share — MC_TL
wins clearly.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import distribution_sensitivity


def test_distribution_sensitivity(once):
    result = once(distribution_sensitivity.run)
    print("\n" + distribution_sensitivity.report(result))
    sp = result.speedup
    # MC_TL never loses badly anywhere in the sweep…
    assert np.all(sp > 0.9)
    # …and wins clearly somewhere in the paper-like minority-fine
    # regime.
    assert sp.max() > 1.3
