"""Fig. 7 — SC_OC domain characteristics (CYLINDER, 16 proc × 32
cores).

(a) operating cost per process by temporal level — concentrated:
processes specialise in one level; (b) cumulative computation per
subiteration — some processes do nearly everything in subiteration 0.
"""

from __future__ import annotations

from repro.experiments import fig07_10_characteristics as ch


def test_fig07_sc_oc_characteristics(once):
    result = once(ch.run, "SC_OC")
    print("\n" + ch.report(result))
    # Total cost balanced across processes (the strategy's objective).
    assert result.total_cost_imbalance < 1.25
    # But levels are concentrated: the dominant level holds most of a
    # process's cost on average.
    assert result.concentration > 0.55
    # At least one process does the great majority of its work in the
    # first subiteration (paper: processes 10–15 "almost entirely").
    assert result.max_first_subiteration_share > 0.7
