"""Fig. 12 — PPRIME_NOZZLE in FLUSIM: MC_TL ≈ 20% faster.

Same configuration as Fig. 5 (12 domains, 6 processes × 4 cores).
"""

from __future__ import annotations

from repro.experiments import fig12_nozzle


def test_fig12_nozzle_flusim(once):
    result = once(fig12_nozzle.run)
    print("\n" + fig12_nozzle.report(result))
    # Paper: "a slightly smaller, but still considerable, improvement
    # of around 20%" — accept 10–45% at replica scale.
    assert 0.10 < result.improvement < 0.45
    assert result.efficiency_mc_tl > result.efficiency_sc_oc
