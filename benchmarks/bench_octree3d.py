"""Extension — the SC_OC pathology and MC_TL remedy on a true 3D
octree mesh (the paper's meshes are 3D; everything downstream of the
dual graph is dimension-agnostic)."""

from __future__ import annotations

from repro.experiments import octree3d


def test_octree3d_speedup(once):
    result = once(octree3d.run)
    print("\n" + octree3d.report(result))
    # MC_TL must win in 3D too.
    assert result.speedup > 1.2
    # And it wins by fixing the per-subiteration balance.
    assert (
        result.worst_subiteration_imbalance_mc_tl
        < result.worst_subiteration_imbalance_sc_oc
    )
