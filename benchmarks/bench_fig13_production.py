"""Fig. 13 — production validation with measured kernel durations.

The mini-FLUSEPA solver runs every task's real finite-volume kernel on
the 100k-cell nozzle replica; measured durations replay on the virtual
cluster for both strategies.  Paper: ~20% gain inside the production
code.
"""

from __future__ import annotations

from repro.experiments import fig13_production


def test_fig13_production(once):
    result = once(fig13_production.run)
    print("\n" + fig13_production.report(result))
    # MC_TL must win with real measured durations (paper: ~20% gain;
    # replica scale gives a smaller margin because per-task fixed
    # overhead is proportionally larger — see EXPERIMENTS.md).
    assert result.improvement > 0.0
    # The serial-work penalty of finer tasks stays bounded.
    assert (
        result.serial_time_mc_tl
        < 1.4 * result.serial_time_sc_oc
    )
    assert result.tasks_mc_tl > result.tasks_sc_oc
