"""§VII perspective — dual-phase MC_TL→SC_OC partitioning.

Paper: "preliminary results suggest that this dual-phase multi-criteria
partitioning is able to find a favorable compromise between performance
improvement and communication overhead management."
"""

from __future__ import annotations

from repro.experiments import dual_phase


def test_dual_phase_tradeoff(once):
    result = once(dual_phase.run)
    print("\n" + dual_phase.report(result))
    ms, comm = result.makespan, result.comm_volume
    # DUAL recovers a large part of MC_TL's gain over SC_OC…
    assert ms["DUAL"] < ms["SC_OC"]
    # …while communicating less than full MC_TL at equal domain count.
    assert comm["DUAL"] < comm["MC_TL"]
