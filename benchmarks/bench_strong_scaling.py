"""Extension — strong scaling: SC_OC saturates, MC_TL keeps going.

Fixed mesh and domain count, process count swept.  SC_OC's level
concentration caps its usable parallelism; MC_TL rides closer to the
critical-path limit.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import strong_scaling


def test_strong_scaling(once):
    result = once(strong_scaling.run)
    print("\n" + strong_scaling.report(result))
    counts = np.array(result.process_counts, dtype=float)
    for s in ("SC_OC", "MC_TL"):
        # More processes never hurt.
        m = result.makespan[s]
        assert np.all(np.diff(m) <= 1e-9 + 0.02 * m[:-1])
    # MC_TL reaches a better best-case makespan…
    assert result.makespan["MC_TL"].min() < result.makespan["SC_OC"].min()
    # …and scales further: its speedup at the largest count exceeds
    # SC_OC's.
    assert (
        result.speedup_curve("MC_TL")[-1]
        > result.speedup_curve("SC_OC")[-1]
    )
