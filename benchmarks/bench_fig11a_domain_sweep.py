"""Fig. 11a — makespan ratio SC_OC/MC_TL vs domain count.

CYLINDER and CUBE, 16 processes × 32 cores, domains ∈ {16 … 256}.
Paper: MC_TL wins at every domain count, with the ratio decreasing for
larger counts — "by reducing task granularity, pipelining can be
improved, which in turn overcomes load imbalances at each
subiteration, especially in the SC_OC partitioning case".

Scale note: the controlling parameter is cells-per-domain.  The paper
sweeps 6.4M cells, so even its largest domain counts stay coarse; our
replica is ~250× smaller, so the same pipelining effect that *shrinks*
the ratio in the paper drives it through 1 near 256 domains here
(≈90 cells/domain).  The asserted shape: MC_TL wins in the paper's
granularity regime, and the ratio decays from its peak as granularity
refines — the crossover tail is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig11_sweep


def test_fig11a_domain_sweep(once):
    result = once(
        fig11_sweep.run, domain_counts=(16, 32, 64, 128, 256)
    )
    print("\n" + fig11_sweep.report(result))
    counts = np.array(result.domain_counts)
    for name in result.meshes:
        ratio = result.ratio[name]
        # MC_TL outperforms SC_OC throughout the paper-like
        # granularity regime (≥ ~180 cells/domain here).
        assert np.all(ratio[counts <= 128] > 1.0), name
        # Decreasing trend at fine granularity: the last point lies
        # below the sweep's peak.
        assert ratio[-1] < ratio.max(), name
