"""Fig. 8 — task-graph shape on a two-domain toy.

MC_TL gives every domain tasks in every phase of the first
subiteration; SC_OC leaves some phases single-domain.
"""

from __future__ import annotations

from repro.experiments import fig08_taskgraph_shape


def test_fig08_taskgraph_shape(once):
    result = once(fig08_taskgraph_shape.run)
    print("\n" + fig08_taskgraph_shape.report(result))
    # The paper's statement: MC_TL expresses the first subiteration
    # with more, finer tasks (8 vs 2 in the illustration).
    assert result.total_tasks["MC_TL"] > result.total_tasks["SC_OC"]
    assert result.domains_active_every_phase["MC_TL"]
    assert not result.domains_active_every_phase["SC_OC"]
