"""Table I — test-mesh characteristics (replica vs paper).

Regenerates the three replica meshes at their default scales and
prints the per-τ #Cells / %Cells / %Computation rows next to the
paper's values.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import table1


def test_table1(once):
    result = once(table1.run)
    print("\n" + table1.report(result))
    # Shape assertions: every replica matches the paper's distribution
    # within 6 percentage points per level.
    for name in result.names:
        np.testing.assert_allclose(
            result.replica_cell_fraction[name],
            result.paper_cell_fraction[name],
            atol=0.06,
            err_msg=name,
        )
        np.testing.assert_allclose(
            result.replica_computation_fraction[name],
            result.paper_computation_fraction[name],
            atol=0.12,
            err_msg=name,
        )
