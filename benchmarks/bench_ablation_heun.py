"""Extension ablation — the result is integrator-independent.

The paper's solver uses second-order Heun; the repo supports both
forward-Euler and Heun local time stepping.  Heun doubles every phase
into predictor/corrector sweeps (2× tasks, 2× work) but preserves the
per-subiteration imbalance structure — so the MC_TL speedup must
persist, which this ablation asserts with FLUSIM on both schemes.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import standard_case, cached_decomposition
from repro.flusim import ClusterConfig, simulate
from repro.taskgraph import generate_task_graph


def test_ablation_heun_scheme(once):
    def run():
        mesh, tau = standard_case("cylinder")
        cluster = ClusterConfig(16, 32)
        out = {}
        for scheme in ("euler", "heun"):
            spans = {}
            for strategy in ("SC_OC", "MC_TL"):
                decomp = cached_decomposition(
                    "cylinder", 64, 16, strategy, seed=0
                )
                dag = generate_task_graph(mesh, tau, decomp, scheme=scheme)
                spans[strategy] = (
                    simulate(dag, cluster).makespan,
                    dag.num_tasks,
                    dag.total_work(),
                )
            out[scheme] = spans
        return out

    result = once(run)
    lines = []
    for scheme, spans in result.items():
        ratio = spans["SC_OC"][0] / spans["MC_TL"][0]
        lines.append(
            f"{scheme}: SC_OC {spans['SC_OC'][0]:.0f} / MC_TL "
            f"{spans['MC_TL'][0]:.0f} (×{ratio:.2f}), "
            f"{spans['MC_TL'][1]} tasks"
        )
    print("\n" + "\n".join(lines))

    for strategy in ("SC_OC", "MC_TL"):
        # Heun exactly doubles tasks and work…
        assert (
            result["heun"][strategy][1]
            == 2 * result["euler"][strategy][1]
        )
        assert result["heun"][strategy][2] == pytest.approx(
            2 * result["euler"][strategy][2]
        )
    # …and the MC_TL speedup persists — in fact it *strengthens*:
    # Heun's predictor→stage-2→corrector chains double the sequential
    # depth of every phase, which hurts the starved SC_OC processes
    # more than the always-busy MC_TL ones.
    r_e = result["euler"]["SC_OC"][0] / result["euler"]["MC_TL"][0]
    r_h = result["heun"]["SC_OC"][0] / result["heun"]["MC_TL"][0]
    assert r_h > 1.2
    assert r_h >= 0.9 * r_e
