"""Micro-benchmarks of the library's computational kernels.

Classic pytest-benchmark timing (multiple rounds) of: mesh generation,
dual-graph construction, SC_OC/MC_TL partitioning, task-graph
generation, FLUSIM simulation, and the solver's flux kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flusim import ClusterConfig, simulate
from repro.mesh import cube_mesh, mesh_to_dual_graph
from repro.partitioning import make_decomposition
from repro.solver import LTSState, blast_wave
from repro.solver.lts import accumulate_face_fluxes
from repro.taskgraph import generate_task_graph
from repro.temporal import levels_from_depth, operating_costs


@pytest.fixture(scope="module")
def case():
    mesh = cube_mesh(max_depth=9)
    tau = levels_from_depth(mesh, num_levels=4)
    return mesh, tau


@pytest.fixture(scope="module")
def decomp(case):
    mesh, tau = case
    return make_decomposition(mesh, tau, 16, 4, strategy="MC_TL", seed=0)


@pytest.fixture(scope="module")
def dag(case, decomp):
    mesh, tau = case
    return generate_task_graph(mesh, tau, decomp)


def test_bench_mesh_generation(benchmark):
    mesh = benchmark(lambda: cube_mesh(max_depth=8))
    assert mesh.num_cells > 1000


def test_bench_dual_graph(benchmark, case):
    mesh, tau = case
    g = benchmark(lambda: mesh_to_dual_graph(mesh))
    assert g.num_vertices == mesh.num_cells


def test_bench_partition_sc_oc(benchmark, case):
    mesh, tau = case
    from repro.partitioning import sc_oc_partition

    part = benchmark.pedantic(
        sc_oc_partition, args=(mesh, tau, 16), kwargs={"seed": 0},
        rounds=2, iterations=1,
    )
    assert len(np.unique(part)) == 16


def test_bench_partition_mc_tl(benchmark, case):
    mesh, tau = case
    from repro.partitioning import mc_tl_partition

    part = benchmark.pedantic(
        mc_tl_partition, args=(mesh, tau, 16), kwargs={"seed": 0},
        rounds=2, iterations=1,
    )
    assert len(np.unique(part)) == 16


def test_bench_taskgraph_generation(benchmark, case, decomp):
    mesh, tau = case
    dag = benchmark(lambda: generate_task_graph(mesh, tau, decomp))
    assert dag.num_tasks > 0


def test_bench_flusim_simulate(benchmark, dag):
    trace = benchmark(lambda: simulate(dag, ClusterConfig(4, 8)))
    assert trace.makespan > 0


def test_bench_flux_kernel(benchmark, case):
    mesh, tau = case
    state = LTSState(blast_wave(mesh))
    faces = mesh.interior_faces()

    def kernel():
        accumulate_face_fluxes(mesh, state, faces, 1e-6)
        state.acc[:] = 0.0

    benchmark(kernel)


def test_bench_critical_path(benchmark, dag):
    cp, _ = benchmark(dag.critical_path)
    assert cp > 0


def test_bench_operating_costs(benchmark, case):
    _, tau = case
    cost = benchmark(lambda: operating_costs(tau))
    assert cost.min() >= 1.0
