"""Extension ablation — connectivity post-processing (paper
conclusion).

MC_TL partitions fragment into disconnected components; the
reconnection pass trades bounded imbalance for fewer fragments and
less communication.
"""

from __future__ import annotations

from repro.experiments import postprocess_study


def test_postprocess_reconnection(once):
    result = once(postprocess_study.run)
    print("\n" + postprocess_study.report(result))
    # The pass must reduce fragmentation…
    assert result.fragments_after < result.fragments_before
    # …and reduce (or at worst keep) cross-process communication.
    assert result.comm_after <= result.comm_before
    # Balance stays within the configured ceiling.
    assert result.imbalance_after <= 1.30 + 1e-9
    # The makespan must not regress catastrophically (bounded trade).
    assert result.makespan_after <= 1.3 * result.makespan_before
