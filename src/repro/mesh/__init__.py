"""Finite-volume mesh substrate: structures, quadtree generation,
synthetic replicas of the paper's meshes, dual graphs, statistics."""

from .adaptation import (
    adapt_mesh,
    density_gradient_indicator,
    transfer_solution,
)
from .dual import mesh_to_dual_graph
from .generators import (
    MESH_FACTORIES,
    cube_mesh,
    cylinder_mesh,
    pprime_nozzle_mesh,
    uniform_mesh,
)
from .io import load_mesh, save_mesh
from .quadtree import build_quadtree_mesh
from .quality import LevelStats, format_table1_row, level_statistics
from .structures import Mesh

__all__ = [
    "Mesh",
    "build_quadtree_mesh",
    "cylinder_mesh",
    "cube_mesh",
    "pprime_nozzle_mesh",
    "uniform_mesh",
    "MESH_FACTORIES",
    "mesh_to_dual_graph",
    "save_mesh",
    "load_mesh",
    "LevelStats",
    "level_statistics",
    "format_table1_row",
    "adapt_mesh",
    "transfer_solution",
    "density_gradient_indicator",
]
