"""Mesh persistence (NumPy ``.npz`` round-trip).

Generating the larger replica meshes takes a few seconds, so
experiments cache them on disk.  The format is a flat ``.npz`` archive
of the :class:`~repro.mesh.structures.Mesh` arrays.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .structures import Mesh

__all__ = ["save_mesh", "load_mesh"]

_FIELDS = (
    "cell_centers",
    "cell_volumes",
    "cell_depth",
    "face_cells",
    "face_area",
    "face_normal",
    "face_center",
)


def save_mesh(mesh: Mesh, path: str | Path) -> None:
    """Write a mesh to ``path`` as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path), **{f: getattr(mesh, f) for f in _FIELDS}
    )


def load_mesh(path: str | Path) -> Mesh:
    """Read a mesh previously written by :func:`save_mesh`."""
    with np.load(Path(path)) as data:
        missing = [f for f in _FIELDS if f not in data]
        if missing:
            raise ValueError(f"not a mesh archive, missing {missing}")
        return Mesh(**{f: data[f].copy() for f in _FIELDS})
