"""Mesh persistence (NumPy ``.npz`` round-trip).

Generating the larger replica meshes takes a few seconds, so
experiments cache them on disk.  The format is a flat ``.npz`` archive
of the :class:`~repro.mesh.structures.Mesh` arrays.

:func:`load_mesh` validates the archive up front — required fields,
shapes, dtypes and index ranges — and raises a :class:`ValueError`
naming the file and the offending field, instead of surfacing a
cryptic ``KeyError``/broadcast error deep inside the solver when fed a
truncated or foreign archive.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from .structures import Mesh

__all__ = ["save_mesh", "load_mesh"]

_FIELDS = (
    "cell_centers",
    "cell_volumes",
    "cell_depth",
    "face_cells",
    "face_area",
    "face_normal",
    "face_center",
)

#: Expected shape per field; ``"n"``/``"m"`` are the cell/face counts.
_SHAPES = {
    "cell_centers": ("n", 2),
    "cell_volumes": ("n",),
    "cell_depth": ("n",),
    "face_cells": ("m", 2),
    "face_area": ("m",),
    "face_normal": ("m", 2),
    "face_center": ("m", 2),
}

_INTEGER_FIELDS = ("cell_depth", "face_cells")


def save_mesh(mesh: Mesh, path: str | Path) -> None:
    """Write a mesh to ``path`` as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path), **{f: getattr(mesh, f) for f in _FIELDS}
    )


def load_mesh(path: str | Path) -> Mesh:
    """Read a mesh previously written by :func:`save_mesh`.

    Raises
    ------
    FileNotFoundError
        If ``path`` does not exist.
    ValueError
        If the archive is not a mesh archive, or any field is missing
        or has an inconsistent shape/dtype (the message names the file
        and the field).
    """
    path = Path(path)
    try:
        archive = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise ValueError(
            f"{path}: not a mesh archive (unreadable .npz: {exc})"
        ) from exc
    with archive as data:
        missing = [f for f in _FIELDS if f not in data]
        if missing:
            raise ValueError(
                f"{path}: not a mesh archive, missing fields {missing}"
            )
        fields = {f: data[f].copy() for f in _FIELDS}

    n = len(fields["cell_volumes"])
    m = len(fields["face_area"])
    dims = {"n": n, "m": m}
    for name, spec in _SHAPES.items():
        expected = tuple(dims.get(d, d) for d in spec)
        if fields[name].shape != expected:
            raise ValueError(
                f"{path}: field {name!r} has shape "
                f"{fields[name].shape}, expected {expected} "
                f"(n={n} cells, m={m} faces)"
            )
    for name in _INTEGER_FIELDS:
        if not np.issubdtype(fields[name].dtype, np.integer):
            raise ValueError(
                f"{path}: field {name!r} has dtype "
                f"{fields[name].dtype}, expected an integer type"
            )
    for name in _FIELDS:
        if name in _INTEGER_FIELDS:
            continue
        if not np.issubdtype(fields[name].dtype, np.floating):
            raise ValueError(
                f"{path}: field {name!r} has dtype "
                f"{fields[name].dtype}, expected a floating type"
            )
        if not np.isfinite(fields[name]).all():
            raise ValueError(
                f"{path}: field {name!r} contains non-finite values"
            )
    fc = fields["face_cells"]
    if m and (fc[:, 0].min() < 0 or fc.max() >= n):
        raise ValueError(
            f"{path}: field 'face_cells' references cells outside "
            f"[0, {n}) (boundary faces use -1 in the second column)"
        )
    if m and fc[:, 1].min() < -1:
        raise ValueError(
            f"{path}: field 'face_cells' has second-column entries "
            "below -1"
        )
    return Mesh(**fields)
