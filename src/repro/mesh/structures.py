"""Finite-volume mesh container.

A :class:`Mesh` is a cell/face ("face-based") representation of an
unstructured finite-volume mesh, the same abstraction FLUSEPA operates
on: physical values live on *cells*, fluxes are evaluated on *faces*,
and every face knows its (up to) two adjacent cells.

All arrays are contiguous NumPy arrays; cell–cell adjacency is derived
lazily in CSR form for graph algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Mesh"]


@dataclass
class Mesh:
    """An unstructured 2D finite-volume mesh.

    Attributes
    ----------
    cell_centers:
        ``(n, 2)`` cell centroid coordinates.
    cell_volumes:
        ``(n,)`` cell volumes (areas in 2D).
    cell_depth:
        ``(n,)`` refinement depth of each cell (quadtree meshes) or
        zeros for externally supplied meshes.
    face_cells:
        ``(m, 2)`` adjacent cell indices per face; ``face_cells[f, 1]
        == -1`` marks a domain-boundary face.
    face_area:
        ``(m,)`` face areas (edge lengths in 2D).
    face_normal:
        ``(m, 2)`` unit normals oriented from ``face_cells[f, 0]``
        toward ``face_cells[f, 1]`` (outward for boundary faces).
    face_center:
        ``(m, 2)`` face midpoint coordinates.
    """

    cell_centers: np.ndarray
    cell_volumes: np.ndarray
    cell_depth: np.ndarray
    face_cells: np.ndarray
    face_area: np.ndarray
    face_normal: np.ndarray
    face_center: np.ndarray
    _adjacency: tuple[np.ndarray, np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Number of cells."""
        return len(self.cell_volumes)

    @property
    def num_faces(self) -> int:
        """Number of faces (interior + boundary)."""
        return len(self.face_area)

    def interior_faces(self) -> np.ndarray:
        """Indices of faces with two adjacent cells."""
        return np.flatnonzero(self.face_cells[:, 1] >= 0)

    def boundary_faces(self) -> np.ndarray:
        """Indices of domain-boundary faces."""
        return np.flatnonzero(self.face_cells[:, 1] < 0)

    # ------------------------------------------------------------------
    def cell_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cell–cell CSR adjacency ``(xadj, adjncy, face_of)``.

        ``face_of`` gives, for every adjacency entry, the index of the
        mesh face realizing it — useful for mapping cut edges back to
        communication faces.  Cached after the first call.
        """
        if self._adjacency is not None:
            return self._adjacency
        interior = self.interior_faces()
        a = self.face_cells[interior, 0]
        b = self.face_cells[interior, 1]
        src = np.concatenate([a, b])
        dst = np.concatenate([b, a])
        fidx = np.concatenate([interior, interior])
        order = np.argsort(src, kind="stable")
        src, dst, fidx = src[order], dst[order], fidx[order]
        xadj = np.zeros(self.num_cells + 1, dtype=np.int64)
        np.add.at(xadj[1:], src, 1)
        np.cumsum(xadj, out=xadj)
        self._adjacency = (xadj, dst, fidx)
        return self._adjacency

    def validate(self) -> None:
        """Raise :class:`ValueError` on structural inconsistencies."""
        n, m = self.num_cells, self.num_faces
        if self.cell_centers.shape != (n, 2):
            raise ValueError("cell_centers shape mismatch")
        if self.cell_depth.shape != (n,):
            raise ValueError("cell_depth shape mismatch")
        if np.any(self.cell_volumes <= 0):
            raise ValueError("non-positive cell volume")
        if self.face_cells.shape != (m, 2):
            raise ValueError("face_cells shape mismatch")
        if self.face_area.shape != (m,) or np.any(self.face_area <= 0):
            raise ValueError("invalid face areas")
        if self.face_normal.shape != (m, 2):
            raise ValueError("face_normal shape mismatch")
        norms = np.linalg.norm(self.face_normal, axis=1)
        if not np.allclose(norms, 1.0, atol=1e-9):
            raise ValueError("face normals must be unit vectors")
        if np.any(self.face_cells[:, 0] < 0) or np.any(
            self.face_cells[:, 0] >= n
        ):
            raise ValueError("face_cells[:,0] out of range")
        if np.any(self.face_cells[:, 1] >= n):
            raise ValueError("face_cells[:,1] out of range")
        a = self.face_cells[:, 0]
        b = self.face_cells[:, 1]
        if np.any(a == b):
            raise ValueError("degenerate face (same cell twice)")
        # Geometric closure: for each cell, sum of area-weighted
        # outward normals must vanish (divergence of a constant field).
        acc = np.zeros((n, 2))
        w = self.face_area[:, None] * self.face_normal
        np.add.at(acc, a, w)
        interior = self.interior_faces()
        np.add.at(acc, b[interior], -w[interior])
        scale = np.sqrt(self.cell_volumes)[:, None]
        if not np.allclose(acc / scale, 0.0, atol=1e-6):
            raise ValueError("cells are not geometrically closed")

    def summary(self) -> dict:
        """Human-readable structural summary."""
        return {
            "num_cells": self.num_cells,
            "num_faces": self.num_faces,
            "num_boundary_faces": int(len(self.boundary_faces())),
            "min_volume": float(self.cell_volumes.min()),
            "max_volume": float(self.cell_volumes.max()),
            "depth_range": (
                int(self.cell_depth.min()),
                int(self.cell_depth.max()),
            ),
        }
