"""Adaptive quadtree mesh generation.

The paper's meshes are graded unstructured finite-volume meshes whose
cell volumes span several octaves — exactly the structure a 2:1
balanced adaptive quadtree produces.  A *sizing function* ``h(x, y)``
prescribes the desired cell edge length at every point; leaves are
split until they satisfy it, then a 2:1 balance pass limits the depth
jump between edge-neighbours to one (which is also what gives the
paper's meshes their gradual temporal-level transitions).

Cells are the quadtree leaves.  Faces are extracted between
edge-adjacent leaves (one face for equal-depth neighbours, two for a
coarse-fine interface) plus domain-boundary faces, giving a complete
finite-volume mesh ready for :mod:`repro.solver`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .structures import Mesh

__all__ = ["build_quadtree_mesh"]

SizingFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _refine(
    sizing: SizingFn,
    max_depth: int,
    min_depth: int,
    origin: tuple[float, float],
    extent: float,
) -> dict[tuple[int, int, int], None]:
    """Split leaves until every leaf satisfies the sizing function."""
    leaves: dict[tuple[int, int, int], None] = {(0, 0, 0): None}
    queue: list[tuple[int, int, int]] = [(0, 0, 0)]
    ox, oy = origin
    while queue:
        d, i, j = queue.pop()
        if (d, i, j) not in leaves:
            continue
        size = extent / (1 << d)
        cx = ox + (i + 0.5) * size
        cy = oy + (j + 0.5) * size
        want = float(sizing(np.asarray(cx), np.asarray(cy)))
        if d < max_depth and (d < min_depth or size > want):
            del leaves[(d, i, j)]
            for di in (0, 1):
                for dj in (0, 1):
                    child = (d + 1, 2 * i + di, 2 * j + dj)
                    leaves[child] = None
                    queue.append(child)
    return leaves


def _leaf_containing(
    leaves: dict[tuple[int, int, int], None], d: int, i: int, j: int
) -> tuple[int, int, int] | None:
    """Find the leaf containing cell (d, i, j), walking up ancestors."""
    while d >= 0:
        if (d, i, j) in leaves:
            return (d, i, j)
        d, i, j = d - 1, i >> 1, j >> 1
    return None


def _balance(leaves: dict[tuple[int, int, int], None]) -> None:
    """Enforce 2:1 balance: adjacent leaves differ by at most one depth."""
    work = sorted(leaves, key=lambda t: -t[0])
    while work:
        d, i, j = work.pop()
        if (d, i, j) not in leaves:
            continue
        side = 1 << d
        for ni, nj in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
            if not (0 <= ni < side and 0 <= nj < side):
                continue
            nb = _leaf_containing(leaves, d, ni, nj)
            if nb is None:
                continue  # neighbour is refined deeper — fine
            nd, nii, njj = nb
            if nd < d - 1:
                # Too coarse: split it and revisit.
                del leaves[nb]
                children = []
                for di in (0, 1):
                    for dj in (0, 1):
                        c = (nd + 1, 2 * nii + di, 2 * njj + dj)
                        leaves[c] = None
                        children.append(c)
                work.extend(children)
                work.append((d, i, j))  # re-check current leaf
                break


def build_quadtree_mesh(
    sizing: SizingFn,
    *,
    max_depth: int,
    min_depth: int = 2,
    origin: tuple[float, float] = (0.0, 0.0),
    extent: float = 1.0,
    engine: str | None = None,
    chunk_cells: int | None = None,
) -> Mesh:
    """Build a 2:1-balanced quadtree finite-volume mesh.

    Parameters
    ----------
    sizing:
        Vectorizable function mapping coordinates to the desired cell
        edge length at that point.  A leaf of edge ``s`` is split while
        ``s > sizing(center)`` (and ``depth < max_depth``).
    max_depth / min_depth:
        Depth bounds; ``max_depth`` caps the finest resolution, hence
        also the number of distinct cell sizes ``max_depth - min_depth
        + 1``.
    origin, extent:
        The square domain ``[ox, ox+extent] × [oy, oy+extent]``.
    engine:
        ``"array"`` — chunked NumPy build (the default; required for
        paper-scale meshes); ``"object"`` — the original dict/tuple
        build, kept as the differential oracle.  ``None`` consults
        ``REPRO_MESH_ENGINE``.  Both engines produce bit-identical
        meshes.
    chunk_cells:
        Cells per vectorized pass of the array engine (bounds its
        transient memory; irrelevant to the result).

    Returns
    -------
    :class:`~repro.mesh.structures.Mesh` with cells sorted by Morton
    (z-curve) order of their quadtree coordinates, which keeps
    spatially close cells close in memory.
    """
    from .chunked import (
        QUAD_ARRAY_MAX_DEPTH,
        build_quadtree_arrays,
        resolve_engine,
    )

    if resolve_engine(engine, max_depth, QUAD_ARRAY_MAX_DEPTH) == "array":
        return build_quadtree_arrays(
            sizing,
            max_depth=max_depth,
            min_depth=min_depth,
            origin=origin,
            extent=extent,
            chunk_cells=chunk_cells,
        )
    leaves = _refine(sizing, max_depth, min_depth, origin, extent)
    _balance(leaves)

    # Morton-order the leaves for locality.
    def morton(key: tuple[int, int, int]) -> tuple[int, int]:
        d, i, j = key
        # Normalize coordinates to max depth for a common z-order.
        shift = 24 - d
        ii, jj = i << shift, j << shift
        code = 0
        for b in range(25):
            code |= ((ii >> b) & 1) << (2 * b + 1)
            code |= ((jj >> b) & 1) << (2 * b)
        return (code, d)

    keys = sorted(leaves, key=morton)
    index = {k: idx for idx, k in enumerate(keys)}
    n = len(keys)

    ox, oy = origin
    depth = np.array([k[0] for k in keys], dtype=np.int32)
    size = extent / (1 << depth).astype(np.float64)
    ci = np.array([k[1] for k in keys], dtype=np.int64)
    cj = np.array([k[2] for k in keys], dtype=np.int64)
    centers = np.stack(
        [ox + (ci + 0.5) * size, oy + (cj + 0.5) * size], axis=1
    )
    volumes = size * size

    face_cells: list[tuple[int, int]] = []
    face_area: list[float] = []
    face_normal: list[tuple[float, float]] = []
    face_center: list[tuple[float, float]] = []

    def emit(a: int, b: int, area: float, nx: float, ny: float, fx: float, fy: float):
        face_cells.append((a, b))
        face_area.append(area)
        face_normal.append((nx, ny))
        face_center.append((fx, fy))

    for idx, (d, i, j) in enumerate(keys):
        s = extent / (1 << d)
        x0 = ox + i * s
        y0 = oy + j * s
        side = 1 << d
        # --- east side (+x) ------------------------------------------------
        if i + 1 == side:
            emit(idx, -1, s, 1.0, 0.0, x0 + s, y0 + 0.5 * s)
        else:
            nb = _leaf_containing(leaves, d, i + 1, j)
            if nb is not None:
                emit(idx, index[nb], s, 1.0, 0.0, x0 + s, y0 + 0.5 * s)
            else:
                # Neighbour refined one level deeper (2:1 balance).
                for dj in (0, 1):
                    child = (d + 1, 2 * (i + 1), 2 * j + dj)
                    emit(
                        idx,
                        index[child],
                        s / 2,
                        1.0,
                        0.0,
                        x0 + s,
                        y0 + (dj + 0.5) * s / 2,
                    )
        # --- north side (+y) ----------------------------------------------
        if j + 1 == side:
            emit(idx, -1, s, 0.0, 1.0, x0 + 0.5 * s, y0 + s)
        else:
            nb = _leaf_containing(leaves, d, i, j + 1)
            if nb is not None:
                # Emit only from the smaller-or-equal cell to avoid
                # duplicates: if the neighbour is larger it will not
                # emit this face (it looks north with its own size),
                # so the smaller cell (us) must emit it.
                emit(idx, index[nb], s, 0.0, 1.0, x0 + 0.5 * s, y0 + s)
            else:
                for di in (0, 1):
                    child = (d + 1, 2 * i + di, 2 * (j + 1))
                    emit(
                        idx,
                        index[child],
                        s / 2,
                        0.0,
                        1.0,
                        x0 + (di + 0.5) * s / 2,
                        y0 + s,
                    )
        # --- west boundary -------------------------------------------------
        if i == 0:
            emit(idx, -1, s, -1.0, 0.0, x0, y0 + 0.5 * s)
        # --- south boundary ------------------------------------------------
        if j == 0:
            emit(idx, -1, s, 0.0, -1.0, x0 + 0.5 * s, y0)

    return Mesh(
        cell_centers=centers,
        cell_volumes=volumes,
        cell_depth=depth,
        face_cells=np.array(face_cells, dtype=np.int64).reshape(-1, 2),
        face_area=np.array(face_area, dtype=np.float64),
        face_normal=np.array(face_normal, dtype=np.float64).reshape(-1, 2),
        face_center=np.array(face_center, dtype=np.float64).reshape(-1, 2),
    )
