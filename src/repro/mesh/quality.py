"""Mesh statistics — the machinery behind Table I.

For a mesh plus temporal-level assignment this module computes, per
level: the cell count, the share of cells, and the share of total
*computation* (operating-cost-weighted share), i.e. exactly the three
rows of the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..temporal.levels import operating_costs
from .structures import Mesh

__all__ = ["LevelStats", "level_statistics", "format_table1_row"]


@dataclass
class LevelStats:
    """Per-temporal-level statistics of a mesh (one Table I column
    block).

    Attributes
    ----------
    counts:
        ``(L,)`` cells per level.
    cell_fraction:
        ``(L,)`` share of total cells per level ("%Cells").
    computation_fraction:
        ``(L,)`` share of total operating cost per level
        ("%Computation").
    total_cells:
        Total cell count.
    """

    counts: np.ndarray
    cell_fraction: np.ndarray
    computation_fraction: np.ndarray
    total_cells: int


def level_statistics(mesh: Mesh, tau: np.ndarray) -> LevelStats:
    """Compute Table-I-style statistics for ``mesh`` with levels
    ``tau``."""
    tau = np.asarray(tau, dtype=np.int64)
    if len(tau) != mesh.num_cells:
        raise ValueError("tau length mismatch")
    nlev = int(tau.max()) + 1 if len(tau) else 0
    counts = np.bincount(tau, minlength=nlev).astype(np.int64)
    costs = operating_costs(tau)
    cost_per_level = np.bincount(tau, weights=costs, minlength=nlev)
    total_cost = cost_per_level.sum()
    return LevelStats(
        counts=counts,
        cell_fraction=counts / max(1, counts.sum()),
        computation_fraction=cost_per_level / max(total_cost, 1e-300),
        total_cells=int(counts.sum()),
    )


def format_table1_row(name: str, stats: LevelStats) -> str:
    """Render one mesh's Table I block as fixed-width text."""
    lines = [f"{name}  (total cell count = {stats.total_cells})"]
    header = "            " + "".join(
        f"  tau={l:<6d}" for l in range(len(stats.counts))
    )
    lines.append(header)
    lines.append(
        "#Cells      "
        + "".join(f"  {c:<10d}" for c in stats.counts)
    )
    lines.append(
        "%Cells      "
        + "".join(f"  {100 * f:<9.1f}%" for f in stats.cell_fraction)
    )
    lines.append(
        "%Computation"
        + "".join(f"  {100 * f:<9.1f}%" for f in stats.computation_fraction)
    )
    return "\n".join(lines)
