"""Solution-adaptive mesh refinement (AMR) with conservative transfer.

FLUSEPA-class solvers track moving features (shocks, jets, wakes): the
mesh refines where the solution demands and coarsens elsewhere, which
is *why* temporal levels and partitions evolve at all.  This module
closes that loop for the quadtree meshes:

1. a per-cell **indicator** (density-gradient magnitude by default)
   marks cells for refinement/coarsening;
2. a new 2:1-balanced quadtree is generated whose sizing function
   halves marked cells and doubles coarsenable ones;
3. the conserved state is **transferred exactly**: quadtree cells
   nest, so a new cell is either a copy of an old cell (injection), a
   child of one (constant prolongation), or a union of old descendants
   (volume-weighted restriction) — total conserved quantities are
   preserved to machine precision.
"""

from __future__ import annotations

import numpy as np

from .quadtree import build_quadtree_mesh
from .structures import Mesh

__all__ = ["density_gradient_indicator", "adapt_mesh", "transfer_solution"]


def _cell_keys(mesh: Mesh) -> list[tuple[int, int, int]]:
    """Reconstruct quadtree (depth, i, j) keys from geometry."""
    d = mesh.cell_depth.astype(np.int64)
    scale = (1 << d).astype(np.float64)
    i = np.floor(mesh.cell_centers[:, 0] * scale).astype(np.int64)
    j = np.floor(mesh.cell_centers[:, 1] * scale).astype(np.int64)
    return list(zip(d.tolist(), i.tolist(), j.tolist()))


def density_gradient_indicator(mesh: Mesh, U: np.ndarray) -> np.ndarray:
    """Normalized density-jump indicator per cell.

    For each cell: the maximum relative density difference to its face
    neighbours, scaled into [0, ∞).  Smooth regions → ~0; fronts →
    O(1).
    """
    rho = U[:, 0]
    interior = mesh.interior_faces()
    a = mesh.face_cells[interior, 0]
    b = mesh.face_cells[interior, 1]
    jump = np.abs(rho[a] - rho[b]) / np.maximum(
        np.minimum(np.abs(rho[a]), np.abs(rho[b])), 1e-300
    )
    out = np.zeros(mesh.num_cells)
    np.maximum.at(out, a, jump)
    np.maximum.at(out, b, jump)
    return out


def adapt_mesh(
    mesh: Mesh,
    indicator: np.ndarray,
    *,
    refine_threshold: float,
    coarsen_threshold: float,
    max_depth: int,
    min_depth: int = 2,
) -> Mesh:
    """Build the adapted mesh for a given indicator field.

    Cells with ``indicator > refine_threshold`` get half their size;
    cells below ``coarsen_threshold`` get double; the rest keep their
    size.  The result is re-balanced 2:1 by construction.
    """
    if coarsen_threshold > refine_threshold:
        raise ValueError("coarsen_threshold must be <= refine_threshold")
    d = mesh.cell_depth.astype(np.int64)
    target_depth = d.copy()
    target_depth[indicator > refine_threshold] += 1
    target_depth[indicator < coarsen_threshold] -= 1
    np.clip(target_depth, min_depth, max_depth, out=target_depth)
    target_size = 1.0 / (1 << target_depth).astype(np.float64)

    # Point → old-leaf lookup for the sizing function.
    keys = _cell_keys(mesh)
    leaf_of = {k: idx for idx, k in enumerate(keys)}
    dmax = int(d.max())

    def locate(x: float, y: float) -> int:
        dd = dmax
        i = min(int(x * (1 << dd)), (1 << dd) - 1)
        j = min(int(y * (1 << dd)), (1 << dd) - 1)
        while dd >= 0:
            idx = leaf_of.get((dd, i, j))
            if idx is not None:
                return idx
            dd, i, j = dd - 1, i >> 1, j >> 1
        raise KeyError("point outside mesh")  # pragma: no cover

    def sizing(x, y):
        xs = np.atleast_1d(np.asarray(x, dtype=np.float64))
        ys = np.atleast_1d(np.asarray(y, dtype=np.float64))
        out = np.empty(xs.shape)
        flat_x, flat_y, flat_o = xs.ravel(), ys.ravel(), out.ravel()
        for n in range(flat_x.size):
            flat_o[n] = target_size[locate(flat_x[n], flat_y[n])]
        return out.reshape(np.broadcast(x, y).shape) if np.ndim(x) else float(
            flat_o[0]
        )

    return build_quadtree_mesh(
        sizing, max_depth=max_depth, min_depth=min_depth
    )


def transfer_solution(
    old_mesh: Mesh, new_mesh: Mesh, U: np.ndarray
) -> np.ndarray:
    """Conservatively transfer cell averages between nested quadtree
    meshes.

    For every new cell: if an equal-or-coarser old leaf contains it,
    inject that value (constant prolongation); otherwise average the
    old descendants volume-weighted (restriction).  Total conserved
    quantities match exactly.
    """
    old_keys = _cell_keys(old_mesh)
    old_of = {k: idx for idx, k in enumerate(old_keys)}
    # Children index for restriction: parent key -> old leaves below it.
    U_new = np.zeros((new_mesh.num_cells, U.shape[1]), dtype=np.float64)

    # Aggregate old (value·volume) upward so any ancestor query is a
    # dict lookup: vol_at[key], mass_at[key] for every ancestor key.
    vol_at: dict[tuple[int, int, int], float] = {}
    mass_at: dict[tuple[int, int, int], np.ndarray] = {}
    order = np.argsort(-old_mesh.cell_depth)
    for idx in order:
        k = old_keys[idx]
        v = float(old_mesh.cell_volumes[idx])
        m = U[idx] * v
        while True:
            if k in vol_at:
                vol_at[k] += v
                mass_at[k] = mass_at[k] + m
            else:
                vol_at[k] = v
                mass_at[k] = m.copy()
            if k[0] == 0:
                break
            k = (k[0] - 1, k[1] >> 1, k[2] >> 1)

    new_keys = _cell_keys(new_mesh)
    for idx, k in enumerate(new_keys):
        if k in old_of:
            U_new[idx] = U[old_of[k]]
            continue
        # Coarser old leaf above? Walk up.
        dd, i, j = k
        found = False
        while dd > 0:
            dd, i, j = dd - 1, i >> 1, j >> 1
            if (dd, i, j) in old_of:
                U_new[idx] = U[old_of[(dd, i, j)]]
                found = True
                break
        if found:
            continue
        # New cell is coarser than the old leaves below it: restrict.
        U_new[idx] = mass_at[k] / vol_at[k]
    return U_new
