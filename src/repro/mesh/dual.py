"""Mesh → dual graph conversion.

"The first step in FLUSEPA is to generate a graph from the mesh, where
vertices represent cells and edges their associated faces" (paper §V).
This module performs exactly that conversion; the vertex weights are
supplied by the partitioning strategy (operating costs for SC_OC,
binary level-indicator vectors for MC_TL).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .structures import Mesh

__all__ = ["mesh_to_dual_graph"]


def mesh_to_dual_graph(
    mesh: Mesh,
    *,
    vwgt: np.ndarray | None = None,
    edge_weight: str = "unit",
    index_dtype: np.dtype | type | str | None = None,
    weight_dtype: np.dtype | type | None = None,
) -> CSRGraph:
    """Build the dual graph of a mesh.

    Parameters
    ----------
    vwgt:
        Optional vertex (cell) weights, ``(n,)`` or ``(n, ncon)``.
    edge_weight:
        ``"unit"`` — every face counts 1 (communication ∝ number of
        faces, the paper's model); ``"area"`` — weight by face area
        (communication ∝ interface size).
    index_dtype:
        Storage dtype for ``adjncy`` — e.g. ``np.int32`` for the scale
        tier, or ``"auto"`` to narrow whenever the cell count provably
        fits int32.  ``None`` keeps int64.
    weight_dtype:
        Optional storage dtype for ``adjwgt`` (e.g. ``np.float32``).
        Narrowing is a storage decision only: the partitioner
        accumulates in float64 either way.

    Returns
    -------
    :class:`~repro.graph.csr.CSRGraph` whose vertex ``i`` is cell ``i``
    and whose edges are the interior faces.
    """
    xadj, adjncy, face_of = mesh.cell_adjacency()
    if index_dtype is not None:
        if isinstance(index_dtype, str) and index_dtype == "auto":
            index_dtype = (
                np.int32 if mesh.num_cells <= np.iinfo(np.int32).max else None
            )
        if index_dtype is not None:
            adjncy = adjncy.astype(index_dtype, copy=False)
    if edge_weight == "unit":
        adjwgt = np.ones(len(adjncy), dtype=weight_dtype or np.float64)
    elif edge_weight == "area":
        adjwgt = mesh.face_area[face_of].astype(weight_dtype or np.float64)
    else:
        raise ValueError(f"unknown edge_weight {edge_weight!r}")
    return CSRGraph(xadj, adjncy, vwgt=vwgt, adjwgt=adjwgt)
