"""Mesh → dual graph conversion.

"The first step in FLUSEPA is to generate a graph from the mesh, where
vertices represent cells and edges their associated faces" (paper §V).
This module performs exactly that conversion; the vertex weights are
supplied by the partitioning strategy (operating costs for SC_OC,
binary level-indicator vectors for MC_TL).

Two engines build the cell–cell CSR adjacency:

* ``"materialized"`` — :meth:`~repro.mesh.structures.Mesh.cell_adjacency`:
  concatenate both directions of every interior face and stable-sort
  the whole table.  Simple, but at paper scale (6.4M cells ≈ 13M
  interior faces) the six O(2·faces) int64 scratch arrays of the sort
  dominate the chain's memory high-water.
* ``"streaming"`` (the default) — a chunked two-pass count/fill scheme
  over fixed-size face windows that never materializes the full face
  table: pass 1 accumulates per-cell degrees, pass 2 streams the faces
  twice (a→b direction first, then b→a) and scatters each chunk's
  entries through per-cell fill cursors.  Within a chunk a stable sort
  by source cell plus a run-rank offset reproduces, entry for entry,
  the global stable argsort of the materialized path — the two engines
  are **bit-identical** (the same guarantee, verified the same way, as
  the chunked mesh engine vs its object oracle).

The streaming engine also fills ``adjncy`` directly in the narrowed
index dtype and computes area edge weights in the fill pass, so the
wide int64 adjacency and the ``face_of`` table are never held at all.
"""

from __future__ import annotations

import os

import numpy as np

from ..graph.csr import CSRGraph
from .structures import Mesh

__all__ = ["mesh_to_dual_graph", "resolve_dual_engine", "DEFAULT_CHUNK_FACES"]

#: Default number of faces per streamed window (matches the chunked
#: mesh engine's cell granularity).
DEFAULT_CHUNK_FACES = 1 << 17


def resolve_dual_engine(engine: str | None) -> str:
    """Resolve the dual-construction ``engine`` knob.

    ``None`` consults ``REPRO_DUAL_ENGINE`` and defaults to
    ``"streaming"``; ``"materialized"`` is the oracle path through
    :meth:`~repro.mesh.structures.Mesh.cell_adjacency`.
    """
    if engine is None:
        engine = os.environ.get("REPRO_DUAL_ENGINE", "").strip() or "streaming"
    engine = engine.lower()
    if engine not in ("streaming", "materialized"):
        raise ValueError(
            f"unknown dual engine {engine!r} (expected 'streaming' or "
            "'materialized')"
        )
    return engine


def _resolve_index_dtype(index_dtype, num_cells: int):
    """Normalize the ``index_dtype`` knob (``"auto"`` → int32 when the
    cell count provably fits)."""
    if isinstance(index_dtype, str) and index_dtype == "auto":
        return np.int32 if num_cells <= np.iinfo(np.int32).max else None
    return index_dtype


def _streaming_adjacency(
    mesh: Mesh,
    *,
    index_dtype,
    edge_weight: str,
    weight_dtype,
    chunk_faces: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Chunked two-pass construction of ``(xadj, adjncy, adjwgt)``.

    Bit-identity with the materialized path: that path stable-sorts
    ``src = concat([a, b])``, so cell ``c``'s row lists its a-side
    entries in interior-face order followed by its b-side entries in
    interior-face order.  Streaming all faces in the a→b direction
    first and then b→a, in ascending face windows, visits entries in
    exactly that order; the per-chunk stable sort by source plus a
    run-rank offset places ties in face order, and the persistent
    per-cell cursors carry the row positions across chunks and sweeps.
    """
    n = mesh.num_cells
    m = mesh.num_faces
    fc = mesh.face_cells
    chunk = max(1, int(chunk_faces))

    # Pass 1: per-cell degree counts (both endpoints of every interior
    # face), accumulated chunk by chunk into the future xadj.
    xadj = np.zeros(n + 1, dtype=np.int64)
    for start in range(0, m, chunk):
        cells = fc[start : start + chunk]
        touched = cells[cells[:, 1] >= 0].ravel()
        if len(touched):
            cnt = np.bincount(touched)
            xadj[1 : len(cnt) + 1] += cnt
    np.cumsum(xadj, out=xadj)

    nnz = int(xadj[-1])
    adjncy = np.empty(nnz, dtype=index_dtype or np.int64)
    area = edge_weight == "area"
    if area:
        adjwgt = np.empty(nnz, dtype=weight_dtype or np.float64)
    else:
        adjwgt = np.ones(nnz, dtype=weight_dtype or np.float64)

    # Pass 2: two directional sweeps (a→b, then b→a) over the same
    # ascending face windows; ``cursor`` persists across both.
    cursor = xadj[:-1].copy()
    for side in (0, 1):
        for start in range(0, m, chunk):
            cells = fc[start : start + chunk]
            mask = cells[:, 1] >= 0
            s = cells[mask, side]
            if len(s) == 0:
                continue
            d = cells[mask, 1 - side]
            order = np.argsort(s, kind="stable")
            ss = s[order]
            first = np.ones(len(ss), dtype=bool)
            first[1:] = ss[1:] != ss[:-1]
            starts = np.flatnonzero(first)
            # Rank of each entry inside its equal-source run: stable
            # sort keeps runs in face order, so cursor + rank is the
            # exact slot the global stable argsort would assign.
            rank = np.arange(len(ss), dtype=np.int64) - np.repeat(
                starts, np.diff(np.append(starts, len(ss)))
            )
            pos = cursor[ss] + rank
            adjncy[pos] = d[order]
            if area:
                fidx = start + np.flatnonzero(mask)
                adjwgt[pos] = mesh.face_area[fidx[order]]
            cursor[ss[first]] += np.diff(np.append(starts, len(ss)))
    return xadj, adjncy, adjwgt


def mesh_to_dual_graph(
    mesh: Mesh,
    *,
    vwgt: np.ndarray | None = None,
    edge_weight: str = "unit",
    index_dtype: np.dtype | type | str | None = None,
    weight_dtype: np.dtype | type | None = None,
    engine: str | None = None,
    chunk_faces: int | None = None,
) -> CSRGraph:
    """Build the dual graph of a mesh.

    Parameters
    ----------
    vwgt:
        Optional vertex (cell) weights, ``(n,)`` or ``(n, ncon)``.
    edge_weight:
        ``"unit"`` — every face counts 1 (communication ∝ number of
        faces, the paper's model); ``"area"`` — weight by face area
        (communication ∝ interface size).
    index_dtype:
        Storage dtype for ``adjncy`` — e.g. ``np.int32`` for the scale
        tier, or ``"auto"`` to narrow whenever the cell count provably
        fits int32.  ``None`` keeps int64.
    weight_dtype:
        Optional storage dtype for ``adjwgt`` (e.g. ``np.float32``).
        Narrowing is a storage decision only: the partitioner
        accumulates in float64 either way.
    engine:
        ``"streaming"`` (chunked two-pass builder, the default) or
        ``"materialized"`` (the :meth:`Mesh.cell_adjacency` oracle);
        ``None`` consults ``REPRO_DUAL_ENGINE``.  Both engines produce
        bit-identical graphs.  A mesh whose adjacency cache is already
        warm is served from the cache unless an engine was requested
        explicitly.
    chunk_faces:
        Faces per streamed window (streaming engine only); defaults to
        :data:`DEFAULT_CHUNK_FACES`.  Any positive value — including
        non-powers-of-two — yields the same graph.

    Returns
    -------
    :class:`~repro.graph.csr.CSRGraph` whose vertex ``i`` is cell ``i``
    and whose edges are the interior faces.
    """
    if edge_weight not in ("unit", "area"):
        raise ValueError(f"unknown edge_weight {edge_weight!r}")
    explicit = engine is not None
    resolved = resolve_dual_engine(engine)
    index_dtype = _resolve_index_dtype(index_dtype, mesh.num_cells)

    if resolved == "streaming" and (explicit or mesh._adjacency is None):
        xadj, adjncy, adjwgt = _streaming_adjacency(
            mesh,
            index_dtype=index_dtype,
            edge_weight=edge_weight,
            weight_dtype=weight_dtype,
            chunk_faces=chunk_faces or DEFAULT_CHUNK_FACES,
        )
        return CSRGraph(xadj, adjncy, vwgt=vwgt, adjwgt=adjwgt)

    xadj, adjncy, face_of = mesh.cell_adjacency()
    if index_dtype is not None:
        adjncy = adjncy.astype(index_dtype, copy=False)
    if edge_weight == "unit":
        adjwgt = np.ones(len(adjncy), dtype=weight_dtype or np.float64)
    else:
        adjwgt = mesh.face_area[face_of].astype(weight_dtype or np.float64)
    return CSRGraph(xadj, adjncy, vwgt=vwgt, adjwgt=adjwgt)
