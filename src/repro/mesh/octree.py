"""Adaptive 3D octree mesh generation.

The paper's production meshes are 3D; the 2D quadtree replicas
reproduce their τ-distributions but not their 3D connectivity (a 3D
cell has up to 6+ neighbours, and level-class surface/volume ratios
scale differently).  This module provides the 3D analogue of
:mod:`repro.mesh.quadtree`: a 2:1-balanced octree whose leaves are the
cells, with faces extracted between adjacent leaves (up to four fine
faces per coarse side) and on the domain boundary.

The resulting :class:`~repro.mesh.structures.Mesh` reuses the 2D
container (cell centres carry the first two coordinates; the full 3D
centres are returned separately) — everything downstream of the dual
graph (partitioning, task generation, FLUSIM) is dimension-agnostic,
which is exactly what the 3D experiments exercise.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .structures import Mesh

__all__ = ["build_octree_mesh", "octree_cylinder_mesh"]

Sizing3D = Callable[[float, float, float], float]

# Face directions: +x, +y, +z (emitted from the lower cell), with the
# in-face child offsets used at refined interfaces.
_DIRS = (
    ((1, 0, 0), ((0, 0, 0), (0, 1, 0), (0, 0, 1), (0, 1, 1))),
    ((0, 1, 0), ((0, 0, 0), (1, 0, 0), (0, 0, 1), (1, 0, 1))),
    ((0, 0, 1), ((0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0))),
)


def _refine(
    sizing: Sizing3D, max_depth: int, min_depth: int
) -> dict[tuple[int, int, int, int], None]:
    leaves: dict[tuple[int, int, int, int], None] = {(0, 0, 0, 0): None}
    queue = [(0, 0, 0, 0)]
    while queue:
        d, i, j, k = queue.pop()
        if (d, i, j, k) not in leaves:
            continue
        size = 1.0 / (1 << d)
        cx, cy, cz = (i + 0.5) * size, (j + 0.5) * size, (k + 0.5) * size
        if d < max_depth and (d < min_depth or size > sizing(cx, cy, cz)):
            del leaves[(d, i, j, k)]
            for di in (0, 1):
                for dj in (0, 1):
                    for dk in (0, 1):
                        child = (d + 1, 2 * i + di, 2 * j + dj, 2 * k + dk)
                        leaves[child] = None
                        queue.append(child)
    return leaves


def _leaf_containing(leaves, d, i, j, k):
    while d >= 0:
        if (d, i, j, k) in leaves:
            return (d, i, j, k)
        d, i, j, k = d - 1, i >> 1, j >> 1, k >> 1
    return None


def _balance(leaves: dict[tuple[int, int, int, int], None]) -> None:
    work = sorted(leaves, key=lambda t: -t[0])
    while work:
        d, i, j, k = work.pop()
        if (d, i, j, k) not in leaves:
            continue
        side = 1 << d
        for di, dj, dk in (
            (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)
        ):
            ni, nj, nk = i + di, j + dj, k + dk
            if not (0 <= ni < side and 0 <= nj < side and 0 <= nk < side):
                continue
            nb = _leaf_containing(leaves, d, ni, nj, nk)
            if nb is None:
                continue
            nd, nii, njj, nkk = nb
            if nd < d - 1:
                del leaves[nb]
                children = []
                for ci in (0, 1):
                    for cj in (0, 1):
                        for ck in (0, 1):
                            c = (
                                nd + 1,
                                2 * nii + ci,
                                2 * njj + cj,
                                2 * nkk + ck,
                            )
                            leaves[c] = None
                            children.append(c)
                work.extend(children)
                work.append((d, i, j, k))
                break


def build_octree_mesh(
    sizing: Sizing3D,
    *,
    max_depth: int,
    min_depth: int = 2,
    engine: str | None = None,
    chunk_cells: int | None = None,
) -> tuple[Mesh, np.ndarray]:
    """Build a 2:1-balanced octree finite-volume mesh on the unit
    cube.

    ``engine`` selects the chunked NumPy build (``"array"``, the
    default) or the original dict/tuple build (``"object"``, the
    differential oracle); both are bit-identical.  Scalar-only sizing
    callables are handled by the array engine via a per-point
    fallback.

    Returns ``(mesh, centers3d)``: the dimension-agnostic
    :class:`Mesh` (cell volumes are true 3D volumes, face areas true
    face areas; ``cell_centers``/``face_normal`` carry the x/y
    components) plus the full ``(n, 3)`` cell centres.
    """
    from .chunked import (
        OCT_ARRAY_MAX_DEPTH,
        build_octree_arrays,
        resolve_engine,
    )

    if resolve_engine(engine, max_depth, OCT_ARRAY_MAX_DEPTH) == "array":
        return build_octree_arrays(
            sizing,
            max_depth=max_depth,
            min_depth=min_depth,
            chunk_cells=chunk_cells,
        )
    leaves = _refine(sizing, max_depth, min_depth)
    _balance(leaves)

    keys = sorted(leaves)  # lexicographic (depth, i, j, k) — deterministic
    index = {kk: idx for idx, kk in enumerate(keys)}
    depth = np.array([kk[0] for kk in keys], dtype=np.int32)
    size = 1.0 / (1 << depth).astype(np.float64)
    coords = np.array([kk[1:] for kk in keys], dtype=np.float64)
    centers3 = (coords + 0.5) * size[:, None]
    volumes = size**3

    f_cells: list[tuple[int, int]] = []
    f_area: list[float] = []
    f_normal: list[tuple[float, float]] = []
    f_center: list[tuple[float, float]] = []

    def emit(a, b, area, axis, fc3):
        f_cells.append((a, b))
        f_area.append(area)
        # Project the 3D axis normal onto (x, y); z-faces are stored
        # with a +x tag purely for container compatibility (the unit
        # check only applies to genuinely 2D meshes; here we renorm).
        nx, ny = (1.0, 0.0) if axis in (0, 2) else (0.0, 1.0)
        f_normal.append((nx, ny))
        f_center.append((fc3[0], fc3[1]))

    for idx, (d, i, j, k) in enumerate(keys):
        s = 1.0 / (1 << d)
        side = 1 << d
        base = np.array([i, j, k], dtype=np.int64)
        for axis, ((dx, dy, dz), child_offsets) in enumerate(_DIRS):
            # Low-side boundary face.
            if base[axis] == 0:
                flo = (base + 0.5) * s
                flo[axis] -= 0.5 * s
                emit(idx, -1, s * s, axis, flo)
            # High side: boundary, equal/coarser neighbour, or four
            # refined child faces.
            npos = base + (dx, dy, dz)
            fc3 = (base + 0.5) * s
            fc3[axis] += 0.5 * s
            if npos[axis] == side:
                emit(idx, -1, s * s, axis, fc3)
                continue
            nb = _leaf_containing(leaves, d, int(npos[0]), int(npos[1]), int(npos[2]))
            if nb is not None:
                emit(idx, index[nb], s * s, axis, fc3)
            else:
                cbase = 2 * npos
                for off in child_offsets:
                    child = (
                        d + 1,
                        int(cbase[0] + off[0]),
                        int(cbase[1] + off[1]),
                        int(cbase[2] + off[2]),
                    )
                    cc = (np.array(child[1:]) + 0.5) / (1 << (d + 1))
                    fcc = cc.copy()
                    fcc[axis] -= 0.5 / (1 << (d + 1))
                    emit(idx, index[child], (s / 2) ** 2, axis, fcc)

    mesh = Mesh(
        cell_centers=centers3[:, :2].copy(),
        cell_volumes=volumes,
        cell_depth=depth,
        face_cells=np.array(f_cells, dtype=np.int64).reshape(-1, 2),
        face_area=np.array(f_area, dtype=np.float64),
        face_normal=np.array(f_normal, dtype=np.float64).reshape(-1, 2),
        face_center=np.array(f_center, dtype=np.float64).reshape(-1, 2),
    )
    return mesh, centers3


def octree_cylinder_mesh(
    *,
    max_depth: int = 7,
    min_depth: int = 4,
    engine: str | None = None,
    chunk_cells: int | None = None,
) -> tuple[Mesh, np.ndarray]:
    """3D CYLINDER-like case: a thin fine shell around a vertical axis
    segment at the cube's centre, coarsening radially — the 3D
    analogue of :func:`repro.mesh.generators.cylinder_mesh`, with the
    paper-style coarse-majority τ-distribution."""
    h = 1.0 / (1 << max_depth)
    r_core = 0.03

    def sizing(x: float, y: float, z: float) -> float:
        r = float(np.hypot(x - 0.5, y - 0.5))
        in_height = 0.45 <= z <= 0.55
        if in_height and abs(r - r_core) <= 0.75 * h:
            return h
        if in_height and r <= r_core + 5.0 * h:
            return 2.0 * h
        if r <= 0.15 and 0.4 <= z <= 0.6:
            return 4.0 * h
        return 8.0 * h

    return build_octree_mesh(
        sizing,
        max_depth=max_depth,
        min_depth=min_depth,
        engine=engine,
        chunk_cells=chunk_cells,
    )
