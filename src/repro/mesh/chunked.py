"""Array-based (chunked) quadtree/octree mesh engines.

The object engines in :mod:`repro.mesh.quadtree` and
:mod:`repro.mesh.octree` build the tree as a dict of Python tuples —
clear, but at paper scale (1M+ cells) the tuples, the dict and the
per-face Python lists dominate both time and memory.  This module
re-implements refine / 2:1 balance / face extraction as chunked NumPy
array passes that never materialize O(cells) Python objects:

* **refine** — breadth-first frontier of ``(depth, i, j[, k])``
  arrays, split decisions evaluated vectorized per chunk (the split
  predicate depends only on the cell itself, so the leaf set matches
  the object engine's stack traversal exactly);
* **balance** — leaves live in one sorted array of packed int64 keys;
  each round marks too-coarse neighbours via vectorized ancestor
  lookups (``searchsorted`` membership) and splits them all at once.
  2:1 closure is confluent, so the fixpoint equals the object
  engine's work-list result;
* **faces** — per chunk of cells, neighbour resolution uses the 2:1
  guarantee (containing leaf at depth ``d`` or ``d-1``, else children
  at exactly ``d+1``) and a slot encoding replicates the object
  engine's per-cell emission order bit-for-bit.

Every floating-point expression mirrors the object engine's operation
order, so the produced :class:`~repro.mesh.structures.Mesh` arrays are
bit-identical — the object engine stays available as the differential
oracle (``engine="object"``).
"""

from __future__ import annotations

import os

import numpy as np

from .structures import Mesh

__all__ = [
    "QUAD_ARRAY_MAX_DEPTH",
    "OCT_ARRAY_MAX_DEPTH",
    "DEFAULT_CHUNK_CELLS",
    "resolve_engine",
    "build_quadtree_arrays",
    "build_octree_arrays",
]

#: Morton normalization shifts coordinates to depth 24 (25-bit safe).
QUAD_ARRAY_MAX_DEPTH = 24
#: Packed octree keys give each of i/j/k 16 bits.
OCT_ARRAY_MAX_DEPTH = 16
#: Default number of cells processed per vectorized pass.
DEFAULT_CHUNK_CELLS = 1 << 17

_DIRS2 = ((-1, 0), (1, 0), (0, -1), (0, 1))
_DIRS3 = (
    (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)
)
_CHILD2 = ((0, 0), (0, 1), (1, 0), (1, 1))
_CHILD3 = tuple(
    (a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)
)


def resolve_engine(engine: str | None, max_depth: int, limit: int) -> str:
    """Resolve the mesh ``engine`` knob to ``"array"`` or ``"object"``.

    ``None`` consults ``REPRO_MESH_ENGINE`` and defaults to the array
    engine, falling back to the object engine when ``max_depth``
    exceeds the packed-key ``limit``; an *explicitly* requested array
    engine past the limit raises instead of silently degrading.
    """
    explicit = engine is not None
    if engine is None:
        engine = os.environ.get("REPRO_MESH_ENGINE", "").strip() or "array"
    engine = engine.lower()
    if engine not in ("array", "object"):
        raise ValueError(
            f"unknown mesh engine {engine!r} (expected 'array' or 'object')"
        )
    if engine == "array" and max_depth > limit:
        if explicit:
            raise ValueError(
                f"array engine supports max_depth <= {limit}, got {max_depth}"
            )
        return "object"
    return engine


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _sizing_values(sizing, coords: list[np.ndarray]) -> np.ndarray:
    """Evaluate a sizing function over 1-D coordinate arrays.

    One vectorized call is attempted first; scalar-only callables
    (e.g. 3D sizings with chained comparisons) fall back to a
    per-point loop producing the exact values the object engine sees.
    """
    n = len(coords[0])
    try:
        out = np.asarray(sizing(*coords), dtype=np.float64)
        if out.shape == coords[0].shape:
            return out
        if out.ndim == 0:
            return np.full(n, float(out))
    except Exception:
        pass
    pts = [c.tolist() for c in coords]
    return np.array(
        [float(sizing(*p)) for p in zip(*pts)], dtype=np.float64
    )


def _member(sorted_keys: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Boolean membership of ``q`` in a sorted unique key array."""
    if sorted_keys.size == 0 or q.size == 0:
        return np.zeros(q.shape, dtype=bool)
    pos = np.minimum(
        np.searchsorted(sorted_keys, q), sorted_keys.size - 1
    )
    return sorted_keys[pos] == q


def _pack_quad(d, i, j):
    return (d << 48) | (i << 24) | j


def _unpack_quad(key):
    return [key >> 48, (key >> 24) & 0xFFFFFF, key & 0xFFFFFF]


def _pack_oct(d, i, j, k):
    return (d << 48) | (i << 32) | (j << 16) | k


def _unpack_oct(key):
    return [
        key >> 48,
        (key >> 32) & 0xFFFF,
        (key >> 16) & 0xFFFF,
        key & 0xFFFF,
    ]


def _spread2(v: np.ndarray) -> np.ndarray:
    """Interleave zeros between the low 32 bits of ``v`` (Morton)."""
    v = v.astype(np.uint64)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


# ----------------------------------------------------------------------
# Refinement (dimension-generic)
# ----------------------------------------------------------------------
def _refine_grid(
    sizing,
    max_depth: int,
    min_depth: int,
    origin: tuple[float, ...],
    extent: float,
    chunk: int,
    dim: int,
) -> list[np.ndarray]:
    """Breadth-first chunked refinement; returns ``[d, c0, .., c_dim-1]``
    int64 leaf arrays (unordered)."""
    offsets = _CHILD2 if dim == 2 else _CHILD3
    keep: list[list[np.ndarray]] = []
    cur = [np.zeros(1, dtype=np.int64) for _ in range(dim + 1)]
    while cur[0].size:
        nxt: list[list[np.ndarray]] = [[] for _ in range(dim + 1)]
        for start in range(0, cur[0].size, chunk):
            d = cur[0][start : start + chunk]
            cs = [c[start : start + chunk] for c in cur[1:]]
            size = extent / (1 << d)
            centers = [
                origin[a] + (cs[a] + 0.5) * size for a in range(dim)
            ]
            want = _sizing_values(sizing, centers)
            split = (d < max_depth) & ((d < min_depth) | (size > want))
            if not split.all():
                k = ~split
                keep.append([d[k]] + [c[k] for c in cs])
            if split.any():
                sd = d[split] + 1
                scs = [c[split] * 2 for c in cs]
                for off in offsets:
                    nxt[0].append(sd)
                    for a in range(dim):
                        nxt[a + 1].append(scs[a] + off[a])
        if nxt[0]:
            cur = [np.concatenate(parts) for parts in nxt]
        else:
            cur = [np.empty(0, dtype=np.int64) for _ in range(dim + 1)]
    return [
        np.concatenate([blk[a] for blk in keep]) for a in range(dim + 1)
    ]


# ----------------------------------------------------------------------
# 2:1 balance (dimension-generic)
# ----------------------------------------------------------------------
def _balance_grid(
    leaf_arrays: list[np.ndarray],
    chunk: int,
    pack,
    unpack,
    dirs,
) -> list[np.ndarray]:
    """Enforce 2:1 balance on packed leaf keys; returns the balanced
    ``[d, c0, ...]`` arrays sorted by packed key.

    Each round: vectorized ancestor walk finds every leaf whose
    edge-neighbour's containing leaf is two or more levels coarser,
    splits all of them at once, and re-checks only the new children
    plus the leaves whose constraint fired (the closure is confluent,
    so any forced-split order reaches the same fixpoint as the object
    engine's work list).
    """
    dim = len(leaf_arrays) - 1
    offsets = _CHILD2 if dim == 2 else _CHILD3
    keys = np.sort(pack(*leaf_arrays))
    frontier = keys
    while frontier.size:
        split_parts: list[np.ndarray] = []
        recheck_parts: list[np.ndarray] = []
        for start in range(0, frontier.size, chunk):
            fk = frontier[start : start + chunk]
            fu = unpack(fk)
            fd = fu[0]
            side = 1 << fd
            for dvec in dirs:
                nc = [fu[a + 1] + dvec[a] for a in range(dim)]
                valid = np.ones(fd.shape, dtype=bool)
                for a in range(dim):
                    if dvec[a]:
                        valid &= (nc[a] >= 0) & (nc[a] < side)
                if not valid.any():
                    continue
                ad = fd[valid]
                ac = [c[valid] for c in nc]
                fkeys = fk[valid]
                # Neighbour at depth d or d-1 satisfies the constraint
                # (valid lanes always have d >= 1: a depth-0 root has
                # no in-range neighbours).
                ok = _member(keys, pack(ad, *ac))
                ok |= _member(keys, pack(ad - 1, *[c >> 1 for c in ac]))
                act = ~ok
                ad = ad[act]
                ac = [c[act] for c in ac]
                fkeys = fkeys[act]
                # Walk coarser ancestors: the first hit at depth
                # <= d-2 is a too-coarse containing leaf; no hit at
                # all means the neighbour is refined deeper (fine).
                s = 2
                while ad.size:
                    m = ad >= s
                    if not m.any():
                        break
                    ad = ad[m]
                    ac = [c[m] for c in ac]
                    fkeys = fkeys[m]
                    anc = pack(ad - s, *[c >> s for c in ac])
                    hit = _member(keys, anc)
                    if hit.any():
                        split_parts.append(anc[hit])
                        recheck_parts.append(fkeys[hit])
                        stay = ~hit
                        ad = ad[stay]
                        ac = [c[stay] for c in ac]
                        fkeys = fkeys[stay]
                    s += 1
        if not split_parts:
            break
        to_split = np.unique(np.concatenate(split_parts))
        recheck = np.unique(np.concatenate(recheck_parts))
        su = unpack(to_split)
        children = np.concatenate([
            pack(
                su[0] + 1,
                *[su[a + 1] * 2 + off[a] for a in range(dim)],
            )
            for off in offsets
        ])
        keys = np.setdiff1d(keys, to_split, assume_unique=True)
        keys = np.sort(np.concatenate([keys, children]))
        # A re-check candidate may itself have been split this round.
        recheck = np.setdiff1d(recheck, to_split, assume_unique=True)
        frontier = np.concatenate([children, recheck])
    return unpack(keys)


# ----------------------------------------------------------------------
# Face accumulation
# ----------------------------------------------------------------------
class _FaceChunk:
    """Collects one chunk's face entries and replays the object
    engine's per-cell emission order via ``cell * nslots + slot``
    sort keys."""

    def __init__(self, idx: np.ndarray, nslots: int) -> None:
        self._idx = idx
        self._nslots = nslots
        self._parts: list[tuple[np.ndarray, ...]] = []

    def add(self, mask, slot, b, area, nx, ny, fx, fy) -> None:
        sel = np.flatnonzero(mask)
        if sel.size == 0:
            return
        shape = mask.shape
        self._parts.append((
            self._idx[sel] * self._nslots + slot,
            self._idx[sel],
            np.broadcast_to(np.asarray(b, dtype=np.int64), shape)[sel],
            np.broadcast_to(area, shape)[sel],
            np.full(sel.size, nx),
            np.full(sel.size, ny),
            np.broadcast_to(fx, shape)[sel],
            np.broadcast_to(fy, shape)[sel],
        ))

    def assembled(self):
        """Returns (face_cells, face_area, face_normal, face_center)
        arrays for this chunk, in emission order."""
        cols = [np.concatenate(c) for c in zip(*self._parts)]
        order = np.argsort(cols[0])  # keys are unique per (cell, slot)
        a, b = cols[1][order], cols[2][order]
        return (
            np.stack([a, b], axis=1),
            cols[3][order],
            np.stack([cols[4][order], cols[5][order]], axis=1),
            np.stack([cols[6][order], cols[7][order]], axis=1),
        )


def _make_lookup(pk: np.ndarray):
    """Packed-key → cell-index lookup over the final cell ordering."""
    lorder = np.argsort(pk)
    pks = pk[lorder]

    def lookup(q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pos = np.minimum(np.searchsorted(pks, q), pks.size - 1)
        found = pks[pos] == q
        return np.where(found, lorder[pos], -1), found

    return lookup


# ----------------------------------------------------------------------
# Quadtree
# ----------------------------------------------------------------------
def build_quadtree_arrays(
    sizing,
    *,
    max_depth: int,
    min_depth: int = 2,
    origin: tuple[float, float] = (0.0, 0.0),
    extent: float = 1.0,
    chunk_cells: int | None = None,
) -> Mesh:
    """Array-engine quadtree build; bit-identical to the object engine
    in :func:`repro.mesh.quadtree.build_quadtree_mesh`."""
    if max_depth > QUAD_ARRAY_MAX_DEPTH:
        raise ValueError(
            f"array engine supports max_depth <= {QUAD_ARRAY_MAX_DEPTH}"
        )
    chunk = max(1, int(chunk_cells or DEFAULT_CHUNK_CELLS))
    leaves = _refine_grid(
        sizing, max_depth, min_depth, origin, extent, chunk, 2
    )
    bd, bi, bj = _balance_grid(
        leaves, chunk, _pack_quad, _unpack_quad, _DIRS2
    )

    # Morton (z-curve) cell order: normalize anchors to depth 24 and
    # interleave — identical to the object engine's bit loop.
    sh = 24 - bd
    code = (_spread2((bi << sh).astype(np.uint64)) << np.uint64(1)) | (
        _spread2((bj << sh).astype(np.uint64))
    )
    skey = (code << np.uint64(5)) | bd.astype(np.uint64)
    order = np.argsort(skey, kind="stable")
    d64, i64, j64 = bd[order], bi[order], bj[order]
    n = d64.size

    ox, oy = origin
    depth = d64.astype(np.int32)
    size = extent / (1 << depth).astype(np.float64)
    centers = np.stack(
        [ox + (i64 + 0.5) * size, oy + (j64 + 0.5) * size], axis=1
    )
    volumes = size * size

    lookup = _make_lookup(_pack_quad(d64, i64, j64))

    fc_parts, area_parts, nrm_parts, ctr_parts = [], [], [], []
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        d = d64[start:stop]
        i = i64[start:stop]
        j = j64[start:stop]
        idx = np.arange(start, stop, dtype=np.int64)
        s = extent / (1 << d)
        x0 = ox + i * s
        y0 = oy + j * s
        side = 1 << d
        acc = _FaceChunk(idx, 6)

        # --- east side (+x): slot 0 (and 1 at refined interfaces) ----
        bnd = (i + 1) == side
        inner = ~bnd
        nb_idx, nb_f = lookup(_pack_quad(d, i + 1, j))
        p_idx, p_f = lookup(_pack_quad(d - 1, (i + 1) >> 1, j >> 1))
        same = inner & nb_f
        childc = inner & ~nb_f & ~p_f
        b0 = np.where(bnd, -1, np.where(same, nb_idx, p_idx))
        acc.add(~childc, 0, b0, s, 1.0, 0.0, x0 + s, y0 + 0.5 * s)
        c0, _ = lookup(_pack_quad(d + 1, 2 * (i + 1), 2 * j))
        c1, _ = lookup(_pack_quad(d + 1, 2 * (i + 1), 2 * j + 1))
        acc.add(childc, 0, c0, s / 2, 1.0, 0.0, x0 + s, y0 + 0.5 * s / 2)
        acc.add(childc, 1, c1, s / 2, 1.0, 0.0, x0 + s, y0 + 1.5 * s / 2)

        # --- north side (+y): slot 2 (and 3) -------------------------
        bnd = (j + 1) == side
        inner = ~bnd
        nb_idx, nb_f = lookup(_pack_quad(d, i, j + 1))
        p_idx, p_f = lookup(_pack_quad(d - 1, i >> 1, (j + 1) >> 1))
        same = inner & nb_f
        childc = inner & ~nb_f & ~p_f
        b0 = np.where(bnd, -1, np.where(same, nb_idx, p_idx))
        acc.add(~childc, 2, b0, s, 0.0, 1.0, x0 + 0.5 * s, y0 + s)
        c0, _ = lookup(_pack_quad(d + 1, 2 * i, 2 * (j + 1)))
        c1, _ = lookup(_pack_quad(d + 1, 2 * i + 1, 2 * (j + 1)))
        acc.add(childc, 2, c0, s / 2, 0.0, 1.0, x0 + 0.5 * s / 2, y0 + s)
        acc.add(childc, 3, c1, s / 2, 0.0, 1.0, x0 + 1.5 * s / 2, y0 + s)

        # --- west / south boundaries: slots 4, 5 ---------------------
        acc.add(i == 0, 4, -1, s, -1.0, 0.0, x0, y0 + 0.5 * s)
        acc.add(j == 0, 5, -1, s, 0.0, -1.0, x0 + 0.5 * s, y0)

        fc, fa, fn, fctr = acc.assembled()
        fc_parts.append(fc)
        area_parts.append(fa)
        nrm_parts.append(fn)
        ctr_parts.append(fctr)

    return Mesh(
        cell_centers=centers,
        cell_volumes=volumes,
        cell_depth=depth,
        face_cells=np.concatenate(fc_parts),
        face_area=np.concatenate(area_parts),
        face_normal=np.concatenate(nrm_parts),
        face_center=np.concatenate(ctr_parts),
    )


# ----------------------------------------------------------------------
# Octree
# ----------------------------------------------------------------------
# High-side in-face child offsets per axis — must match the object
# engine's _DIRS table exactly (slot order at refined interfaces).
_OCT_CHILD_OFFSETS = (
    ((0, 0, 0), (0, 1, 0), (0, 0, 1), (0, 1, 1)),
    ((0, 0, 0), (1, 0, 0), (0, 0, 1), (1, 0, 1)),
    ((0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)),
)


def build_octree_arrays(
    sizing,
    *,
    max_depth: int,
    min_depth: int = 2,
    chunk_cells: int | None = None,
) -> tuple[Mesh, np.ndarray]:
    """Array-engine octree build; bit-identical to the object engine
    in :func:`repro.mesh.octree.build_octree_mesh`."""
    if max_depth > OCT_ARRAY_MAX_DEPTH:
        raise ValueError(
            f"array engine supports max_depth <= {OCT_ARRAY_MAX_DEPTH}"
        )
    chunk = max(1, int(chunk_cells or DEFAULT_CHUNK_CELLS))
    leaves = _refine_grid(
        sizing, max_depth, min_depth, (0.0, 0.0, 0.0), 1.0, chunk, 3
    )
    balanced = _balance_grid(
        leaves, chunk, _pack_oct, _unpack_oct, _DIRS3
    )
    # Packed-key order IS lexicographic (d, i, j, k) — the object
    # engine's sorted(leaves) cell order.
    order = np.argsort(_pack_oct(*balanced), kind="stable")
    d64, i64, j64, k64 = (c[order] for c in balanced)
    n = d64.size

    depth = d64.astype(np.int32)
    size = 1.0 / (1 << depth).astype(np.float64)
    coords = np.stack([i64, j64, k64], axis=1).astype(np.float64)
    centers3 = (coords + 0.5) * size[:, None]
    volumes = size**3

    lookup = _make_lookup(_pack_oct(d64, i64, j64, k64))

    fc_parts, area_parts, nrm_parts, ctr_parts = [], [], [], []
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        d = d64[start:stop]
        bases = [i64[start:stop], j64[start:stop], k64[start:stop]]
        idx = np.arange(start, stop, dtype=np.int64)
        s = 1.0 / (1 << d)
        side = 1 << d
        ctr = [(bases[a] + 0.5) * s for a in range(3)]
        acc = _FaceChunk(idx, 15)

        for axis in range(3):
            bslot = axis * 5
            nx, ny = (1.0, 0.0) if axis in (0, 2) else (0.0, 1.0)
            # Low-side boundary face.
            flo = [
                ctr[a] - 0.5 * s if a == axis else ctr[a]
                for a in range(2)
            ]
            acc.add(
                bases[axis] == 0, bslot, -1, s * s, nx, ny, flo[0], flo[1]
            )
            # High side: boundary, equal/coarser neighbour, or four
            # refined child faces.
            bnd = (bases[axis] + 1) == side
            inner = ~bnd
            ncoords = [
                bases[a] + 1 if a == axis else bases[a] for a in range(3)
            ]
            nb_idx, nb_f = lookup(_pack_oct(d, *ncoords))
            p_idx, p_f = lookup(
                _pack_oct(d - 1, *[c >> 1 for c in ncoords])
            )
            same = inner & nb_f
            childc = inner & ~nb_f & ~p_f
            b0 = np.where(bnd, -1, np.where(same, nb_idx, p_idx))
            fhi = [
                ctr[a] + 0.5 * s if a == axis else ctr[a]
                for a in range(2)
            ]
            acc.add(~childc, bslot + 1, b0, s * s, nx, ny, fhi[0], fhi[1])
            p2 = 1 << (d + 1)
            for t, off in enumerate(_OCT_CHILD_OFFSETS[axis]):
                ccoords = [2 * ncoords[a] + off[a] for a in range(3)]
                ck, _ = lookup(_pack_oct(d + 1, *ccoords))
                fcc = [
                    (ccoords[a] + 0.5) / p2
                    - (0.5 / p2 if a == axis else 0.0)
                    for a in range(2)
                ]
                acc.add(
                    childc,
                    bslot + 1 + t,
                    ck,
                    (s / 2) ** 2,
                    nx,
                    ny,
                    fcc[0],
                    fcc[1],
                )

        fc, fa, fn, fctr = acc.assembled()
        fc_parts.append(fc)
        area_parts.append(fa)
        nrm_parts.append(fn)
        ctr_parts.append(fctr)

    mesh = Mesh(
        cell_centers=centers3[:, :2].copy(),
        cell_volumes=volumes,
        cell_depth=depth,
        face_cells=np.concatenate(fc_parts),
        face_area=np.concatenate(area_parts),
        face_normal=np.concatenate(nrm_parts),
        face_center=np.concatenate(ctr_parts),
    )
    return mesh, centers3
