"""Synthetic replicas of the paper's three Airbus meshes.

The originals (Table I of the paper) are production CFD meshes that
cannot be redistributed:

============== ========== ======== ====================================
mesh           cells      τ-levels geometry
============== ========== ======== ====================================
CYLINDER       6 400 505  4        fine annulus around a central piece,
                                   coarsening toward the far field
CUBE             151 817  4        three non-contiguous fine hotspots
                                   ("worst case" for partitioning)
PPRIME_NOZZLE 12 594 374  3        nozzle exit + elongated jet plume
============== ========== ======== ====================================

Each generator reproduces the *geometry class* (where refinement
concentrates) and — at its default depth — the paper's per-τ cell
distribution shape: very few fine cells concentrated around the
feature, a heavy tail of coarse far-field cells.  Band radii were
derived from Table I's cell fractions via ``area_k ∝ frac_k · 4^k``.
``max_depth`` scales the total cell count (laptop-scale defaults:
2·10⁴–3·10⁴ cells).  For distribution-exact scheduling studies use
:func:`repro.temporal.levels.assign_levels_by_fraction`.
"""

from __future__ import annotations

import numpy as np

from .quadtree import build_quadtree_mesh
from .structures import Mesh

__all__ = [
    "cylinder_mesh",
    "cube_mesh",
    "pprime_nozzle_mesh",
    "uniform_mesh",
    "MESH_FACTORIES",
    "PAPER_CELL_FRACTIONS",
    "PAPER_CELL_COUNTS",
]

#: Table I "%Cells" rows (per τ, ascending) of the original meshes.
PAPER_CELL_FRACTIONS = {
    "cylinder": np.array([0.008, 0.043, 0.326, 0.623]),
    "cube": np.array([0.020, 0.155, 0.003, 0.822]),
    "pprime_nozzle": np.array([0.119, 0.322, 0.559]),
}

#: Table I total cell counts of the original meshes.
PAPER_CELL_COUNTS = {
    "cylinder": 6_400_505,
    "cube": 151_817,
    "pprime_nozzle": 12_594_374,
}


def cylinder_mesh(
    *,
    max_depth: int = 10,
    engine: str | None = None,
    chunk_cells: int | None = None,
) -> Mesh:
    """CYLINDER replica: radial grading around a central piece.

    The finest cells form a thin annulus at radius ``r_core`` (the
    machinery piece that is "the nerve center of the phenomenon");
    concentric bands of doubling cell size follow, giving four temporal
    levels with distribution ≈ (1.5 / 6 / 32 / 61)% of cells for
    τ=0..3 at the default depth (paper: 0.8 / 4.3 / 32.6 / 62.3).
    """
    h = 1.0 / (1 << max_depth)
    cx = cy = 0.5
    r_core = 0.02
    ring = 1.5 * h          # fine ring half-thickness (≈3 cells thick)
    t1 = r_core + 16.0 * h  # τ=1 band outer radius
    r2 = 0.193              # τ=2 band outer radius (from Table I areas)

    def sizing(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        r = np.hypot(x - cx, y - cy)
        return np.where(
            np.abs(r - r_core) <= ring,
            h,
            np.where(
                r < r_core,
                4.0 * h,  # solid-body interior: keep moderately coarse
                np.where(r <= t1, 2.0 * h, np.where(r <= r2, 4.0 * h, 8.0 * h)),
            ),
        )

    return build_quadtree_mesh(
        sizing,
        max_depth=max_depth,
        min_depth=max_depth - 3,
        engine=engine,
        chunk_cells=chunk_cells,
    )


def cube_mesh(
    *,
    max_depth: int = 10,
    engine: str | None = None,
    chunk_cells: int | None = None,
) -> Mesh:
    """CUBE replica: three non-contiguous fine hotspots.

    The paper calls this mesh the worst case: its τ=0 cells are split
    over three disjoint regions, which defeats partitioners trying to
    keep domains contiguous while balancing levels.  The sizing jumps
    straight from 2h to 8h past the hotspot halo, so the τ=2 class only
    exists as the thin transition shell forced by 2:1 balance —
    reproducing the paper's striking 0.3 % τ=2 share.
    """
    h = 1.0 / (1 << max_depth)
    hotspots = np.array([[0.2, 0.25], [0.75, 0.3], [0.45, 0.8]])
    r0 = 0.008  # fine core radius
    r1 = 0.036  # τ=1 halo radius

    def sizing(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        d = np.full(np.broadcast(x, y).shape, np.inf)
        for hx, hy in hotspots:
            d = np.minimum(d, np.hypot(x - hx, y - hy))
        return np.where(d <= r0, h, np.where(d <= r1, 2.0 * h, 8.0 * h))

    return build_quadtree_mesh(
        sizing,
        max_depth=max_depth,
        min_depth=max_depth - 3,
        engine=engine,
        chunk_cells=chunk_cells,
    )


def pprime_nozzle_mesh(
    *,
    max_depth: int = 9,
    engine: str | None = None,
    chunk_cells: int | None = None,
) -> Mesh:
    """PPRIME_NOZZLE replica: nozzle exit plus an elongated jet plume.

    Three temporal levels; the fine region is a long streamwise plume
    (the resolved jet) rather than a compact annulus, so fine cells are
    comparatively numerous — ≈ (12 / 32 / 56)% of cells for τ=0..2,
    matching the paper's 11.9 / 32.2 / 55.9.  All bands are 2D areas,
    so this distribution is essentially depth-independent.
    """
    h = 1.0 / (1 << max_depth)
    ax, ay, bx = 0.18, 0.5, 0.68
    w0 = 0.0115  # fine plume half-width
    w1 = 0.103   # τ=1 sheath half-width

    def sizing(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        t = np.clip((x - ax) / (bx - ax), 0.0, 1.0)
        px = ax + t * (bx - ax)
        d = np.hypot(x - px, y - ay)
        return np.where(d <= w0, h, np.where(d <= w1, 2.0 * h, 4.0 * h))

    return build_quadtree_mesh(
        sizing,
        max_depth=max_depth,
        min_depth=max_depth - 2,
        engine=engine,
        chunk_cells=chunk_cells,
    )


def uniform_mesh(
    *,
    depth: int | None = None,
    max_depth: int = 5,
    engine: str | None = None,
    chunk_cells: int | None = None,
) -> Mesh:
    """Uniform (single temporal level) mesh — baseline and test helper.

    ``depth`` and ``max_depth`` are synonyms (the former wins if both
    are given); the alias keeps the factory signature-compatible with
    the graded generators.
    """
    d = max_depth if depth is None else depth
    h = 1.0 / (1 << d)

    def sizing(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.full(np.broadcast(x, y).shape, h)

    return build_quadtree_mesh(
        sizing, max_depth=d, min_depth=d, engine=engine,
        chunk_cells=chunk_cells,
    )


#: Name → factory map used by the CLI and the experiment harnesses.
MESH_FACTORIES = {
    "cylinder": cylinder_mesh,
    "cube": cube_mesh,
    "pprime_nozzle": pprime_nozzle_mesh,
    "uniform": uniform_mesh,
}
