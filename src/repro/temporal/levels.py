"""Temporal level assignment and operating costs.

In the paper's adaptive time-stepping scheme every cell carries a
*temporal level* τ reflecting its maximum allowed time step: the time
step doubles with each level, so a cell of level τ is integrated every
``2**τ``-th subiteration.  For an explicit solver the stable time step
scales with the cell size (CFL), so on a quadtree mesh the level is
simply the cell's size octave above the finest cell.

The *operating cost* of a cell is the number of times it is computed
during one full iteration: ``2**(τ_max − τ)`` (paper §II-A).
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh

__all__ = [
    "levels_from_depth",
    "levels_from_timestep",
    "relevel_with_hysteresis",
    "assign_levels_by_fraction",
    "operating_costs",
    "face_levels",
]


def levels_from_depth(mesh: Mesh, *, num_levels: int | None = None) -> np.ndarray:
    """Temporal levels from quadtree depth.

    The finest cells (largest depth) get τ=0; each halving of
    resolution adds one level.  If ``num_levels`` is given, levels are
    clipped to ``num_levels - 1`` — clipping makes coarse cells compute
    *more* often than strictly necessary, which is always CFL-safe.
    """
    d = mesh.cell_depth.astype(np.int64)
    tau = d.max() - d
    if num_levels is not None:
        if num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        tau = np.minimum(tau, num_levels - 1)
    return tau.astype(np.int32)


def levels_from_timestep(
    dt_cell: np.ndarray, *, num_levels: int | None = None
) -> np.ndarray:
    """Temporal levels from per-cell stable time steps.

    ``τ(c) = floor(log2(dt_c / dt_min))``: a cell may take time step
    ``2**τ · dt_min`` without violating its own stability bound.  This
    is how the solver derives levels from the CFL condition (see
    :mod:`repro.solver.timestep`).
    """
    dt_cell = np.asarray(dt_cell, dtype=np.float64)
    if np.any(dt_cell <= 0):
        raise ValueError("time steps must be positive")
    dt_min = dt_cell.min()
    tau = np.floor(np.log2(dt_cell / dt_min + 1e-12)).astype(np.int64)
    tau = np.maximum(tau, 0)
    if num_levels is not None:
        tau = np.minimum(tau, num_levels - 1)
    return tau.astype(np.int32)


def relevel_with_hysteresis(
    dt_cell: np.ndarray,
    tau_old: np.ndarray,
    dt_ref: float,
    *,
    num_levels: int | None = None,
    margin: float = 0.15,
) -> np.ndarray:
    """Update temporal levels with an anchored reference and
    hysteresis.

    Naively recomputing ``τ = floor(log2(dt/dt_min))`` every iteration
    reclassifies large cell populations whenever the global minimum
    drifts, because every octave boundary moves with it.  Production
    codes instead anchor the octaves to a fixed reference step and add
    hysteresis; this is what makes the paper's §III-A observation —
    "the temporal levels of the cells experience minimal evolution
    across iterations" — hold in practice.

    Rules (per cell, with ``x = log2(dt / dt_ref)``):

    * **down** (τ decreases): applied *immediately* whenever
      ``x < τ_old`` — the cell's stability bound no longer covers its
      band, so there is no slack on the unsafe side;
    * **up** (τ increases): applied only when the cell has left its
      band by the ``margin``: ``x ≥ τ_old + 1 + margin``.

    Returns the new ``(n,)`` int32 level array.
    """
    dt_cell = np.asarray(dt_cell, dtype=np.float64)
    tau_old = np.asarray(tau_old, dtype=np.int64)
    if dt_ref <= 0:
        raise ValueError("dt_ref must be positive")
    if np.any(dt_cell <= 0):
        raise ValueError("time steps must be positive")
    x = np.log2(dt_cell / dt_ref)
    tau = tau_old.copy()
    down = x < tau_old
    tau[down] = np.floor(x[down]).astype(np.int64)
    up = x >= tau_old + 1 + margin
    tau[up] = np.floor(x[up] - margin).astype(np.int64)
    tau = np.maximum(tau, 0)
    if num_levels is not None:
        tau = np.minimum(tau, num_levels - 1)
    return tau.astype(np.int32)


def assign_levels_by_fraction(
    mesh: Mesh, fractions: np.ndarray, *, seed: int = 0
) -> np.ndarray:
    """Assign levels matching exact per-level cell-count fractions.

    Cells are sorted by volume (ties broken deterministically) and the
    smallest ``fractions[0]`` share becomes τ=0, the next
    ``fractions[1]`` share τ=1, etc.  Used to replicate Table I's
    distributions exactly in scheduling-only studies where the physics
    does not run.
    """
    fractions = np.asarray(fractions, dtype=np.float64)
    if np.any(fractions < 0) or not np.isclose(fractions.sum(), 1.0):
        raise ValueError("fractions must be non-negative and sum to 1")
    n = mesh.num_cells
    rng = np.random.default_rng(seed)
    jitter = rng.random(n) * 1e-12  # deterministic tie-breaking
    order = np.argsort(mesh.cell_volumes + jitter, kind="stable")
    bounds = np.floor(np.cumsum(fractions) * n + 0.5).astype(np.int64)
    tau = np.zeros(n, dtype=np.int32)
    start = 0
    for lvl, end in enumerate(bounds):
        tau[order[start:end]] = lvl
        start = end
    tau[order[start:]] = len(fractions) - 1
    return tau


def operating_costs(tau: np.ndarray, *, tau_max: int | None = None) -> np.ndarray:
    """Operating cost ``2**(τ_max − τ)`` per cell (activations per
    iteration)."""
    tau = np.asarray(tau, dtype=np.int64)
    if tau_max is None:
        tau_max = int(tau.max()) if len(tau) else 0
    if np.any(tau > tau_max) or np.any(tau < 0):
        raise ValueError("levels out of range")
    return np.exp2(tau_max - tau)


def face_levels(mesh: Mesh, tau: np.ndarray) -> np.ndarray:
    """Temporal level of every face.

    A face is computed whenever its most frequently updated adjacent
    cell is, i.e. ``τ_face = min(τ_a, τ_b)``; boundary faces inherit
    their single cell's level.
    """
    a = mesh.face_cells[:, 0]
    b = mesh.face_cells[:, 1]
    out = tau[a].astype(np.int32).copy()
    interior = b >= 0
    out[interior] = np.minimum(out[interior], tau[b[interior]])
    return out
