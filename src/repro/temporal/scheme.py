"""The explicit temporal-adaptive integration scheme.

One *iteration* advances every cell to the same physical time; it is
divided into ``2**τ_max`` *subiterations*.  A cell of level τ is
*active* (recomputed) at subiteration ``s`` iff ``s % 2**τ == 0``:
τ=0 cells are active in every subiteration, τ=1 cells every other one,
and the coarsest cells only at ``s = 0`` (paper Fig. 4).

Each subiteration contains one *phase* per active level, traversed in
**descending** level order (coarse first — their long step must be
taken before finer cells interpolate against it, paper Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "num_subiterations",
    "active_levels",
    "is_active",
    "subiteration_tau_max",
    "IterationSchedule",
]


def num_subiterations(tau_max: int) -> int:
    """Subiterations per iteration: ``2**τ_max``."""
    if tau_max < 0:
        raise ValueError("tau_max must be >= 0")
    return 1 << tau_max


def is_active(tau: np.ndarray | int, s: int) -> np.ndarray | bool:
    """Whether cells of level(s) ``tau`` are active at subiteration ``s``."""
    tau_arr = np.asarray(tau)
    return (s % np.exp2(tau_arr).astype(np.int64)) == 0


def subiteration_tau_max(s: int, tau_max: int) -> int:
    """Highest level active at subiteration ``s``.

    ``s = 0`` activates every level; otherwise the highest active level
    is the number of trailing zero bits of ``s``.
    """
    if s == 0:
        return tau_max
    return min((s & -s).bit_length() - 1, tau_max)


def active_levels(s: int, tau_max: int) -> list[int]:
    """Active levels of subiteration ``s`` in descending (phase) order."""
    top = subiteration_tau_max(s, tau_max)
    return list(range(top, -1, -1))


@dataclass
class IterationSchedule:
    """Precomputed schedule of one iteration.

    Attributes
    ----------
    tau_max:
        Highest temporal level in the mesh.
    subiterations:
        For each subiteration, the list of active levels in phase
        (descending) order.
    """

    tau_max: int
    subiterations: list[list[int]]

    @classmethod
    def create(cls, tau_max: int) -> "IterationSchedule":
        """Build the schedule for a mesh whose highest level is
        ``tau_max``."""
        nsub = num_subiterations(tau_max)
        return cls(
            tau_max=tau_max,
            subiterations=[active_levels(s, tau_max) for s in range(nsub)],
        )

    @property
    def num_subiterations(self) -> int:
        """Number of subiterations (``2**τ_max``)."""
        return len(self.subiterations)

    def activations_per_level(self) -> np.ndarray:
        """How many times each level is active during one iteration.

        Equals the operating cost ``2**(τ_max − τ)`` — the consistency
        of the two views is checked by the test suite.
        """
        counts = np.zeros(self.tau_max + 1, dtype=np.int64)
        for levels in self.subiterations:
            for lvl in levels:
                counts[lvl] += 1
        return counts

    def phase_count(self) -> int:
        """Total number of phases across the iteration."""
        return sum(len(levels) for levels in self.subiterations)
