"""Temporal-adaptive integration scheme: levels, costs, schedules."""

from .levels import (
    assign_levels_by_fraction,
    face_levels,
    levels_from_depth,
    levels_from_timestep,
    operating_costs,
)
from .scheme import (
    IterationSchedule,
    active_levels,
    is_active,
    num_subiterations,
    subiteration_tau_max,
)

__all__ = [
    "levels_from_depth",
    "levels_from_timestep",
    "assign_levels_by_fraction",
    "operating_costs",
    "face_levels",
    "num_subiterations",
    "active_levels",
    "is_active",
    "subiteration_tau_max",
    "IterationSchedule",
]
