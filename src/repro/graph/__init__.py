"""From-scratch multilevel graph partitioner (METIS substitute).

The paper implements its MC_TL strategy on top of METIS's
multi-constraint recursive bisection.  No METIS binding is available in
this environment, so this package provides the same algorithm family in
pure NumPy:

* :class:`~repro.graph.csr.CSRGraph` — METIS-style CSR graph with
  multi-column vertex weights (one column per balance constraint);
* heavy-edge-matching coarsening (:mod:`repro.graph.coarsen`);
* greedy-graph-growing initial bisection (:mod:`repro.graph.initial`);
* multi-constraint FM refinement (:mod:`repro.graph.refine`);
* recursive-bisection and k-way drivers
  (:func:`~repro.graph.partition.partition_graph`).
"""

from .contracts import (
    InputReport,
    PartitionQualityWarning,
    block_partition,
    check_partition_contract,
    connected_components,
    validate_partition_inputs,
)
from .csr import CSRGraph, graph_from_edges, validate_csr
from .metrics import (
    boundary_vertices,
    connected_components_of_part,
    edge_cut,
    imbalance,
    part_weights,
    parts_connected,
)
from .partition import (
    PartitionResult,
    kway_direct,
    partition_graph,
    recursive_bisection,
)
from .postprocess import ReconnectResult, part_components, reconnect_parts

__all__ = [
    "CSRGraph",
    "graph_from_edges",
    "validate_csr",
    "edge_cut",
    "imbalance",
    "part_weights",
    "boundary_vertices",
    "parts_connected",
    "connected_components_of_part",
    "PartitionResult",
    "partition_graph",
    "recursive_bisection",
    "kway_direct",
    "PartitionQualityWarning",
    "InputReport",
    "validate_partition_inputs",
    "check_partition_contract",
    "connected_components",
    "block_partition",
    "ReconnectResult",
    "part_components",
    "reconnect_parts",
]
