"""Public partitioning API: recursive bisection and k-way drivers.

:func:`partition_graph` is the entry point used by everything else in
the library.  It mirrors ``METIS_PartGraphRecursive``: given a CSR
graph whose vertex weights may have multiple columns (constraints), it
returns a ``(n,)`` part assignment such that every constraint is
balanced across parts within a tolerance, while heuristically
minimizing edge cut.

The paper uses the *recursive bisection* method ("because it produces
higher quality solutions on our meshes", §V); we implement it as the
default and provide a direct k-way variant for ablation.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

import numpy as np

from ..resilience.errors import PartitionQualityError
from .bisect import multilevel_bisect
from .coarsen import HierarchySpill
from .contracts import (
    apportion_parts,
    block_partition,
    check_partition_contract,
    connected_components,
    validate_partition_inputs,
    warn_quality,
    weighted_contiguous_cuts,
)
from .csr import CSRGraph
from .metrics import edge_cut, imbalance
from .refine import fm_refine

__all__ = ["PartitionResult", "partition_graph", "recursive_bisection", "kway_direct"]


def _resolve_n_jobs(n_jobs: int | str | None) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/1 → serial, ``-1`` → one
    worker per CPU, other values are used as-is (minimum 1).

    Accepts strings (e.g. a raw ``REPRO_N_JOBS`` environment value);
    an unparsable string is *not* worth killing a campaign for — it
    warns and falls back to serial.
    """
    if n_jobs is None:
        return 1
    if isinstance(n_jobs, str):
        try:
            n_jobs = int(n_jobs.strip() or "1")
        except ValueError:
            warnings.warn(
                f"invalid n_jobs value {n_jobs!r} (expected an "
                "integer); falling back to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, n_jobs)


#: Below this many vertices a process pool's fork/attach overhead
#: outweighs the GIL relief; ``executor="auto"`` keeps threads.
_PROCESS_MIN_VERTICES = 200_000


def _resolve_executor(executor: str | None, num_vertices: int) -> str:
    """Normalize the parallel-backend knob to ``"thread"`` or
    ``"process"``.

    ``None``/``"auto"`` picks processes only for graphs large enough
    (>= ``_PROCESS_MIN_VERTICES`` vertices) to amortize the shared
    segment setup; the environment-level default lives in
    :func:`repro.pipeline.jobs.resolve_executor`.
    """
    if executor is None:
        executor = "auto"
    executor = executor.lower()
    if executor == "auto":
        return "process" if num_vertices >= _PROCESS_MIN_VERTICES else "thread"
    if executor not in ("thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r} (expected 'auto', 'thread' "
            "or 'process')"
        )
    return executor


@dataclass
class PartitionResult:
    """Outcome of a partitioning call.

    Attributes
    ----------
    part:
        ``(n,)`` int32 part labels in ``[0, nparts)``.
    nparts:
        Number of parts requested.
    cut:
        Edge-cut weight of the final partition.
    imbalance:
        ``(ncon,)`` per-constraint imbalance (1.0 = perfect).
    provenance:
        Which rung of the pipeline produced the labels: ``"primary"``
        (the requested method, contract-clean), ``"components"``
        (component-aware path for a disconnected graph),
        ``"relaxed"`` (retry with relaxed tolerance), ``"sfc"``
        (space-filling-curve geometric fallback) or ``"block"``
        (contiguous block split of last resort).  Anything other than
        ``"primary"`` was announced via a
        :class:`~repro.graph.contracts.PartitionQualityWarning`.
    violations:
        Contract violations of the *final* labels (empty for a clean
        result; populated only when every fallback rung still failed
        some check and the least-bad result was returned).
    dtypes:
        Storage-dtype provenance of the run: the dtypes of the input
        graph's ``adjncy``/``vwgt``/``adjwgt`` and of the returned
        labels, e.g. ``{"adjncy": "int32", ...}``.  Records whether
        the scale tier's index/weight narrowing was in effect — the
        narrowed and wide paths produce bit-identical labels (enforced
        by the fuzz differential stage), so this is provenance, not a
        behavioural switch.
    spill:
        Hierarchy-spill provenance when ``REPRO_HIERARCHY_BUDGET`` set
        a byte budget: ``{"budget_bytes", "spills", "attaches",
        "spilled_bytes"}`` from :class:`~repro.graph.coarsen.
        HierarchySpill.stats`.  Empty when spilling was disabled.  Like
        ``dtypes``, this records *how* the labels were produced, never
        *which* labels — the spilled and in-memory paths are
        bit-identical.
    """

    part: np.ndarray
    nparts: int
    cut: float
    imbalance: np.ndarray
    provenance: str = "primary"
    violations: tuple[str, ...] = field(default_factory=tuple)
    dtypes: dict[str, str] = field(default_factory=dict)
    spill: dict = field(default_factory=dict)


def _repair_split(
    left: np.ndarray, right: np.ndarray, k0: int, k1: int
) -> tuple[np.ndarray, np.ndarray]:
    """Ensure each side of a bisection can host its part count.

    ``multilevel_bisect`` balances *weight*, so with heavy-tailed
    vertex weights a side can end up with fewer vertices than the
    parts it must be split into (even zero).  A degenerate side is
    repaired with a proportional split of the combined vertex list,
    which keeps the recursion invariant ``k <= len(vertices)``
    (``k0 + k1 <= len(left) + len(right)`` holds at every node).
    """
    if len(left) < k0 or len(right) < k1:
        merged = np.concatenate([left, right])
        cut = int(round(len(merged) * k0 / (k0 + k1)))
        cut = min(max(cut, k0), len(merged) - k1)
        left, right = merged[:cut], merged[cut:]
    return left, right


def _shared_bisect_node(
    desc: dict,
    vertices: np.ndarray,
    first: int,
    k: int,
    node_rng: np.random.Generator,
    level_tol: float,
    max_passes: int,
    init_trials: int,
):
    """Process-pool worker: one bisection-tree node against the shared
    segment.

    The task payload is the descriptor plus the vertex subset — never
    the graph itself.  Returns ``(leaves, tasks, attach_event,
    spill_stats)`` where ``leaves`` are final ``(vertices, label)``
    assignments for the parent to apply, ``tasks`` are the two child
    subproblems, ``attach_event`` is ``(pid, segment_name)`` when this
    call was the process's first and actually attached the segment, and
    ``spill_stats`` reports hierarchy-spill counters (``None`` when
    ``REPRO_HIERARCHY_BUDGET`` is unset — workers inherit the budget
    through the environment).
    """
    from .shared import attached_graph

    g, fresh = attached_graph(desc)
    event = (os.getpid(), desc["name"]) if fresh else None
    if k <= 1:
        return [(vertices, first)], [], event, None
    k0 = (k + 1) // 2
    k1 = k - k0
    sub, mapping = g.subgraph(vertices)
    spill = HierarchySpill()
    labels = multilevel_bisect(
        sub,
        k0 / k,
        node_rng,
        imbalance_tol=level_tol,
        max_passes=max_passes,
        init_trials=init_trials,
        spill=spill if spill.enabled else None,
    )
    left = mapping[labels == 0]
    right = mapping[labels == 1]
    left, right = _repair_split(left, right, k0, k1)
    r_left, r_right = node_rng.spawn(2)
    return (
        [],
        [(left, first, k0, r_left), (right, first + k0, k1, r_right)],
        event,
        spill.stats() if spill.enabled else None,
    )


def recursive_bisection(
    g: CSRGraph,
    nparts: int,
    rng: np.random.Generator,
    *,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    init_trials: int = 8,
    n_jobs: int | None = 1,
    executor: str | None = None,
    attach_log: list | None = None,
    spill: HierarchySpill | None = None,
) -> np.ndarray:
    """Recursive-bisection partitioning (the paper's method of choice).

    The part count is split as evenly as possible at each level:
    ``k -> (ceil(k/2), floor(k/2))`` with part 0 targeting
    ``ceil(k/2)/k`` of every constraint's weight.

    With ``n_jobs > 1`` the two halves produced by each split — which
    are fully independent subproblems — are dispatched to a worker
    pool.  Every tree node then draws from its own generator, spawned
    deterministically from its parent's, so the result depends only on
    ``rng``'s seed, not on scheduling order, worker count or backend.

    ``executor`` selects the pool backend: ``"thread"`` (shared
    address space), ``"process"`` (GIL-free; the graph is published
    once through :class:`~repro.graph.shared.SharedCSR` and workers
    attach rather than unpickle it), or ``"auto"``/``None`` (threads
    below ~200k vertices, processes above).  ``attach_log``, when a
    list, collects ``(pid, segment_name)`` events proving workers
    attached the shared segment.

    ``spill``, when given (and enabled), byte-budgets the coarsening
    hierarchy of every bisection-tree node — see
    :class:`~repro.graph.coarsen.HierarchySpill`.  Process-pool
    workers build their own policy from ``REPRO_HIERARCHY_BUDGET`` and
    their counters are folded into ``spill``.
    """
    n = g.num_vertices
    part = np.zeros(n, dtype=np.int32)
    if nparts <= 1:
        return part

    # The tolerance compounds multiplicatively down the bisection tree,
    # so each level gets the depth-th root of the requested tolerance.
    depth = max(1, int(np.ceil(np.log2(nparts))))
    level_tol = max(1.01, imbalance_tol ** (1.0 / depth))
    n_jobs = _resolve_n_jobs(n_jobs)

    if n_jobs == 1:
        # Serial path: one shared generator, depth-first stack (the
        # seed behaviour, kept bit-for-bit).
        stack: list[tuple[np.ndarray, int, int]] = [
            (np.arange(n, dtype=np.int64), 0, nparts)
        ]
        while stack:
            vertices, first, k = stack.pop()
            if k <= 1:
                part[vertices] = first
                continue
            k0 = (k + 1) // 2
            k1 = k - k0
            frac = k0 / k
            sub, mapping = g.subgraph(vertices)
            labels = multilevel_bisect(
                sub,
                frac,
                rng,
                imbalance_tol=level_tol,
                max_passes=max_passes,
                init_trials=init_trials,
                spill=spill,
            )
            left = mapping[labels == 0]
            right = mapping[labels == 1]
            left, right = _repair_split(left, right, k0, k1)
            stack.append((left, first, k0))
            stack.append((right, first + k0, k1))
        return part

    def bisect_node(
        vertices: np.ndarray,
        first: int,
        k: int,
        node_rng: np.random.Generator,
    ) -> list[tuple[np.ndarray, int, int, np.random.Generator]]:
        if k <= 1:
            # Disjoint fancy-index write; safe across workers.
            part[vertices] = first
            return []
        k0 = (k + 1) // 2
        k1 = k - k0
        sub, mapping = g.subgraph(vertices)
        labels = multilevel_bisect(
            sub,
            k0 / k,
            node_rng,
            imbalance_tol=level_tol,
            max_passes=max_passes,
            init_trials=init_trials,
            spill=spill,
        )
        left = mapping[labels == 0]
        right = mapping[labels == 1]
        left, right = _repair_split(left, right, k0, k1)
        r_left, r_right = node_rng.spawn(2)
        return [
            (left, first, k0, r_left),
            (right, first + k0, k1, r_right),
        ]

    if _resolve_executor(executor, n) == "process":
        from .shared import SharedCSR

        scsr = SharedCSR.from_graph(g)
        try:
            desc = scsr.descriptor()
            with ProcessPoolExecutor(max_workers=n_jobs) as pool:
                pending = {
                    pool.submit(
                        _shared_bisect_node,
                        desc,
                        np.arange(n, dtype=np.int64),
                        0,
                        nparts,
                        rng,
                        level_tol,
                        max_passes,
                        init_trials,
                    )
                }
                while pending:
                    done, pending = wait(
                        pending, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        leaves, tasks, event, wstats = fut.result()
                        if event is not None and attach_log is not None:
                            attach_log.append(event)
                        if wstats is not None and spill is not None:
                            spill.absorb(wstats)
                        for vertices, label in leaves:
                            part[vertices] = label
                        for task in tasks:
                            pending.add(
                                pool.submit(
                                    _shared_bisect_node,
                                    desc,
                                    *task,
                                    level_tol,
                                    max_passes,
                                    init_trials,
                                )
                            )
        finally:
            scsr.unlink()
        return part

    with ThreadPoolExecutor(max_workers=n_jobs) as pool:
        pending = {
            pool.submit(
                bisect_node, np.arange(n, dtype=np.int64), 0, nparts, rng
            )
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                for task in fut.result():
                    pending.add(pool.submit(bisect_node, *task))
    return part


def kway_direct(
    g: CSRGraph,
    nparts: int,
    rng: np.random.Generator,
    *,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    n_jobs: int | None = 1,
    executor: str | None = None,
    spill: HierarchySpill | None = None,
) -> np.ndarray:
    """Direct k-way partitioning via recursive bisection followed by a
    round of pairwise k-way FM sweeps between adjacent parts.

    Provided as an ablation comparator for the paper's choice of
    recursive bisection (§V).  ``n_jobs`` parallelizes the initial
    recursive bisection; the pairwise sweeps mutate shared state and
    stay serial.
    """
    part = recursive_bisection(
        g,
        nparts,
        rng,
        imbalance_tol=imbalance_tol,
        max_passes=max_passes,
        n_jobs=n_jobs,
        executor=executor,
        spill=spill,
    )
    if nparts <= 2:
        return part
    # Pairwise refinement between parts that share cut edges.
    src = g.edge_sources()
    for _ in range(2):
        pa = part[src]
        pb = part[g.adjncy]
        cut_pairs = np.unique(
            np.sort(np.stack([pa[pa != pb], pb[pa != pb]], axis=1), axis=1),
            axis=0,
        )
        for a, b in cut_pairs:
            sel = np.flatnonzero((part == a) | (part == b))
            if len(sel) < 4:
                continue
            sub, mapping = g.subgraph(sel)
            labels = (part[sel] == b).astype(np.int32)
            labels = fm_refine(
                sub,
                labels,
                target_frac=0.5,
                imbalance_tol=imbalance_tol,
                max_passes=2,
                rng=rng,
            )
            part[mapping[labels == 0]] = a
            part[mapping[labels == 1]] = b
    return part


def _combined_weight(g: CSRGraph) -> np.ndarray:
    """Per-vertex scalar proxy weight: every constraint column
    normalized by its total, then summed — so each constraint
    contributes equally to the geometric fallbacks."""
    totals = g.total_vwgt()
    safe = np.where(totals > 0, totals, 1.0)
    return (g.vwgt / safe).sum(axis=1)


def _run_method(
    g: CSRGraph,
    nparts: int,
    *,
    method: str,
    seed: int,
    imbalance_tol: float,
    max_passes: int,
    init_trials: int,
    n_jobs: int | None,
    executor: str | None = None,
    spill: HierarchySpill | None = None,
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if method == "recursive":
        return recursive_bisection(
            g,
            nparts,
            rng,
            imbalance_tol=imbalance_tol,
            max_passes=max_passes,
            init_trials=init_trials,
            n_jobs=n_jobs,
            executor=executor,
            spill=spill,
        )
    if method == "kway":
        return kway_direct(
            g,
            nparts,
            rng,
            imbalance_tol=imbalance_tol,
            max_passes=max_passes,
            n_jobs=n_jobs,
            executor=executor,
            spill=spill,
        )
    raise ValueError(f"unknown method {method!r}")


def _partition_components(
    g: CSRGraph,
    nparts: int,
    comp_labels: np.ndarray,
    ncomp: int,
    *,
    method: str,
    seed: int,
    imbalance_tol: float,
    max_passes: int,
    init_trials: int,
    n_jobs: int | None,
    executor: str | None = None,
    spill: HierarchySpill | None = None,
) -> np.ndarray:
    """Component-aware partitioning of a disconnected graph.

    Each component receives its fair (largest-remainder) share of the
    ``nparts`` slots, capped by its vertex count, and is partitioned
    independently; components that earn zero slots are packed onto the
    part with the least combined weight.  Every part label ends up
    non-empty because the slot counts sum to ``nparts`` and each
    component fills all of its own slots.
    """
    n = g.num_vertices
    part = np.zeros(n, dtype=np.int32)
    members = [np.flatnonzero(comp_labels == c) for c in range(ncomp)]
    sizes = np.array([len(m) for m in members], dtype=np.int64)
    proxy = _combined_weight(g)
    weights = np.array(
        [float(proxy[m].sum()) for m in members], dtype=np.float64
    )

    slots = apportion_parts(weights, nparts)
    # Cap slots at the component's vertex count and hand the overflow
    # to the heaviest components that can still absorb a slot.
    over = slots - np.minimum(slots, sizes)
    slots = np.minimum(slots, sizes)
    spare = int(over.sum())
    while spare > 0:
        room = np.flatnonzero(slots < sizes)
        # nparts <= n guarantees room is non-empty here.
        load = weights[room] / (slots[room] + 1.0)
        best = room[int(np.argmax(load))]
        slots[best] += 1
        spare -= 1

    next_label = 0
    packed: list[int] = []
    for c in range(ncomp):
        k = int(slots[c])
        if k == 0:
            packed.append(c)
            continue
        verts = members[c]
        if k == 1:
            part[verts] = next_label
        else:
            sub, mapping = g.subgraph(verts)
            labels = _run_method(
                sub,
                k,
                method=method,
                seed=int(
                    np.random.default_rng([seed, c]).integers(2**31 - 1)
                ),
                imbalance_tol=imbalance_tol,
                max_passes=max_passes,
                init_trials=init_trials,
                n_jobs=n_jobs,
                executor=executor,
                spill=spill,
            )
            part[mapping] = next_label + labels
        next_label += k

    if packed:
        part_load = np.bincount(part, weights=proxy, minlength=nparts)
        for c in sorted(packed, key=lambda c: -weights[c]):
            target = int(np.argmin(part_load))
            part[members[c]] = target
            part_load[target] += weights[c]
    return part


def partition_graph(
    g: CSRGraph,
    nparts: int,
    *,
    method: str = "recursive",
    seed: int = 0,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    init_trials: int = 8,
    n_jobs: int | str | None = 1,
    executor: str | None = None,
    coords: np.ndarray | None = None,
    strict: bool = False,
    validate: bool = True,
    fallback: bool = True,
) -> PartitionResult:
    """Partition a (possibly multi-constraint) graph into ``nparts``.

    Parameters
    ----------
    g:
        The graph; ``g.vwgt`` may have multiple columns, in which case
        every column is balanced simultaneously (multi-constraint mode,
        the mechanism behind the paper's MC_TL strategy).
    method:
        ``"recursive"`` (default, the paper's choice) or ``"kway"``.
    seed:
        Seed for the deterministic RNG driving matching/initial
        partitioning tie-breaks.
    n_jobs:
        Workers for the independent halves of recursive bisection
        (``-1`` = one per CPU).  ``n_jobs > 1`` is deterministic for a
        fixed seed regardless of worker count.
    executor:
        Pool backend for ``n_jobs > 1``: ``"thread"``, ``"process"``
        (workers attach one :class:`~repro.graph.shared.SharedCSR`
        segment instead of unpickling graphs) or ``"auto"``/``None``
        (processes only at scale).  Does not affect the labels.
    coords:
        Optional ``(n, 2)`` vertex coordinates.  When supplied, the
        space-filling-curve rung of the fallback chain becomes
        available (mesh strategies pass cell centers).
    strict:
        Raise :class:`~repro.resilience.errors.PartitionQualityError`
        when the primary result violates the output contract, instead
        of walking the fallback chain.
    validate:
        Run :func:`~repro.graph.contracts.validate_partition_inputs`
        (input hardening: disconnected graphs, all-zero constraint
        columns, ``nparts > n``).
    fallback:
        Walk the escalating degradation chain (relaxed tolerance →
        SFC → block split) on a contract violation.  With
        ``fallback=False`` the primary result is returned as-is, with
        its violations recorded.

    Returns
    -------
    :class:`PartitionResult` with labels, cut, per-constraint
    imbalance, and the ``provenance`` of the surviving rung.  A result
    either satisfies the output contract or carries non-default
    provenance/violations — never silent garbage.
    """
    if validate:
        report = validate_partition_inputs(g, nparts)
        g, nparts = report.graph, report.nparts
    else:
        if nparts < 1:
            raise ValueError("nparts must be >= 1")
        if nparts > g.num_vertices and g.num_vertices > 0:
            raise ValueError(
                f"cannot create {nparts} non-empty parts from "
                f"{g.num_vertices} vertices"
            )

    spill = HierarchySpill()
    kernel = dict(
        method=method,
        seed=seed,
        imbalance_tol=imbalance_tol,
        max_passes=max_passes,
        init_trials=init_trials,
        n_jobs=n_jobs,
        executor=executor,
        spill=spill if spill.enabled else None,
    )

    provenance = "primary"
    if validate and nparts > 1 and g.num_vertices > 0:
        comp_labels, ncomp = connected_components(g)
        if ncomp > 1:
            part = _partition_components(
                g, nparts, comp_labels, ncomp, **kernel
            )
            provenance = "components"
            warn_quality(
                f"disconnected graph ({ncomp} components): used "
                "component-aware partitioning",
                stage="input",
                provenance="components",
                violations=[f"{ncomp} connected components"],
            )
        else:
            part = _run_method(g, nparts, **kernel)
    else:
        part = _run_method(g, nparts, **kernel)

    violations = check_partition_contract(
        g, part, nparts, imbalance_tol=imbalance_tol
    )
    if violations and strict:
        raise PartitionQualityError(
            f"partition of {g.num_vertices} vertices into {nparts} "
            "parts violates its output contract: "
            + "; ".join(violations),
            violations=violations,
            provenance=provenance,
        )
    if violations and fallback:
        part, provenance, violations = _fallback_chain(
            g,
            nparts,
            part,
            violations,
            provenance,
            coords=coords,
            kernel=kernel,
        )

    return PartitionResult(
        part=part,
        nparts=nparts,
        cut=edge_cut(g, part),
        imbalance=imbalance(g, part, nparts),
        provenance=provenance,
        violations=tuple(violations),
        dtypes={
            "adjncy": str(g.adjncy.dtype),
            "vwgt": str(g.vwgt.dtype),
            "adjwgt": str(g.adjwgt.dtype),
            "part": str(part.dtype),
        },
        spill=spill.stats() if spill.enabled else {},
    )


#: Multiplier applied to ``imbalance_tol - 1`` for the relaxed-retry
#: rung (1.05 → 1.25 with the +0.10 floor below).
_RELAX_FACTOR = 3.0
_RELAX_FLOOR = 0.10


def _fallback_chain(
    g: CSRGraph,
    nparts: int,
    part: np.ndarray,
    violations: list[str],
    provenance: str,
    *,
    coords: np.ndarray | None,
    kernel: dict,
) -> tuple[np.ndarray, str, list[str]]:
    """Walk the escalating degradation chain after a contract failure.

    Rungs, in order: retry the graph method with a relaxed tolerance;
    SFC geometric split (when coordinates are available); contiguous
    block split.  The first rung whose result passes its (relaxed)
    contract wins; if none does, the least-violating candidate is
    returned.  Every non-primary outcome emits a
    :class:`~repro.graph.contracts.PartitionQualityWarning`.
    """
    tol = float(kernel["imbalance_tol"])
    relaxed_tol = 1.0 + _RELAX_FACTOR * (tol - 1.0) + _RELAX_FLOOR
    candidates: list[tuple[np.ndarray, str, list[str]]] = [
        (part, provenance, violations)
    ]

    # First relaxed rung: keep the primary labels if they already meet
    # the relaxed tolerance — the method optimized the cut at the
    # strict tolerance, so re-running would trade a marginal balance
    # miss for a genuinely worse partition.
    v = check_partition_contract(
        g, part, nparts, imbalance_tol=relaxed_tol
    )
    candidates.append((part, "relaxed", v))
    if v:
        relaxed_kernel = dict(kernel)
        relaxed_kernel["imbalance_tol"] = relaxed_tol
        relaxed_kernel["seed"] = int(kernel["seed"]) + 7919
        relaxed = _run_method(g, nparts, **relaxed_kernel)
        v = check_partition_contract(
            g, relaxed, nparts, imbalance_tol=relaxed_tol
        )
        candidates.append((relaxed, "relaxed", v))

    if not v:
        chosen = candidates[-1]
    else:
        if coords is not None and len(coords) == g.num_vertices:
            from ..partitioning.sfc import sfc_order

            order = sfc_order(np.asarray(coords, dtype=np.float64))
            proxy = _combined_weight(g)
            chunk = weighted_contiguous_cuts(proxy[order], nparts)
            sfc_part = np.zeros(g.num_vertices, dtype=np.int32)
            sfc_part[order] = chunk
            v = check_partition_contract(
                g, sfc_part, nparts, imbalance_tol=relaxed_tol
            )
            candidates.append((sfc_part, "sfc", v))
        if candidates[-1][2]:
            blk = block_partition(
                g.num_vertices, nparts, _combined_weight(g)
            ).astype(np.int32)
            v = check_partition_contract(
                g, blk, nparts, imbalance_tol=relaxed_tol
            )
            candidates.append((blk, "block", v))
        # First clean candidate (skipping the failed primary), else the
        # least-violating one.
        chosen = next(
            (c for c in candidates[1:] if not c[2]),
            min(candidates, key=lambda c: len(c[2])),
        )

    part, provenance, violations = chosen
    warn_quality(
        f"partition into {nparts} parts failed its contract "
        f"({'; '.join(candidates[0][2])}); degraded to "
        f"provenance={provenance!r}"
        + (f" with residual violations {violations}" if violations else ""),
        stage="output",
        provenance=provenance,
        violations=candidates[0][2] + violations,
    )
    return part, provenance, violations
