"""Public partitioning API: recursive bisection and k-way drivers.

:func:`partition_graph` is the entry point used by everything else in
the library.  It mirrors ``METIS_PartGraphRecursive``: given a CSR
graph whose vertex weights may have multiple columns (constraints), it
returns a ``(n,)`` part assignment such that every constraint is
balanced across parts within a tolerance, while heuristically
minimizing edge cut.

The paper uses the *recursive bisection* method ("because it produces
higher quality solutions on our meshes", §V); we implement it as the
default and provide a direct k-way variant for ablation.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass

import numpy as np

from .bisect import multilevel_bisect
from .csr import CSRGraph
from .metrics import edge_cut, imbalance
from .refine import fm_refine

__all__ = ["PartitionResult", "partition_graph", "recursive_bisection", "kway_direct"]


def _resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/1 → serial, ``-1`` → one
    worker per CPU, other values are used as-is (minimum 1)."""
    if n_jobs is None:
        return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, n_jobs)


@dataclass
class PartitionResult:
    """Outcome of a partitioning call.

    Attributes
    ----------
    part:
        ``(n,)`` int32 part labels in ``[0, nparts)``.
    nparts:
        Number of parts requested.
    cut:
        Edge-cut weight of the final partition.
    imbalance:
        ``(ncon,)`` per-constraint imbalance (1.0 = perfect).
    """

    part: np.ndarray
    nparts: int
    cut: float
    imbalance: np.ndarray


def recursive_bisection(
    g: CSRGraph,
    nparts: int,
    rng: np.random.Generator,
    *,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    init_trials: int = 8,
    n_jobs: int | None = 1,
) -> np.ndarray:
    """Recursive-bisection partitioning (the paper's method of choice).

    The part count is split as evenly as possible at each level:
    ``k -> (ceil(k/2), floor(k/2))`` with part 0 targeting
    ``ceil(k/2)/k`` of every constraint's weight.

    With ``n_jobs > 1`` the two halves produced by each split — which
    are fully independent subproblems — are dispatched to a thread
    pool.  Every tree node then draws from its own generator, spawned
    deterministically from its parent's, so the result depends only on
    ``rng``'s seed, not on scheduling order or worker count.
    """
    n = g.num_vertices
    part = np.zeros(n, dtype=np.int32)
    if nparts <= 1:
        return part

    # The tolerance compounds multiplicatively down the bisection tree,
    # so each level gets the depth-th root of the requested tolerance.
    depth = max(1, int(np.ceil(np.log2(nparts))))
    level_tol = max(1.01, imbalance_tol ** (1.0 / depth))
    n_jobs = _resolve_n_jobs(n_jobs)

    if n_jobs == 1:
        # Serial path: one shared generator, depth-first stack (the
        # seed behaviour, kept bit-for-bit).
        stack: list[tuple[np.ndarray, int, int]] = [
            (np.arange(n, dtype=np.int64), 0, nparts)
        ]
        while stack:
            vertices, first, k = stack.pop()
            if k <= 1:
                part[vertices] = first
                continue
            k0 = (k + 1) // 2
            k1 = k - k0
            frac = k0 / k
            sub, mapping = g.subgraph(vertices)
            labels = multilevel_bisect(
                sub,
                frac,
                rng,
                imbalance_tol=level_tol,
                max_passes=max_passes,
                init_trials=init_trials,
            )
            left = mapping[labels == 0]
            right = mapping[labels == 1]
            if len(left) == 0 or len(right) == 0:
                # Degenerate split (tiny subgraph): divide arbitrarily.
                half = max(1, len(mapping) // 2)
                left, right = mapping[:half], mapping[half:]
            stack.append((left, first, k0))
            stack.append((right, first + k0, k1))
        return part

    def bisect_node(
        vertices: np.ndarray,
        first: int,
        k: int,
        node_rng: np.random.Generator,
    ) -> list[tuple[np.ndarray, int, int, np.random.Generator]]:
        if k <= 1:
            # Disjoint fancy-index write; safe across workers.
            part[vertices] = first
            return []
        k0 = (k + 1) // 2
        k1 = k - k0
        sub, mapping = g.subgraph(vertices)
        labels = multilevel_bisect(
            sub,
            k0 / k,
            node_rng,
            imbalance_tol=level_tol,
            max_passes=max_passes,
            init_trials=init_trials,
        )
        left = mapping[labels == 0]
        right = mapping[labels == 1]
        if len(left) == 0 or len(right) == 0:
            half = max(1, len(mapping) // 2)
            left, right = mapping[:half], mapping[half:]
        r_left, r_right = node_rng.spawn(2)
        return [
            (left, first, k0, r_left),
            (right, first + k0, k1, r_right),
        ]

    with ThreadPoolExecutor(max_workers=n_jobs) as pool:
        pending = {
            pool.submit(
                bisect_node, np.arange(n, dtype=np.int64), 0, nparts, rng
            )
        }
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                for task in fut.result():
                    pending.add(pool.submit(bisect_node, *task))
    return part


def kway_direct(
    g: CSRGraph,
    nparts: int,
    rng: np.random.Generator,
    *,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    n_jobs: int | None = 1,
) -> np.ndarray:
    """Direct k-way partitioning via recursive bisection followed by a
    round of pairwise k-way FM sweeps between adjacent parts.

    Provided as an ablation comparator for the paper's choice of
    recursive bisection (§V).  ``n_jobs`` parallelizes the initial
    recursive bisection; the pairwise sweeps mutate shared state and
    stay serial.
    """
    part = recursive_bisection(
        g,
        nparts,
        rng,
        imbalance_tol=imbalance_tol,
        max_passes=max_passes,
        n_jobs=n_jobs,
    )
    if nparts <= 2:
        return part
    # Pairwise refinement between parts that share cut edges.
    src = g.edge_sources()
    for _ in range(2):
        pa = part[src]
        pb = part[g.adjncy]
        cut_pairs = np.unique(
            np.sort(np.stack([pa[pa != pb], pb[pa != pb]], axis=1), axis=1),
            axis=0,
        )
        for a, b in cut_pairs:
            sel = np.flatnonzero((part == a) | (part == b))
            if len(sel) < 4:
                continue
            sub, mapping = g.subgraph(sel)
            labels = (part[sel] == b).astype(np.int32)
            labels = fm_refine(
                sub,
                labels,
                target_frac=0.5,
                imbalance_tol=imbalance_tol,
                max_passes=2,
                rng=rng,
            )
            part[mapping[labels == 0]] = a
            part[mapping[labels == 1]] = b
    return part


def partition_graph(
    g: CSRGraph,
    nparts: int,
    *,
    method: str = "recursive",
    seed: int = 0,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    init_trials: int = 8,
    n_jobs: int | None = 1,
) -> PartitionResult:
    """Partition a (possibly multi-constraint) graph into ``nparts``.

    Parameters
    ----------
    g:
        The graph; ``g.vwgt`` may have multiple columns, in which case
        every column is balanced simultaneously (multi-constraint mode,
        the mechanism behind the paper's MC_TL strategy).
    method:
        ``"recursive"`` (default, the paper's choice) or ``"kway"``.
    seed:
        Seed for the deterministic RNG driving matching/initial
        partitioning tie-breaks.
    n_jobs:
        Worker threads for the independent halves of recursive
        bisection (``-1`` = one per CPU).  ``n_jobs > 1`` is
        deterministic for a fixed seed regardless of worker count.

    Returns
    -------
    :class:`PartitionResult` with labels, cut and per-constraint
    imbalance.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    if nparts > g.num_vertices and g.num_vertices > 0:
        raise ValueError(
            f"cannot create {nparts} non-empty parts from "
            f"{g.num_vertices} vertices"
        )
    rng = np.random.default_rng(seed)
    if method == "recursive":
        part = recursive_bisection(
            g,
            nparts,
            rng,
            imbalance_tol=imbalance_tol,
            max_passes=max_passes,
            init_trials=init_trials,
            n_jobs=n_jobs,
        )
    elif method == "kway":
        part = kway_direct(
            g,
            nparts,
            rng,
            imbalance_tol=imbalance_tol,
            max_passes=max_passes,
            n_jobs=n_jobs,
        )
    else:
        raise ValueError(f"unknown method {method!r}")
    return PartitionResult(
        part=part,
        nparts=nparts,
        cut=edge_cut(g, part),
        imbalance=imbalance(g, part, nparts),
    )
