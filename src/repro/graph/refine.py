"""Fiduccia–Mattheyses (FM) boundary refinement for bisections.

After each uncoarsening step the projected bisection is refined with FM
passes: boundary vertices are moved one at a time in gain order, moves
are tentatively applied even when the gain is negative (hill climbing),
and at the end of the pass the best prefix of the move sequence is
kept.

Multi-constraint admissibility follows Karypis & Kumar: a move is
admissible if, for every constraint, the destination part stays within
``imbalance_tol`` of its target — or if the move strictly improves the
worst per-constraint imbalance (so infeasible states can be repaired).

Implementation note: the per-move admissibility check runs millions of
times, so the inner loop works on plain Python floats (``ncon ≤`` a
handful) rather than NumPy arrays — an order-of-magnitude win measured
by profiling (see the hpc-parallel guide: profile first, then optimize
the bottleneck).
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from ..accel import kernels_active
from ..resilience.errors import PartitionInternalError
from .csr import CSRGraph
from .metrics import edge_cut

__all__ = ["fm_refine", "rebalance"]

_INF = float("inf")


def _degrees(
    g: CSRGraph, part: np.ndarray, compiled: bool | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Internal/external degrees of every vertex w.r.t. a bisection.

    The kernel tier (see :mod:`repro.accel`) accumulates per vertex in
    CSR edge order — the identical sequential float64 order as the
    ``np.bincount`` reference, so the degrees are bit-identical.
    """
    n = g.num_vertices
    if kernels_active(compiled):
        from ..accel.kernels import fm_degrees

        ideg = np.zeros(n, dtype=np.float64)
        edeg = np.zeros(n, dtype=np.float64)
        fm_degrees(
            g.xadj.astype(np.int64, copy=False),
            g.adjncy.astype(np.int64, copy=False),
            g.adjwgt.astype(np.float64, copy=False),
            part.astype(np.int64, copy=False),
            ideg,
            edeg,
        )
        return ideg, edeg
    src = g.edge_sources()
    same = part[src] == part[g.adjncy]
    w = g.adjwgt
    ideg = np.bincount(src[same], weights=w[same], minlength=n)
    edeg = np.bincount(src[~same], weights=w[~same], minlength=n)
    return ideg, edeg


def _inv_denoms(
    total: np.ndarray, targets: np.ndarray
) -> tuple[list[float], list[float]]:
    """Per-(part, constraint) reciprocal balance denominators.

    A zero denominator (empty constraint or zero target) maps to 0.0 so
    the corresponding ratio contributes nothing; a zero target with
    positive weight is handled by the caller via the raw weights.
    """
    out0, out1 = [], []
    for c in range(len(total)):
        d0 = total[c] * targets[0]
        d1 = total[c] * targets[1]
        out0.append(1.0 / d0 if d0 > 0 else 0.0)
        out1.append(1.0 / d1 if d1 > 0 else 0.0)
    return out0, out1


def _max_imb(
    pw0: list[float], pw1: list[float], inv0: list[float], inv1: list[float]
) -> float:
    worst = 1.0
    for c in range(len(pw0)):
        r0 = pw0[c] * inv0[c]
        if r0 > worst:
            worst = r0
        r1 = pw1[c] * inv1[c]
        if r1 > worst:
            worst = r1
    return worst


def fm_refine(
    g: CSRGraph,
    part: np.ndarray,
    *,
    target_frac: float = 0.5,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    max_moves_per_pass: int | None = None,
    rng: np.random.Generator | None = None,
    early_stop: int | None = None,
    check_cut: bool = False,
    compiled: bool | None = None,
) -> np.ndarray:
    """Refine a bisection in place and return it.

    Parameters
    ----------
    part:
        ``(n,)`` 0/1 labels; modified in place.
    target_frac:
        Target fraction of every constraint's weight for part 0.
    imbalance_tol:
        Allowed multiplicative deviation from the per-part target.
    max_passes:
        FM passes; the loop stops early when a pass yields no
        improvement.
    early_stop:
        Abandon a pass's hill climb after this many consecutive
        non-improving moves (METIS-style); defaults to
        ``max(100, n // 64)``.
    check_cut:
        Debug flag: assert at the end of every pass that the
        incrementally tracked edge cut agrees with a from-scratch
        recomputation.
    compiled:
        Kernel-tier override for the unit-weight/one-hot fast path
        (see :mod:`repro.accel`); ``None`` consults
        ``REPRO_COMPILED``.  The kernel is bit-identical to the
        reference loop.

    Implementation note: internal/external degrees and the edge cut are
    computed once and then maintained *incrementally* around each moved
    (and rolled-back) vertex, so a pass costs O(moved-edge endpoints)
    instead of O(n + m).  Only boundary vertices enter the move queue,
    matching METIS semantics.

    Two priority queues are used.  When every edge weight is exactly 1
    (true for all mesh-dual finest levels, where FM spends most of its
    time) gains are integers in ``[-maxdeg, maxdeg]``, so the classic
    Fiduccia–Mattheyses *gain bucket* array gives O(1) push/pop and
    replaces the lazy binary heap; weighted (coarse) graphs keep the
    heap.  Both queues use lazy deletion — stale entries are skipped on
    pop by comparing against the current gain.
    """
    n = g.num_vertices
    if n == 0:
        return part
    rng = rng or np.random.default_rng(0)
    total = g.total_vwgt()
    targets = np.array([target_frac, 1.0 - target_frac])
    inv0, inv1 = _inv_denoms(total, targets)
    ncon = g.ncon

    pw_arr = np.empty((2, ncon), dtype=np.float64)
    for c in range(ncon):
        pw_arr[:, c] = np.bincount(part, weights=g.vwgt[:, c], minlength=2)
    pw = [list(pw_arr[0]), list(pw_arr[1])]
    inv = [inv0, inv1]

    if max_moves_per_pass is None:
        max_moves_per_pass = n
    # METIS-style early pass termination: abandon the hill climb after
    # this many consecutive non-improving moves.
    if early_stop is None:
        early_stop = max(100, n // 64)

    # Unit edge weights -> integer gains -> FM gain buckets.  The
    # maxdeg guard keeps the per-pass bucket allocation trivial (a
    # pathological star graph would not benefit from buckets anyway).
    maxdeg = int(g.degrees().max()) if len(g.adjncy) else 0
    aw = g.adjwgt
    use_buckets = (
        len(aw) > 0 and maxdeg <= 4096 and aw.min() == 1.0 and aw.max() == 1.0
    )
    off = maxdeg

    # MC_TL weight vectors are binary level indicators: at most one
    # nonzero per vertex (trivially true for ncon == 1 as well).  A
    # move then changes a single constraint, and while every ratio is
    # within tolerance, admissibility reduces to an O(1) check on that
    # constraint — equivalent to the full O(ncon) max (unchanged
    # ratios stay feasible, and the repair clause can never fire from
    # a feasible state).
    one_hot = int(np.count_nonzero(g.vwgt, axis=1).max()) <= 1 if n else True
    if one_hot:
        col = np.argmax(g.vwgt, axis=1)

    # Kernel-tier dispatch (see repro.accel): the bucket/one-hot fast
    # path starting from a feasible bisection stays feasible after
    # every admitted move, so a single up-front check covers every
    # pass and the whole refinement runs inside one nopython kernel.
    if (
        use_buckets
        and one_hot
        and kernels_active(compiled)
        and _max_imb(list(pw_arr[0]), list(pw_arr[1]), inv0, inv1)
        <= imbalance_tol
    ):
        return _fm_refine_fast(
            g,
            part,
            pw_arr=pw_arr,
            inv_arr=np.array([inv0, inv1], dtype=np.float64),
            col=col.astype(np.int64, copy=False),
            wcol=g.vwgt[np.arange(n), col].astype(np.float64, copy=False),
            maxdeg=maxdeg,
            tol=imbalance_tol,
            max_passes=max_passes,
            max_moves_per_pass=max_moves_per_pass,
            early_stop=early_stop,
            rng=rng,
            check_cut=check_cut,
        )

    xadj_l: list = g.xadj.tolist()
    adj_l: list = g.adjncy.tolist()

    if one_hot:
        col_l: list = col.tolist()
        wcol_l: list = g.vwgt[np.arange(n), col].tolist()
    # Per-constraint flat columns (much cheaper to build than the
    # nested ``vwgt.tolist()``) feed the generic admissibility loop;
    # one-hot graphs only need them if a pass starts infeasible, so
    # the conversion is done lazily.  Likewise the edge-weight list is
    # only needed by the weighted (heap) queue.
    vw_cols: list[list] | None = (
        None if one_hot else [g.vwgt[:, c].tolist() for c in range(ncon)]
    )
    awt_l: list | None = None if use_buckets else g.adjwgt.tolist()

    # Degrees and cut are maintained incrementally from here on.
    ideg_a, edeg_a = _degrees(g, part, compiled=compiled)
    ideg: list = ideg_a.tolist()
    edeg: list = edeg_a.tolist()
    cur_cut = float(edeg_a.sum()) / 2.0
    part_l: list = part.tolist()
    # Boundary of the first pass comes from one vectorized scan; later
    # passes rebuild it from the vertices actually touched, keeping
    # per-pass overhead proportional to the work done, not to n.
    boundary = np.flatnonzero(edeg_a > 0)

    for _ in range(max_passes):
        if len(boundary) == 0:
            break
        locked = bytearray(n)
        touched: list[int] = []
        if use_buckets:
            buckets: list[deque[int]] = [deque() for _ in range(2 * maxdeg + 1)]
            gmax = -1
            for v in boundary[rng.permutation(len(boundary))].tolist():
                gi = int(edeg[v] - ideg[v]) + off
                buckets[gi].append(v)
                if gi > gmax:
                    gmax = gi
        else:
            heap: list[tuple[float, int, int]] = []
            counter = 0
            for v in boundary[rng.permutation(len(boundary))]:
                heap.append((ideg[v] - edeg[v], counter, int(v)))
                counter += 1
            heapq.heapify(heap)

        best_cut = cur_cut
        best_imb = _max_imb(pw[0], pw[1], inv0, inv1)
        moves: list[int] = []
        best_prefix = 0
        budget = max_moves_per_pass
        tol = imbalance_tol
        # One-hot fast balance path: valid while every ratio is within
        # tolerance (an admitted move keeps it that way, so the flag
        # holds for the whole pass).
        fast_bal = one_hot and best_imb <= tol
        if not fast_bal and vw_cols is None:
            vw_cols = [g.vwgt[:, c].tolist() for c in range(ncon)]

        while budget > 0:
            # Lazy deletion on both queues: skip stale entries, locked
            # and interior vertices (only boundary vertices may move).
            if use_buckets:
                while gmax >= 0 and not buckets[gmax]:
                    gmax -= 1
                if gmax < 0:
                    break
                v = buckets[gmax].popleft()
                gain = edeg[v] - ideg[v]
                if locked[v] or gain + off != gmax or edeg[v] <= 0:
                    continue
            else:
                if not heap:
                    break
                negg, _, v = heapq.heappop(heap)
                gain = edeg[v] - ideg[v]
                if locked[v] or -negg != gain or edeg[v] <= 0:
                    continue
            src_p = part_l[v]
            dst_p = 1 - src_p
            pws, pwd = pw[src_p], pw[dst_p]
            invs, invd = inv[src_p], inv[dst_p]
            if fast_bal:
                # Only constraint col[v] changes; all others stay
                # feasible, so checking the two new ratios is exact.
                c = col_l[v]
                w = wcol_l[v]
                if (pws[c] - w) * invs[c] > tol or (pwd[c] + w) * invd[c] > tol:
                    continue
                # Apply the move.
                locked[v] = 1
                part_l[v] = dst_p
                pws[c] -= w
                pwd[c] += w
                new_imb = best_imb  # feasible marker; exact value unused
            else:
                # Admissibility on plain floats: new worst imbalance.
                cur_imb = 1.0
                new_imb = 1.0
                for c in range(ncon):
                    w = vw_cols[c][v]
                    rs = pws[c] * invs[c]
                    rd = pwd[c] * invd[c]
                    if rs > cur_imb:
                        cur_imb = rs
                    if rd > cur_imb:
                        cur_imb = rd
                    nrs = (pws[c] - w) * invs[c]
                    nrd = (pwd[c] + w) * invd[c]
                    if nrs > new_imb:
                        new_imb = nrs
                    if nrd > new_imb:
                        new_imb = nrd
                if not (new_imb <= tol or new_imb < cur_imb - 1e-12):
                    continue

                # Apply the move.
                locked[v] = 1
                part_l[v] = dst_p
                for c in range(ncon):
                    w = vw_cols[c][v]
                    pws[c] -= w
                    pwd[c] += w
            cur_cut -= gain
            # v's own internal/external degrees swap when it flips.
            ideg[v], edeg[v] = edeg[v], ideg[v]
            moves.append(v)
            budget -= 1

            # Update neighbour degrees (and thus gains) incrementally.
            # This must happen before any early-stop break so the
            # persistent degree arrays stay consistent for rollback.
            if use_buckets:
                for idx in range(xadj_l[v], xadj_l[v + 1]):
                    u = adj_l[idx]
                    touched.append(u)
                    if part_l[u] == dst_p:
                        ideg[u] += 1.0
                        edeg[u] -= 1.0
                    else:
                        ideg[u] -= 1.0
                        edeg[u] += 1.0
                    if not locked[u] and edeg[u] > 0:
                        gi = int(edeg[u] - ideg[u]) + off
                        buckets[gi].append(u)
                        if gi > gmax:
                            gmax = gi
            else:
                for idx in range(xadj_l[v], xadj_l[v + 1]):
                    u = adj_l[idx]
                    w = awt_l[idx]
                    touched.append(u)
                    if part_l[u] == dst_p:
                        ideg[u] += w
                        edeg[u] -= w
                    else:
                        ideg[u] -= w
                        edeg[u] += w
                    if not locked[u] and edeg[u] > 0:
                        heapq.heappush(heap, (ideg[u] - edeg[u], counter, u))
                        counter += 1

            feasible_now = new_imb <= tol
            feasible_best = best_imb <= tol
            better = (
                (feasible_now and not feasible_best)
                or (
                    feasible_now == feasible_best
                    and cur_cut < best_cut - 1e-12
                )
                or (
                    not feasible_now
                    and not feasible_best
                    and new_imb < best_imb - 1e-12
                )
            )
            if better:
                best_cut = cur_cut
                best_imb = new_imb
                best_prefix = len(moves)
            elif len(moves) - best_prefix > early_stop:
                break

        # Roll back the tail beyond the best prefix.
        improved = best_prefix > 0
        for v in reversed(moves[best_prefix:]):
            src_p = part_l[v]
            dst_p = 1 - src_p
            part_l[v] = dst_p
            if one_hot:
                c = col_l[v]
                w = wcol_l[v]
                pw[src_p][c] -= w
                pw[dst_p][c] += w
            else:
                for c in range(ncon):
                    w = vw_cols[c][v]
                    pw[src_p][c] -= w
                    pw[dst_p][c] += w
            cur_cut -= edeg[v] - ideg[v]
            ideg[v], edeg[v] = edeg[v], ideg[v]
            if use_buckets:
                for idx in range(xadj_l[v], xadj_l[v + 1]):
                    u = adj_l[idx]
                    if part_l[u] == dst_p:
                        ideg[u] += 1.0
                        edeg[u] -= 1.0
                    else:
                        ideg[u] -= 1.0
                        edeg[u] += 1.0
            else:
                for idx in range(xadj_l[v], xadj_l[v + 1]):
                    u = adj_l[idx]
                    w = awt_l[idx]
                    if part_l[u] == dst_p:
                        ideg[u] += w
                        edeg[u] -= w
                    else:
                        ideg[u] -= w
                        edeg[u] += w
        if check_cut:
            part[:] = part_l
            ref_cut = edge_cut(g, part)
            if abs(cur_cut - ref_cut) > 1e-6 * max(1.0, abs(ref_cut)):
                raise PartitionInternalError(
                    f"incremental cut {cur_cut} != recomputed {ref_cut}"
                )
        if not improved:
            break
        # Next pass's boundary: only moved/touched vertices can have
        # changed degrees, so filter the union instead of rescanning n.
        if moves or touched:
            cand = np.unique(
                np.concatenate(
                    [
                        boundary,
                        np.asarray(moves, dtype=np.int64),
                        np.asarray(touched, dtype=np.int64),
                    ]
                )
            )
            boundary = cand[
                np.asarray([edeg[i] for i in cand.tolist()]) > 0
            ]
        else:
            boundary = boundary[
                np.asarray([edeg[i] for i in boundary.tolist()]) > 0
            ]
    part[:] = part_l
    return part


def _fm_refine_fast(
    g: CSRGraph,
    part: np.ndarray,
    *,
    pw_arr: np.ndarray,
    inv_arr: np.ndarray,
    col: np.ndarray,
    wcol: np.ndarray,
    maxdeg: int,
    tol: float,
    max_passes: int,
    max_moves_per_pass: int,
    early_stop: int,
    rng: np.random.Generator,
    check_cut: bool,
) -> np.ndarray:
    """Kernel-tier FM refinement (unit weights, one-hot, feasible).

    Drives :func:`repro.accel.kernels.fm_unit_pass` once per pass with
    the exact same RNG consumption, queue discipline and rollback as
    the reference loop in :func:`fm_refine` — bit-identical labels,
    an order of magnitude faster when Numba compiles the kernel.
    """
    from ..accel.kernels import fm_unit_pass

    n = g.num_vertices
    m = len(g.adjncy)
    xadj = g.xadj.astype(np.int64, copy=False)
    adjncy = g.adjncy.astype(np.int64, copy=False)
    part64 = part.astype(np.int64)

    ideg, edeg = _degrees(g, part, compiled=True)
    cur_cut = float(edeg.sum()) / 2.0
    boundary = np.flatnonzero(edeg > 0)

    # Reused per-pass buffers: move log, neighbour-touch log, FIFO
    # bucket heads/tails and the append-only node pool (one slot per
    # initial boundary vertex plus one per neighbour push).
    locked = np.zeros(n, dtype=np.int64)
    moves = np.empty(n, dtype=np.int64)
    touched = np.empty(max(m, 1), dtype=np.int64)
    bhead = np.empty(2 * maxdeg + 1, dtype=np.int64)
    btail = np.empty(2 * maxdeg + 1, dtype=np.int64)
    nxt = np.empty(n + m + 1, dtype=np.int64)
    slot_val = np.empty(n + m + 1, dtype=np.int64)

    for _ in range(max_passes):
        if len(boundary) == 0:
            break
        bverts = boundary[rng.permutation(len(boundary))].astype(
            np.int64, copy=False
        )
        bhead.fill(-1)
        btail.fill(-1)
        locked.fill(0)
        cur_cut, n_moves, n_touched, best_prefix = fm_unit_pass(
            xadj,
            adjncy,
            part64,
            col,
            wcol,
            ideg,
            edeg,
            pw_arr,
            inv_arr,
            bverts,
            maxdeg,
            tol,
            cur_cut,
            max_moves_per_pass,
            early_stop,
            locked,
            moves,
            touched,
            bhead,
            btail,
            nxt,
            slot_val,
        )
        if check_cut:
            part[:] = part64
            ref_cut = edge_cut(g, part)
            if abs(cur_cut - ref_cut) > 1e-6 * max(1.0, abs(ref_cut)):
                raise PartitionInternalError(
                    f"incremental cut {cur_cut} != recomputed {ref_cut}"
                )
        if best_prefix == 0:
            break
        if n_moves or n_touched:
            cand = np.unique(
                np.concatenate(
                    [boundary, moves[:n_moves], touched[:n_touched]]
                )
            )
            boundary = cand[edeg[cand] > 0]
        else:
            boundary = boundary[edeg[boundary] > 0]
    part[:] = part64
    return part


def rebalance(
    g: CSRGraph,
    part: np.ndarray,
    *,
    target_frac: float = 0.5,
    imbalance_tol: float = 1.05,
    max_moves: int | None = None,
    compiled: bool | None = None,
) -> np.ndarray:
    """Repair an infeasible bisection by explicit balancing moves.

    For each violating (part, constraint) pair — worst first — the
    vertex in the overweight part carrying weight on that constraint
    with the least cut damage is moved out, until the pair is within
    tolerance.  Each vertex moves at most once per call, which
    guarantees termination even when coarse vertices carry weight on
    several constraints.  Used when FM alone cannot reach feasibility
    (e.g. after projecting a coarse partition onto a finer graph).
    """
    n = g.num_vertices
    total = g.total_vwgt()
    targets = np.array([target_frac, 1.0 - target_frac])
    pw = np.empty((2, g.ncon), dtype=np.float64)
    for c in range(g.ncon):
        pw[:, c] = np.bincount(part, weights=g.vwgt[:, c], minlength=2)
    if max_moves is None:
        max_moves = n

    ideg, edeg = _degrees(g, part, compiled=compiled)
    locked = np.zeros(n, dtype=bool)
    moves = 0

    def ratio(p: int, c: int) -> float:
        denom = total[c] * targets[p]
        if denom <= 0:
            return _INF if pw[p, c] > 0 else 1.0
        return pw[p, c] / denom

    def worst_pair() -> tuple[float, int, int]:
        w, wp, wc = 1.0, -1, -1
        for c in range(g.ncon):
            if total[c] <= 0:
                continue
            for p in (0, 1):
                r = ratio(p, c)
                if r > w:
                    w, wp, wc = r, p, c
        return w, wp, wc

    while moves < max_moves:
        worst, src_p, c = worst_pair()
        if worst <= imbalance_tol or src_p < 0:
            break
        dst_p = 1 - src_p
        cand = np.flatnonzero(
            (part == src_p) & ~locked & (g.vwgt[:, c] > 0)
        )
        if len(cand) == 0:
            break
        gains = edeg[cand] - ideg[cand]
        # Among the best-gain candidates, prefer the one whose weight is
        # most concentrated on the violating constraint (so the move
        # does not overfill the destination on other constraints).
        best_gain = gains.max()
        top = cand[gains >= best_gain - 1e-12]
        # float64 arithmetic so narrowed (float32) weights pick the
        # same candidate as the wide path.
        vtop = g.vwgt[top].astype(np.float64, copy=False)
        purity = vtop[:, c] / np.maximum(vtop.sum(axis=1), 1e-300)
        v = int(top[np.argmax(purity)])

        part[v] = dst_p
        pw[src_p] -= g.vwgt[v]
        pw[dst_p] += g.vwgt[v]
        locked[v] = True
        moves += 1
        # Incremental internal/external degree updates around v.
        for idx in range(g.xadj[v], g.xadj[v + 1]):
            u = g.adjncy[idx]
            w = g.adjwgt[idx]
            if part[u] == dst_p:
                ideg[u] += w
                edeg[u] -= w
            else:
                ideg[u] -= w
                edeg[u] += w
        # v itself: recompute from neighbours.
        same = part[g.adjncy[g.xadj[v] : g.xadj[v + 1]]] == dst_p
        wv = g.adjwgt[g.xadj[v] : g.xadj[v + 1]]
        ideg[v] = float(wv[same].sum(dtype=np.float64))
        edeg[v] = float(wv[~same].sum(dtype=np.float64))
    return part
