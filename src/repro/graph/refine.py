"""Fiduccia–Mattheyses (FM) boundary refinement for bisections.

After each uncoarsening step the projected bisection is refined with FM
passes: boundary vertices are moved one at a time in gain order, moves
are tentatively applied even when the gain is negative (hill climbing),
and at the end of the pass the best prefix of the move sequence is
kept.

Multi-constraint admissibility follows Karypis & Kumar: a move is
admissible if, for every constraint, the destination part stays within
``imbalance_tol`` of its target — or if the move strictly improves the
worst per-constraint imbalance (so infeasible states can be repaired).

Implementation note: the per-move admissibility check runs millions of
times, so the inner loop works on plain Python floats (``ncon ≤`` a
handful) rather than NumPy arrays — an order-of-magnitude win measured
by profiling (see the hpc-parallel guide: profile first, then optimize
the bottleneck).
"""

from __future__ import annotations

import heapq

import numpy as np

from .csr import CSRGraph
from .metrics import edge_cut

__all__ = ["fm_refine", "rebalance"]

_INF = float("inf")


def _degrees(g: CSRGraph, part: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Internal/external degrees of every vertex w.r.t. a bisection."""
    n = g.num_vertices
    src = np.repeat(np.arange(n), np.diff(g.xadj))
    same = part[src] == part[g.adjncy]
    ideg = np.zeros(n, dtype=np.float64)
    edeg = np.zeros(n, dtype=np.float64)
    np.add.at(ideg, src[same], g.adjwgt[same])
    np.add.at(edeg, src[~same], g.adjwgt[~same])
    return ideg, edeg


def _inv_denoms(
    total: np.ndarray, targets: np.ndarray
) -> tuple[list[float], list[float]]:
    """Per-(part, constraint) reciprocal balance denominators.

    A zero denominator (empty constraint or zero target) maps to 0.0 so
    the corresponding ratio contributes nothing; a zero target with
    positive weight is handled by the caller via the raw weights.
    """
    out0, out1 = [], []
    for c in range(len(total)):
        d0 = total[c] * targets[0]
        d1 = total[c] * targets[1]
        out0.append(1.0 / d0 if d0 > 0 else 0.0)
        out1.append(1.0 / d1 if d1 > 0 else 0.0)
    return out0, out1


def _max_imb(
    pw0: list[float], pw1: list[float], inv0: list[float], inv1: list[float]
) -> float:
    worst = 1.0
    for c in range(len(pw0)):
        r0 = pw0[c] * inv0[c]
        if r0 > worst:
            worst = r0
        r1 = pw1[c] * inv1[c]
        if r1 > worst:
            worst = r1
    return worst


def fm_refine(
    g: CSRGraph,
    part: np.ndarray,
    *,
    target_frac: float = 0.5,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    max_moves_per_pass: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Refine a bisection in place and return it.

    Parameters
    ----------
    part:
        ``(n,)`` 0/1 labels; modified in place.
    target_frac:
        Target fraction of every constraint's weight for part 0.
    imbalance_tol:
        Allowed multiplicative deviation from the per-part target.
    max_passes:
        FM passes; the loop stops early when a pass yields no
        improvement.
    """
    n = g.num_vertices
    if n == 0:
        return part
    rng = rng or np.random.default_rng(0)
    total = g.total_vwgt()
    targets = np.array([target_frac, 1.0 - target_frac])
    inv0, inv1 = _inv_denoms(total, targets)
    ncon = g.ncon
    vw_list: list = g.vwgt.tolist()

    pw_arr = np.zeros((2, ncon), dtype=np.float64)
    np.add.at(pw_arr, part, g.vwgt)
    pw = [list(pw_arr[0]), list(pw_arr[1])]
    inv = [inv0, inv1]

    if max_moves_per_pass is None:
        max_moves_per_pass = n
    # METIS-style early pass termination: abandon the hill climb after
    # this many consecutive non-improving moves.
    early_stop = max(100, n // 64)

    xadj_l: list = g.xadj.tolist()
    adj_l: list = g.adjncy.tolist()
    awt_l: list = g.adjwgt.tolist()

    for _ in range(max_passes):
        ideg, edeg = _degrees(g, part)
        boundary = np.flatnonzero(edeg > 0)
        if len(boundary) == 0:
            break
        stale: list = (edeg - ideg).tolist()  # current gain per vertex
        locked = bytearray(n)
        part_l: list = part.tolist()
        heap: list[tuple[float, int, int]] = []
        counter = 0
        for v in boundary[rng.permutation(len(boundary))]:
            heap.append((-stale[v], counter, int(v)))
            counter += 1
        heapq.heapify(heap)

        cur_cut = edge_cut(g, part)
        best_cut = cur_cut
        best_imb = _max_imb(pw[0], pw[1], inv0, inv1)
        moves: list[int] = []
        best_prefix = 0
        budget = max_moves_per_pass
        tol = imbalance_tol

        while heap and budget > 0:
            negg, _, v = heapq.heappop(heap)
            if locked[v] or -negg != stale[v]:
                continue
            src_p = part_l[v]
            dst_p = 1 - src_p
            vw = vw_list[v]
            pws, pwd = pw[src_p], pw[dst_p]
            invs, invd = inv[src_p], inv[dst_p]
            # Admissibility on plain floats: new worst imbalance.
            cur_imb = 1.0
            new_imb = 1.0
            for c in range(ncon):
                w = vw[c]
                rs = pws[c] * invs[c]
                rd = pwd[c] * invd[c]
                if rs > cur_imb:
                    cur_imb = rs
                if rd > cur_imb:
                    cur_imb = rd
                nrs = (pws[c] - w) * invs[c]
                nrd = (pwd[c] + w) * invd[c]
                if nrs > new_imb:
                    new_imb = nrs
                if nrd > new_imb:
                    new_imb = nrd
            if not (new_imb <= tol or new_imb < cur_imb - 1e-12):
                continue

            # Apply the move.
            locked[v] = 1
            part_l[v] = dst_p
            for c in range(ncon):
                w = vw[c]
                pws[c] -= w
                pwd[c] += w
            cur_cut -= stale[v]
            moves.append(v)
            budget -= 1

            feasible_now = new_imb <= tol
            feasible_best = best_imb <= tol
            better = (
                (feasible_now and not feasible_best)
                or (
                    feasible_now == feasible_best
                    and cur_cut < best_cut - 1e-12
                )
                or (
                    not feasible_now
                    and not feasible_best
                    and new_imb < best_imb - 1e-12
                )
            )
            if better:
                best_cut = cur_cut
                best_imb = new_imb
                best_prefix = len(moves)
            elif len(moves) - best_prefix > early_stop:
                break

            # Update neighbour gains.
            for idx in range(xadj_l[v], xadj_l[v + 1]):
                u = adj_l[idx]
                if locked[u]:
                    continue
                w = awt_l[idx]
                if part_l[u] == dst_p:
                    stale[u] -= 2.0 * w
                else:
                    stale[u] += 2.0 * w
                heapq.heappush(heap, (-stale[u], counter, u))
                counter += 1

        # Roll back the tail beyond the best prefix.
        improved = best_prefix > 0
        for v in moves[best_prefix:]:
            src_p = part_l[v]
            dst_p = 1 - src_p
            part_l[v] = dst_p
            vw = vw_list[v]
            for c in range(ncon):
                w = vw[c]
                pw[src_p][c] -= w
                pw[dst_p][c] += w
        part[:] = part_l
        if not improved:
            break
    return part


def rebalance(
    g: CSRGraph,
    part: np.ndarray,
    *,
    target_frac: float = 0.5,
    imbalance_tol: float = 1.05,
    max_moves: int | None = None,
) -> np.ndarray:
    """Repair an infeasible bisection by explicit balancing moves.

    For each violating (part, constraint) pair — worst first — the
    vertex in the overweight part carrying weight on that constraint
    with the least cut damage is moved out, until the pair is within
    tolerance.  Each vertex moves at most once per call, which
    guarantees termination even when coarse vertices carry weight on
    several constraints.  Used when FM alone cannot reach feasibility
    (e.g. after projecting a coarse partition onto a finer graph).
    """
    n = g.num_vertices
    total = g.total_vwgt()
    targets = np.array([target_frac, 1.0 - target_frac])
    pw = np.zeros((2, g.ncon), dtype=np.float64)
    np.add.at(pw, part, g.vwgt)
    if max_moves is None:
        max_moves = n

    ideg, edeg = _degrees(g, part)
    locked = np.zeros(n, dtype=bool)
    moves = 0

    def ratio(p: int, c: int) -> float:
        denom = total[c] * targets[p]
        if denom <= 0:
            return _INF if pw[p, c] > 0 else 1.0
        return pw[p, c] / denom

    def worst_pair() -> tuple[float, int, int]:
        w, wp, wc = 1.0, -1, -1
        for c in range(g.ncon):
            if total[c] <= 0:
                continue
            for p in (0, 1):
                r = ratio(p, c)
                if r > w:
                    w, wp, wc = r, p, c
        return w, wp, wc

    while moves < max_moves:
        worst, src_p, c = worst_pair()
        if worst <= imbalance_tol or src_p < 0:
            break
        dst_p = 1 - src_p
        cand = np.flatnonzero(
            (part == src_p) & ~locked & (g.vwgt[:, c] > 0)
        )
        if len(cand) == 0:
            break
        gains = edeg[cand] - ideg[cand]
        # Among the best-gain candidates, prefer the one whose weight is
        # most concentrated on the violating constraint (so the move
        # does not overfill the destination on other constraints).
        best_gain = gains.max()
        top = cand[gains >= best_gain - 1e-12]
        purity = g.vwgt[top, c] / np.maximum(g.vwgt[top].sum(axis=1), 1e-300)
        v = int(top[np.argmax(purity)])

        part[v] = dst_p
        pw[src_p] -= g.vwgt[v]
        pw[dst_p] += g.vwgt[v]
        locked[v] = True
        moves += 1
        # Incremental internal/external degree updates around v.
        for idx in range(g.xadj[v], g.xadj[v + 1]):
            u = g.adjncy[idx]
            w = g.adjwgt[idx]
            if part[u] == dst_p:
                ideg[u] += w
                edeg[u] -= w
            else:
                ideg[u] -= w
                edeg[u] += w
        # v itself: recompute from neighbours.
        same = part[g.adjncy[g.xadj[v] : g.xadj[v + 1]]] == dst_p
        wv = g.adjwgt[g.xadj[v] : g.xadj[v + 1]]
        ideg[v] = float(wv[same].sum())
        edeg[v] = float(wv[~same].sum())
    return part
