"""Initial bisection heuristics for the coarsest graph.

After coarsening, the graph is small (hundreds of vertices).  We bisect
it with *greedy graph growing* (GGG): grow a region from a random seed,
always absorbing the boundary vertex with the best cut gain, until the
region reaches its target weight on every constraint.  Several random
trials are run and the best feasible bisection kept.

For multi-constraint graphs the stopping rule and the tie-breaks
consider all constraints: a vertex is preferred if it reduces the cut
and moves every under-filled constraint toward its target.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..resilience.errors import PartitionInternalError
from .csr import CSRGraph
from .metrics import edge_cut, imbalance

__all__ = ["greedy_graph_growing", "best_initial_bisection", "random_bisection"]


def random_bisection(
    g: CSRGraph, target_frac: float, rng: np.random.Generator
) -> np.ndarray:
    """Random feasible-ish bisection used as a last-resort fallback."""
    n = g.num_vertices
    part = np.ones(n, dtype=np.int32)
    order = rng.permutation(n)
    total = g.total_vwgt()
    want = total * target_frac
    acc = np.zeros_like(want)
    for v in order:
        if np.all(acc >= want):
            break
        part[v] = 0
        acc += g.vwgt[v]
    return part


def greedy_graph_growing(
    g: CSRGraph,
    target_frac: float,
    rng: np.random.Generator,
    *,
    seed_vertex: int | None = None,
) -> np.ndarray:
    """Grow part 0 from a seed until every constraint reaches
    ``target_frac`` of its total weight.

    Returns a ``(n,)`` int32 array of 0/1 part labels.  The growth
    frontier is a max-heap on cut gain; among the frontier we always
    take the vertex with the highest gain whose addition does not
    overshoot *all* constraints (overshooting some is unavoidable with
    discrete weights).
    """
    n = g.num_vertices
    total = g.total_vwgt()
    want = total * target_frac
    part = np.ones(n, dtype=np.int32)
    acc = np.zeros(g.ncon, dtype=np.float64)

    seed = int(seed_vertex) if seed_vertex is not None else int(rng.integers(n))
    # gain[v] = (weight of edges from v into part0) - (edges to part1)
    gain = np.full(n, -np.inf)
    in_heap = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int, int]] = []
    counter = 0

    def push(v: int, gval: float) -> None:
        nonlocal counter
        heapq.heappush(heap, (-gval, counter, v))
        counter += 1
        gain[v] = gval
        in_heap[v] = True

    def grow(v: int) -> None:
        nonlocal acc
        part[v] = 0
        acc = acc + g.vwgt[v]
        for idx in range(g.xadj[v], g.xadj[v + 1]):
            u = g.adjncy[idx]
            if part[u] == 0:
                continue
            # Recompute u's gain: edges to part0 minus edges to part1.
            # Accumulate in float64 via Python floats so narrowed
            # (float32) edge weights give bit-identical gains.
            to0 = 0.0
            to1 = 0.0
            for j in range(g.xadj[u], g.xadj[u + 1]):
                t = g.adjncy[j]
                if part[t] == 0:
                    to0 += float(g.adjwgt[j])
                else:
                    to1 += float(g.adjwgt[j])
            push(u, to0 - to1)

    grow(seed)
    # Under-filled means some constraint below target.
    while np.any(acc < want):
        v = -1
        while heap:
            negg, _, cand = heapq.heappop(heap)
            if part[cand] == 1 and -negg == gain[cand]:
                v = cand
                break
        if v < 0:
            # Frontier exhausted (disconnected graph): jump to a random
            # vertex still in part 1.
            remaining = np.flatnonzero(part == 1)
            if len(remaining) == 0:
                break
            v = int(remaining[rng.integers(len(remaining))])
        grow(v)
    return part


def best_initial_bisection(
    g: CSRGraph,
    target_frac: float,
    rng: np.random.Generator,
    *,
    ntrials: int = 8,
    imbalance_tol: float = 1.10,
) -> np.ndarray:
    """Run several GGG trials and keep the best bisection.

    Ranking: feasible bisections (every constraint within
    ``imbalance_tol``) are preferred; among equally feasible candidates
    the smaller edge cut wins; infeasible candidates are ranked by
    worst-constraint imbalance first.
    """
    best_part: np.ndarray | None = None
    best_key: tuple[int, float, float] | None = None
    targets = np.array([target_frac, 1.0 - target_frac])
    for _ in range(max(1, ntrials)):
        part = greedy_graph_growing(g, target_frac, rng)
        imb = float(imbalance(g, part, 2, target=targets).max())
        cut = edge_cut(g, part)
        feasible = 0 if imb <= imbalance_tol else 1
        key = (feasible, cut if feasible == 0 else imb, cut)
        if best_key is None or key < best_key:
            best_key, best_part = key, part
    if best_part is None:
        raise PartitionInternalError(
            "best_initial_bisection produced no candidate bisection "
            f"after {max(1, ntrials)} trials on {g.num_vertices} vertices"
        )
    return best_part
