"""Partition input/output contracts and graceful-degradation helpers.

METIS-class partitioners survive production because they (a) validate
their inputs instead of trusting the mesh pipeline, and (b) never hand
back a silently broken answer.  This module gives the from-scratch
partitioner the same armor:

* :func:`validate_partition_inputs` — the canonical input pass used by
  :func:`repro.graph.partition.partition_graph` and every strategy in
  :mod:`repro.partitioning.strategies`.  It normalizes ``nparts``,
  drops all-zero constraint columns (empty temporal-level classes)
  with a structured :class:`PartitionQualityWarning`, and rejects
  malformed weights with typed :class:`ValueError`\\ s.
* :func:`check_partition_contract` — the output contract: labels in
  ``[0, nparts)``, no empty parts, every constraint balanced within
  tolerance (plus the unavoidable one-vertex discreteness slack).
* :func:`connected_components` / :func:`apportion_parts` — the
  component-aware path for disconnected graphs: partition each
  component with its fair share of parts, then pack partless
  components onto the lightest part.
* :func:`weighted_contiguous_cuts` / :func:`block_partition` — the
  geometric/last-resort fallback splitters; both guarantee non-empty
  parts by construction.

The escalating fallback chain itself (primary → relaxed tolerance →
SFC → block split) lives in :func:`repro.graph.partition.partition_graph`,
which records the rung that fired in ``PartitionResult.provenance``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from .csr import CSRGraph

__all__ = [
    "PartitionQualityWarning",
    "InputReport",
    "validate_partition_inputs",
    "check_partition_contract",
    "connected_components",
    "apportion_parts",
    "weighted_contiguous_cuts",
    "block_partition",
    "warn_quality",
]


class PartitionQualityWarning(UserWarning):
    """Structured warning for degraded partitioner inputs or outputs.

    Attributes
    ----------
    stage:
        ``"input"`` (degenerate input handled gracefully) or
        ``"output"`` (contract violation triggered a fallback rung).
    provenance:
        The rung that produced the surviving result (``"primary"``,
        ``"components"``, ``"relaxed"``, ``"sfc"``, ``"block"``).
    violations:
        Human-readable list of failed checks / degradations.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str = "output",
        provenance: str = "primary",
        violations: list[str] | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = str(stage)
        self.provenance = str(provenance)
        self.violations = list(violations or [])


def warn_quality(
    message: str,
    *,
    stage: str = "output",
    provenance: str = "primary",
    violations: list[str] | None = None,
) -> None:
    """Emit a :class:`PartitionQualityWarning` attributed to the caller."""
    warnings.warn(
        PartitionQualityWarning(
            message,
            stage=stage,
            provenance=provenance,
            violations=violations,
        ),
        stacklevel=3,
    )


@dataclass
class InputReport:
    """Outcome of :func:`validate_partition_inputs`.

    Attributes
    ----------
    graph:
        The (possibly re-weighted) graph to partition.
    nparts:
        The validated part count (clamped to ``n`` if requested).
    dropped_constraints:
        Indices of all-zero constraint columns removed from ``vwgt``
        (e.g. empty temporal-level classes after adaptation).
    clamped:
        True when ``nparts`` was reduced to the vertex count.
    notes:
        Human-readable degradation notes (one per event).
    """

    graph: CSRGraph
    nparts: int
    dropped_constraints: list[int] = field(default_factory=list)
    clamped: bool = False
    notes: list[str] = field(default_factory=list)


def validate_partition_inputs(
    g: CSRGraph,
    nparts: int,
    *,
    allow_clamp: bool = False,
    warn: bool = True,
) -> InputReport:
    """Validate and normalize partitioner inputs.

    Typed :class:`ValueError`\\ s for caller bugs (negative/NaN
    weights, ``nparts < 1``, ``nparts > n`` unless ``allow_clamp``);
    graceful degradation with a :class:`PartitionQualityWarning` for
    inputs that are legal but degenerate (all-zero constraint columns).

    Returns an :class:`InputReport`; callers should partition
    ``report.graph`` into ``report.nparts`` parts.
    """
    n = g.num_vertices
    nparts = int(nparts)
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")

    report = InputReport(graph=g, nparts=nparts)

    if nparts > n and n > 0:
        if not allow_clamp:
            raise ValueError(
                f"cannot create {nparts} non-empty parts from "
                f"{n} vertices"
            )
        report.nparts = n
        report.clamped = True
        report.notes.append(
            f"nparts clamped from {nparts} to the vertex count {n}"
        )

    vwgt = g.vwgt
    if not np.all(np.isfinite(vwgt)):
        raise ValueError("vertex weights must be finite (found NaN/inf)")
    if np.any(vwgt < 0):
        raise ValueError("vertex weights must be non-negative")
    if len(g.adjwgt) and (
        not np.all(np.isfinite(g.adjwgt)) or np.any(g.adjwgt < 0)
    ):
        raise ValueError("edge weights must be finite and non-negative")

    # Empty constraint classes (e.g. a temporal level no cell occupies
    # after re-leveling) carry no balance information and poison the
    # per-constraint imbalance denominators — drop them.
    if n > 0 and g.ncon > 1:
        totals = g.total_vwgt()
        zero = np.flatnonzero(totals <= 0.0)
        if len(zero):
            keep = np.flatnonzero(totals > 0.0)
            report.dropped_constraints = [int(c) for c in zero]
            if len(keep):
                report.graph = g.with_vwgt(
                    np.ascontiguousarray(vwgt[:, keep])
                )
                report.notes.append(
                    f"dropped {len(zero)} all-zero constraint "
                    f"column(s) {report.dropped_constraints}"
                )
            else:
                report.graph = g.with_vwgt(np.ones((n, 1)))
                report.notes.append(
                    "all constraint columns were zero; falling back to "
                    "unit vertex weights"
                )
    elif n > 0 and g.ncon == 1 and float(g.total_vwgt()[0]) <= 0.0:
        report.graph = g.with_vwgt(np.ones((n, 1)))
        report.notes.append(
            "total vertex weight is zero; falling back to unit weights"
        )

    if warn and report.notes:
        warn_quality(
            "degenerate partition input: " + "; ".join(report.notes),
            stage="input",
            violations=report.notes,
        )
    return report


def check_partition_contract(
    g: CSRGraph,
    part: np.ndarray,
    nparts: int,
    *,
    imbalance_tol: float = 1.05,
) -> list[str]:
    """Check the partition output contract; return violations (empty =
    clean).

    Checks, in order:

    1. label array shape/range: ``(n,)`` integers in ``[0, nparts)``;
    2. no empty part (when ``n >= nparts``);
    3. per-constraint imbalance within ``imbalance_tol``, with the
       standard discreteness allowance of one heaviest vertex per part
       (a part can always be forced one vertex past its target by
       integer weights — METIS grants the same slack via ``ubvec``).
    """
    n = g.num_vertices
    violations: list[str] = []
    part = np.asarray(part)
    if part.shape != (n,):
        return [f"label array has shape {part.shape}, expected ({n},)"]
    if not np.issubdtype(part.dtype, np.integer):
        return [f"label array has dtype {part.dtype}, expected integer"]
    if n == 0:
        return violations

    pmin, pmax = int(part.min()), int(part.max())
    if pmin < 0 or pmax >= nparts:
        violations.append(
            f"labels span [{pmin}, {pmax}], outside [0, {nparts})"
        )
        return violations

    counts = np.bincount(part, minlength=nparts)
    if n >= nparts:
        empty = np.flatnonzero(counts == 0)
        if len(empty):
            violations.append(
                f"{len(empty)} empty part(s): {empty[:8].tolist()}"
            )

    # Per-constraint balance with the one-vertex discreteness slack.
    vwgt = g.vwgt
    totals = g.total_vwgt()
    for c in range(g.ncon):
        total = float(totals[c])
        if total <= 0:
            continue
        pw = np.bincount(part, weights=vwgt[:, c], minlength=nparts)
        wmax = float(vwgt[:, c].max())
        allowed = (total / nparts) * imbalance_tol + wmax
        worst = int(np.argmax(pw))
        if pw[worst] > allowed + 1e-9:
            violations.append(
                f"constraint {c}: part {worst} holds {pw[worst]:.6g} "
                f"> allowed {allowed:.6g} "
                f"(total {total:.6g}, nparts {nparts}, "
                f"tol {imbalance_tol:g})"
            )
    return violations


def connected_components(g: CSRGraph) -> tuple[np.ndarray, int]:
    """Connected components of a CSR graph.

    Returns ``(labels, ncomp)`` where ``labels[v]`` is the component id
    of vertex ``v`` in ``[0, ncomp)``.  Frontier-vectorized BFS: each
    sweep expands the whole frontier with one fancy-index gather, so
    mesh-scale graphs (millions of vertices, small diameter per
    component) stay off the per-vertex Python path.
    """
    n = g.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    ncomp = 0
    xadj, adjncy = g.xadj, g.adjncy
    degrees = g.degrees()
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = ncomp
        frontier = np.array([start], dtype=np.int64)
        while len(frontier):
            # Gather all neighbours of the frontier at once.
            counts = degrees[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            starts = xadj[frontier]
            offs = np.cumsum(counts) - counts
            flat = np.arange(total, dtype=np.int64) + np.repeat(
                starts - offs, counts
            )
            nbrs = adjncy[flat]
            fresh = nbrs[labels[nbrs] < 0]
            if len(fresh) == 0:
                break
            fresh = np.unique(fresh)
            labels[fresh] = ncomp
            frontier = fresh
        ncomp += 1
    return labels, ncomp


def apportion_parts(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Largest-remainder apportionment of ``nparts`` part slots over
    components proportional to their ``weights``.

    Returns ``(ncomp,)`` integer slot counts summing to ``nparts``.
    Zero-slot components are legal (they get packed onto existing
    parts); a component never receives more slots than callers can
    fill (that cap is applied by the caller, which knows sizes).
    """
    weights = np.asarray(weights, dtype=np.float64)
    total = float(weights.sum())
    if total <= 0:
        weights = np.ones_like(weights)
        total = float(weights.sum())
    quota = weights * (nparts / total)
    base = np.floor(quota).astype(np.int64)
    rem = nparts - int(base.sum())
    if rem > 0:
        frac = quota - base
        # Stable: ties broken by component index.
        order = np.argsort(-frac, kind="stable")
        base[order[:rem]] += 1
    return base


def weighted_contiguous_cuts(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Split a weight sequence into ``nparts`` contiguous non-empty
    chunks of roughly equal weight.

    Returns the ``(nparts,)`` chunk label of every element.  Cut points
    target the cumulative-weight quantiles, then are repaired to be
    strictly increasing so every chunk keeps at least one element —
    heavy-tailed weights cannot silently produce empty parts.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n = len(weights)
    if nparts > n:
        raise ValueError(
            f"cannot cut {n} elements into {nparts} non-empty chunks"
        )
    labels = np.zeros(n, dtype=np.int32)
    if nparts <= 1:
        return labels
    csum = np.cumsum(np.maximum(weights, 0.0))
    total = float(csum[-1])
    if total <= 0:
        csum = np.arange(1, n + 1, dtype=np.float64)
        total = float(n)
    bounds = np.searchsorted(
        csum, total * np.arange(1, nparts) / nparts, side="left"
    ).astype(np.int64)
    # Repair to strictly increasing within [d+1, n-(nparts-1-d)], so
    # each chunk (including the last) keeps >= 1 element.  With
    # lo[d] = d+1 the feasible band has constant width n - nparts, so
    # "strictly increasing bounds" == "non-decreasing bounds - lo".
    lo = np.arange(1, nparts, dtype=np.int64)
    slack = np.maximum.accumulate(np.maximum(bounds - lo, 0))
    bounds = np.minimum(slack, n - nparts) + lo
    prev = 0
    for d, b in enumerate(bounds):
        labels[prev:b] = d
        prev = int(b)
    labels[prev:] = nparts - 1
    return labels


def block_partition(
    n: int, nparts: int, weights: np.ndarray | None = None
) -> np.ndarray:
    """Last-resort contiguous block split in index order.

    Ignores adjacency entirely: vertices ``[0, n)`` are cut into
    ``nparts`` contiguous runs, weight-balanced when ``weights`` is
    given, count-balanced otherwise.  Always contract-clean on labels
    and non-emptiness; balance is best-effort.
    """
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    return weighted_contiguous_cuts(weights, nparts)
