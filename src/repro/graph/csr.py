"""Compressed sparse row (CSR) graph structure.

All graph algorithms in :mod:`repro.graph` operate on this structure.
It mirrors the METIS input format: an undirected graph is stored as a
pair of flat arrays ``(xadj, adjncy)`` where the neighbours of vertex
``v`` are ``adjncy[xadj[v]:xadj[v+1]]``, plus optional edge weights
``adjwgt`` aligned with ``adjncy`` and vertex weights ``vwgt`` of shape
``(n, ncon)`` — one column per balance constraint.

Storing every array contiguously keeps the hot partitioning loops
(`matching`, `FM refinement`) cache-friendly and lets most operations
vectorize with NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRGraph", "graph_from_edges", "validate_csr"]


def _as_index_array(a, *, allow_narrow: bool = False) -> np.ndarray:
    """Contiguous integer index array.

    With ``allow_narrow`` an int32 input keeps its dtype (the scale
    tier stores ``adjncy`` narrowed); everything else is widened to
    int64.
    """
    arr = np.ascontiguousarray(a)
    if allow_narrow and arr.dtype == np.int32:
        return arr
    if arr.dtype != np.int64:
        arr = arr.astype(np.int64)
    return arr


def _as_weight_array(a) -> np.ndarray:
    """Contiguous float weight array, preserving an explicit float32
    narrowing; all other dtypes are widened to float64."""
    arr = np.ascontiguousarray(a)
    if arr.dtype == np.float32:
        return arr
    if arr.dtype != np.float64:
        arr = arr.astype(np.float64)
    return arr


@dataclass
class CSRGraph:
    """An undirected graph in CSR (adjacency-list) form.

    Parameters
    ----------
    xadj:
        ``(n+1,)`` int64 array of row pointers; ``xadj[0] == 0`` and
        ``xadj[-1] == len(adjncy)``.
    adjncy:
        ``(m,)`` int64 array of neighbour indices.  Each undirected edge
        ``{u, v}`` appears twice: once in ``u``'s row and once in
        ``v``'s.
    vwgt:
        ``(n, ncon)`` float64 vertex weights — one column per balance
        constraint.  Defaults to all-ones with a single constraint.
    adjwgt:
        ``(m,)`` float64 edge weights aligned with ``adjncy``.  Defaults
        to all-ones.
    """

    xadj: np.ndarray
    adjncy: np.ndarray
    vwgt: np.ndarray = field(default=None)  # type: ignore[assignment]
    adjwgt: np.ndarray = field(default=None)  # type: ignore[assignment]
    # Lazily computed derived arrays shared by the hot partitioning
    # kernels; CSRGraph structure is treated as immutable after
    # construction, so caching is safe.
    _degrees: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _edge_sources: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # Row pointers stay int64 (n+1 entries — negligible memory);
        # the O(2m) ``adjncy`` and the weights may stay narrowed.
        self.xadj = _as_index_array(self.xadj)
        self.adjncy = _as_index_array(self.adjncy, allow_narrow=True)
        n = self.num_vertices
        if self.vwgt is None:
            self.vwgt = np.ones((n, 1), dtype=np.float64)
        else:
            vwgt = _as_weight_array(self.vwgt)
            if vwgt.ndim == 1:
                vwgt = vwgt.reshape(n, 1)
            self.vwgt = vwgt
        if self.adjwgt is None:
            self.adjwgt = np.ones(len(self.adjncy), dtype=np.float64)
        else:
            self.adjwgt = _as_weight_array(self.adjwgt)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self.xadj) - 1

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges (each stored twice in CSR)."""
        return len(self.adjncy) // 2

    @property
    def ncon(self) -> int:
        """Number of balance constraints (columns of ``vwgt``)."""
        return self.vwgt.shape[1]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self.xadj[v + 1] - self.xadj[v])

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees (cached; do not mutate)."""
        if self._degrees is None:
            self._degrees = np.diff(self.xadj)
        return self._degrees

    def edge_sources(self) -> np.ndarray:
        """``(m,)`` source vertex of every directed CSR edge, i.e. the
        row index aligned with :attr:`adjncy` (cached; do not mutate).

        Coarsening, refinement and the partition metrics all need this
        ``np.repeat`` expansion; computing it once per graph keeps it
        off the hot path.
        """
        if self._edge_sources is None:
            self._edge_sources = np.repeat(
                np.arange(self.num_vertices, dtype=self.adjncy.dtype),
                self.degrees(),
            )
        return self._edge_sources

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour indices of vertex ``v`` (a CSR view, do not mutate)."""
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def edge_weights(self, v: int) -> np.ndarray:
        """Weights of the edges incident to ``v``, aligned with
        :meth:`neighbors`."""
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def total_vwgt(self) -> np.ndarray:
        """Sum of vertex weights per constraint, shape ``(ncon,)``.

        Always accumulated in float64 so narrowed (float32) storage
        yields bit-identical totals to the wide path.
        """
        return self.vwgt.sum(axis=0, dtype=np.float64)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def total_edge_weight(self) -> float:
        """Total weight over undirected edges (each counted once)."""
        return float(self.adjwgt.sum(dtype=np.float64)) / 2.0

    def with_vwgt(self, vwgt: np.ndarray) -> "CSRGraph":
        """Return a shallow copy of the graph with new vertex weights."""
        g = CSRGraph(self.xadj, self.adjncy, vwgt=vwgt, adjwgt=self.adjwgt)
        # The structure is shared, so the derived caches are too.
        g._degrees = self._degrees
        g._edge_sources = self._edge_sources
        return g

    def subgraph(self, vertices: np.ndarray) -> tuple["CSRGraph", np.ndarray]:
        """Extract the induced subgraph on ``vertices``.

        Returns ``(sub, mapping)`` where ``mapping`` maps subgraph
        vertex index -> original vertex index.  Edges to vertices
        outside the set are dropped.
        """
        vertices = _as_index_array(vertices, allow_narrow=True)
        n = self.num_vertices
        # Local indices inherit the adjacency dtype so an int32 graph
        # stays int32 through recursive bisection.
        idx_dtype = self.adjncy.dtype
        local = np.full(n, -1, dtype=idx_dtype)
        local[vertices] = np.arange(len(vertices), dtype=idx_dtype)

        # Gather all candidate edges from the selected rows.
        starts = self.xadj[vertices]
        counts = self.degrees()[vertices]
        # Build a flat index into adjncy selecting the rows of `vertices`
        # without a per-row Python loop: within each row the flat index
        # is `start + offset_in_row`.
        row_of = np.repeat(np.arange(len(vertices)), counts)
        total = int(counts.sum())
        offs = np.cumsum(counts) - counts
        flat = (
            np.arange(total, dtype=np.int64) + np.repeat(starts - offs, counts)
            if len(vertices)
            else np.empty(0, dtype=np.int64)
        )
        nbr = self.adjncy[flat]
        wgt = self.adjwgt[flat]
        keep = local[nbr] >= 0
        row_of = row_of[keep]
        nbr_local = local[nbr[keep]]
        wgt = wgt[keep]

        # `row_of` is already non-decreasing (rows were gathered in
        # order), so the kept edges are grouped per subgraph row.
        new_xadj = np.zeros(len(vertices) + 1, dtype=np.int64)
        new_xadj[1:] = np.bincount(row_of, minlength=len(vertices))
        np.cumsum(new_xadj, out=new_xadj)
        sub = CSRGraph(
            new_xadj,
            nbr_local,
            vwgt=self.vwgt[vertices].copy(),
            adjwgt=wgt,
        )
        return sub, vertices

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CSRGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"ncon={self.ncon})"
        )


def graph_from_edges(
    n: int,
    edges: np.ndarray,
    *,
    vwgt: np.ndarray | None = None,
    ewgt: np.ndarray | None = None,
    index_dtype: np.dtype | type | None = None,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an edge list.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        ``(m, 2)`` array of undirected edges (each pair listed once).
        Self-loops are rejected; duplicate pairs have their weights
        summed.
    vwgt / ewgt:
        Optional vertex weights (``(n,)`` or ``(n, ncon)``) and edge
        weights ``(m,)``.
    index_dtype:
        Optional storage dtype for ``adjncy`` (e.g. ``np.int32`` when
        ``n`` provably fits); row pointers stay int64.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(edges) and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range")
    if len(edges) and np.any(edges[:, 0] == edges[:, 1]):
        raise ValueError("self-loops are not allowed")
    if ewgt is None:
        ewgt = np.ones(len(edges), dtype=np.float64)
    else:
        ewgt = np.asarray(ewgt, dtype=np.float64)
        if len(ewgt) != len(edges):
            raise ValueError("ewgt length mismatch")

    # Deduplicate: canonicalize (min, max) and sum weights of duplicates.
    if len(edges):
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        key = lo * np.int64(n) + hi
        uniq, inv = np.unique(key, return_inverse=True)
        w = np.bincount(inv, weights=ewgt, minlength=len(uniq))
        lo = (uniq // n).astype(np.int64)
        hi = (uniq % n).astype(np.int64)
    else:
        lo = hi = np.empty(0, dtype=np.int64)
        w = np.empty(0, dtype=np.float64)

    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    wboth = np.concatenate([w, w])
    order = np.argsort(src, kind="stable")
    src, dst, wboth = src[order], dst[order], wboth[order]

    xadj = np.zeros(n + 1, dtype=np.int64)
    xadj[1:] = np.bincount(src, minlength=n)
    np.cumsum(xadj, out=xadj)
    if index_dtype is not None:
        dst = dst.astype(index_dtype, copy=False)
    return CSRGraph(xadj, dst, vwgt=vwgt, adjwgt=wboth)


def validate_csr(g: CSRGraph) -> None:
    """Raise :class:`ValueError` if the CSR structure is inconsistent.

    Checks monotone row pointers, index bounds, absence of self-loops,
    and symmetry of the adjacency structure and edge weights.
    """
    n = g.num_vertices
    if g.xadj[0] != 0 or g.xadj[-1] != len(g.adjncy):
        raise ValueError("xadj endpoints inconsistent with adjncy length")
    if np.any(np.diff(g.xadj) < 0):
        raise ValueError("xadj must be non-decreasing")
    if len(g.adjncy) and (g.adjncy.min() < 0 or g.adjncy.max() >= n):
        raise ValueError("adjncy index out of range")
    if len(g.adjwgt) != len(g.adjncy):
        raise ValueError("adjwgt length mismatch")
    if g.vwgt.shape[0] != n:
        raise ValueError("vwgt row count mismatch")
    src = g.edge_sources()
    if np.any(src == g.adjncy):
        raise ValueError("self-loop present")
    # Symmetry: the multiset of (min,max,weight) must pair up evenly.
    lo = np.minimum(src, g.adjncy)
    hi = np.maximum(src, g.adjncy)
    key = lo * np.int64(n) + hi
    order = np.argsort(key, kind="stable")
    k = key[order]
    w = g.adjwgt[order]
    if len(k) % 2 != 0:
        raise ValueError("odd number of directed edges; graph not symmetric")
    if np.any(k[0::2] != k[1::2]):
        raise ValueError("adjacency is not symmetric")
    if not np.allclose(w[0::2], w[1::2]):
        raise ValueError("edge weights are not symmetric")
