"""Partition post-processing: reconnecting fragmented parts.

The paper's conclusion: multi-constraint partitioners "tend to create
disconnected subdomains that increase the number of domain borders
and, thus, the number of communications and tasks"; the authors
"intend to develop post-processing techniques to minimize the
artifacts produced by partitioners when constrained by many criteria".

This module implements that post-processing pass:

1. find every part's connected components;
2. keep each part's *dominant* component (largest constraint weight);
3. greedily reassign every stray component to the neighbouring part
   that (a) keeps every constraint within the balance tolerance and
   (b) gains the most edge weight (largest cut reduction), preferring
   moves that merge the fragment into a part it already touches.

The pass trades a bounded amount of constraint imbalance for
connectivity (and hence communication volume); the ablation benchmark
quantifies the trade on the MC_TL partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph
from .metrics import edge_cut, imbalance, part_weights

__all__ = ["ReconnectResult", "part_components", "reconnect_parts"]


@dataclass
class ReconnectResult:
    """Outcome of :func:`reconnect_parts`.

    Attributes
    ----------
    part:
        The repaired partition labels.
    moved_vertices:
        Number of vertices reassigned.
    fragments_before / fragments_after:
        Count of non-dominant components before/after the pass.
    cut_before / cut_after:
        Edge cut before/after.
    imbalance_before / imbalance_after:
        Worst per-constraint imbalance before/after.
    """

    part: np.ndarray
    moved_vertices: int
    fragments_before: int
    fragments_after: int
    cut_before: float
    cut_after: float
    imbalance_before: float
    imbalance_after: float


def part_components(g: CSRGraph, part: np.ndarray, nparts: int) -> list[list[np.ndarray]]:
    """Connected components of every part's induced subgraph.

    Returns, per part, the list of component vertex arrays sorted by
    descending total (summed over constraints) weight — the first
    entry is the dominant component.
    """
    n = g.num_vertices
    seen = np.zeros(n, dtype=bool)
    out: list[list[np.ndarray]] = [[] for _ in range(nparts)]
    for start in range(n):
        if seen[start]:
            continue
        p = part[start]
        stack = [start]
        seen[start] = True
        comp = [start]
        while stack:
            v = stack.pop()
            for u in g.neighbors(v):
                if not seen[u] and part[u] == p:
                    seen[u] = True
                    stack.append(int(u))
                    comp.append(int(u))
        out[p].append(np.array(comp, dtype=np.int64))
    for p in range(nparts):
        out[p].sort(key=lambda c: -float(g.vwgt[c].sum()))
    return out


def reconnect_parts(
    g: CSRGraph,
    part: np.ndarray,
    nparts: int,
    *,
    imbalance_tol: float = 1.20,
    max_fragment_fraction: float = 0.25,
) -> ReconnectResult:
    """Reassign stray components to adjacent parts.

    Parameters
    ----------
    imbalance_tol:
        Per-constraint balance ceiling the pass must respect when
        absorbing fragments; fragments whose absorption would violate
        it everywhere stay put (connectivity is best-effort).
    max_fragment_fraction:
        Safety valve: a "fragment" larger than this fraction of its
        part's weight is never moved (it is half the part, not an
        artifact).

    Returns
    -------
    :class:`ReconnectResult` with the repaired labels and before/after
    statistics.
    """
    part = np.array(part, dtype=np.int32, copy=True)
    total = g.total_vwgt()
    target = total / nparts  # uniform targets

    comps = part_components(g, part, nparts)
    fragments_before = sum(max(0, len(c) - 1) for c in comps)
    cut_before = edge_cut(g, part)
    imb_before = float(imbalance(g, part, nparts).max())

    pw = part_weights(g, part, nparts)
    moved = 0

    # Process fragments smallest-first so large repairs see updated
    # weights.
    fragments: list[tuple[int, np.ndarray]] = []
    for p in range(nparts):
        for comp in comps[p][1:]:
            fragments.append((p, comp))
    fragments.sort(key=lambda t: float(g.vwgt[t[1]].sum()))

    for p, comp in fragments:
        w = g.vwgt[comp].sum(axis=0)
        part_total = pw[p].sum()
        if part_total > 0 and w.sum() > max_fragment_fraction * part_total:
            continue
        # Edge weight from the fragment toward each neighbouring part.
        gain = np.zeros(nparts, dtype=np.float64)
        inside = np.zeros(g.num_vertices, dtype=bool)
        inside[comp] = True
        for v in comp:
            nbrs = g.neighbors(v)
            wts = g.edge_weights(v)
            for u, wt in zip(nbrs, wts):
                if not inside[u]:
                    gain[part[u]] += wt
        gain[p] = -np.inf  # must leave its own (disconnected) part
        order = np.argsort(-gain)
        for q in order:
            if gain[q] <= 0 or q == p:
                break
            new_q = pw[q] + w
            ok = True
            for c in range(g.ncon):
                if target[c] <= 0:
                    continue
                if new_q[c] / target[c] > imbalance_tol:
                    ok = False
                    break
            if ok:
                part[comp] = q
                pw[q] += w
                pw[p] -= w
                moved += len(comp)
                break

    comps_after = part_components(g, part, nparts)
    return ReconnectResult(
        part=part,
        moved_vertices=moved,
        fragments_before=fragments_before,
        fragments_after=sum(max(0, len(c) - 1) for c in comps_after),
        cut_before=cut_before,
        cut_after=edge_cut(g, part),
        imbalance_before=imb_before,
        imbalance_after=float(imbalance(g, part, nparts).max()),
    )
