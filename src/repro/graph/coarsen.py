"""Graph coarsening for the multilevel partitioner.

The coarsening phase repeatedly contracts a matching of the graph until
it is small enough for a direct initial partition.  We implement
*heavy-edge matching* (HEM), the workhorse of METIS: vertices are
visited in random order and each unmatched vertex is matched to the
unmatched neighbour connected by the heaviest edge.

For multi-constraint graphs we use the *balanced-edge* variant of
Karypis & Kumar: among heaviest edges, prefer the neighbour whose
combined weight vector is most evenly spread over the constraints,
which keeps constraint classes mixed inside coarse vertices and makes
balanced initial partitions reachable.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from ..accel import kernels_active
from .csr import CSRGraph

__all__ = [
    "CoarseningLevel",
    "HierarchySpill",
    "heavy_edge_matching",
    "contract",
    "coarsen_once",
]


@dataclass
class CoarseningLevel:
    """One level of the coarsening hierarchy.

    Attributes
    ----------
    graph:
        The *coarse* graph produced at this level, or ``None`` while
        the level is spilled to disk (see :class:`HierarchySpill`).
    cmap:
        ``(n_fine,)`` array mapping every fine vertex to its coarse
        vertex index.  Projection maps always stay in RAM — only the
        CSR arrays spill.
    spill_handle:
        Owner handle of the mmap spill file while the level is
        spilled (``None`` otherwise).
    """

    graph: CSRGraph | None
    cmap: np.ndarray
    spill_handle: object | None = field(default=None, repr=False)


def _csr_nbytes(g: CSRGraph) -> int:
    """Resident bytes of a graph's four CSR arrays."""
    return g.xadj.nbytes + g.adjncy.nbytes + g.vwgt.nbytes + g.adjwgt.nbytes


class HierarchySpill:
    """Byte-budgeted spill policy for the coarsening hierarchy.

    Multilevel V-cycles hold every coarsening level's graph alive from
    the moment it is built until its uncoarsening step — roughly one
    extra copy of the fine graph spread over the hierarchy.  Past a
    configurable byte budget this policy writes *idle* levels (any
    level that is neither the active coarsening input nor the current
    uncoarsening target) to mmap spill files through the
    :class:`~repro.graph.shared.SharedCSR` backend, keeping only the
    active level plus the projection maps in RAM.  Spilled levels are
    reattached read-only for their uncoarsening step and the file is
    unlinked immediately after use.

    The budget comes from ``budget`` (bytes, or a string like
    ``"512M"``) or, when ``None``, the ``REPRO_HIERARCHY_BUDGET``
    environment variable; an unset/empty budget disables spilling
    entirely (the policy is then a no-op and the V-cycle is unchanged).
    Spilling never changes results: the reloaded arrays are
    byte-for-byte the spilled ones, so labels are bit-identical to the
    in-memory path.

    One instance may be shared across concurrent bisection-tree nodes
    (the thread path of recursive bisection); the counters are
    lock-protected.  ``stats()`` reports spill/attach counts and bytes
    for :class:`~repro.graph.partition.PartitionResult` provenance.
    """

    def __init__(self, budget: int | str | None = None):
        if budget is None:
            budget = os.environ.get("REPRO_HIERARCHY_BUDGET") or None
        from ..pipeline.locking import parse_bytes

        self.budget = parse_bytes(budget)
        self.spills = 0
        self.attaches = 0
        self.spilled_bytes = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether a budget is configured (no budget → no-op)."""
        return self.budget is not None

    def stats(self) -> dict:
        """Provenance snapshot: budget and spill/attach counters."""
        with self._lock:
            return {
                "budget_bytes": self.budget,
                "spills": self.spills,
                "attaches": self.attaches,
                "spilled_bytes": self.spilled_bytes,
            }

    def absorb(self, stats: dict) -> None:
        """Fold a worker process's :meth:`stats` into this instance."""
        with self._lock:
            self.spills += int(stats.get("spills", 0))
            self.attaches += int(stats.get("attaches", 0))
            self.spilled_bytes += int(stats.get("spilled_bytes", 0))

    # ------------------------------------------------------------------
    def offload(self, lvl: CoarseningLevel, resident: int) -> int:
        """Spill ``lvl`` if keeping it would exceed the byte budget.

        ``resident`` is the caller's running total of idle in-RAM
        hierarchy bytes; the updated total is returned (unchanged when
        the level was spilled, since its graph left RAM).
        """
        if not self.enabled or lvl.graph is None:
            return resident
        nbytes = _csr_nbytes(lvl.graph)
        if resident + nbytes <= self.budget:
            return resident + nbytes
        from .shared import _SPILL_PREFIX, SharedCSR

        handle = SharedCSR.from_graph(
            lvl.graph, backend="mmap", prefix=_SPILL_PREFIX
        )
        handle.close()  # drop this process's mapping; the file persists
        lvl.spill_handle = handle
        lvl.graph = None
        with self._lock:
            self.spills += 1
            self.spilled_bytes += nbytes
        return resident

    def reload(self, lvl: CoarseningLevel):
        """Reattach a spilled level for its uncoarsening step.

        Returns ``(graph, reader)``: zero-copy read-only views over the
        re-mapped spill file and the reader to close afterwards (via
        :meth:`release`).  For a level that never spilled, returns its
        in-RAM graph and ``None``.
        """
        if lvl.graph is not None:
            return lvl.graph, None
        from .shared import SharedCSR

        reader = SharedCSR.attach(lvl.spill_handle.descriptor())
        with self._lock:
            self.attaches += 1
        return reader.graph(), reader

    @staticmethod
    def release(lvl: CoarseningLevel, reader) -> None:
        """Unmap and unlink a reloaded level's spill file (idempotent)."""
        if reader is not None:
            reader.close()
        if lvl.spill_handle is not None:
            lvl.spill_handle.unlink()
            lvl.spill_handle = None


def _segmented_max(score: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-edge expansion of the per-segment max of ``score`` over the
    contiguous segments beginning at ``starts`` (which must start at 0
    and be strictly increasing)."""
    rowmax = np.maximum.reduceat(score, starts)
    seg_len = np.diff(np.append(starts, len(score)))
    return np.repeat(rowmax, seg_len)


def _segmented_argmax_first(
    score: np.ndarray, seg_max: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Flat index of the first edge attaining its segment max.

    ``seg_max`` is the per-edge expansion from :func:`_segmented_max`.
    Segments whose max is ``-inf`` get an arbitrary index; callers must
    mask on the max.
    """
    hit_idx = np.flatnonzero(score == seg_max)
    if len(hit_idx) == 0:
        return np.zeros(len(starts), dtype=np.int64)
    pos = np.minimum(np.searchsorted(hit_idx, starts), len(hit_idx) - 1)
    return hit_idx[pos]


def _matching_fallback(
    g: CSRGraph,
    match: np.ndarray,
    candidates: np.ndarray,
    rng: np.random.Generator,
    multi: bool,
    compiled: bool | None = None,
) -> None:
    """Greedy per-vertex matching over the remaining ``candidates``.

    Invoked on the small tail left after the vectorized proposal rounds
    (or when a round makes no progress on an adversarial tie pattern);
    guarantees termination with the same semantics as the seed loop.
    The kernel tier (see :mod:`repro.accel`) runs the identical greedy
    loop compiled; both paths consume the same single RNG permutation.
    """
    xadj, adjncy, adjwgt, vwgt = g.xadj, g.adjncy, g.adjwgt, g.vwgt
    if vwgt.dtype != np.float64:
        # Compare spreads in float64 so narrowed graphs match the wide
        # path bit for bit.
        vwgt = vwgt.astype(np.float64)
    if kernels_active(compiled) and len(candidates):
        from ..accel.kernels import hem_tail_match

        hem_tail_match(
            xadj.astype(np.int64, copy=False),
            adjncy.astype(np.int64, copy=False),
            adjwgt.astype(np.float64, copy=False),
            np.ascontiguousarray(vwgt),
            match,
            candidates[rng.permutation(len(candidates))].astype(
                np.int64, copy=False
            ),
            multi,
        )
        return
    for v in candidates[rng.permutation(len(candidates))]:
        if match[v] != v:
            continue
        best = -1
        best_w = -np.inf
        best_spread = np.inf
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if match[u] != u or u == v:
                continue
            w = float(adjwgt[idx])
            if multi:
                if w > best_w + 1e-12:
                    combined = vwgt[v] + vwgt[u]
                    best, best_w = u, w
                    best_spread = float(combined.max() - combined.min())
                elif w > best_w - 1e-12:
                    combined = vwgt[v] + vwgt[u]
                    spread = float(combined.max() - combined.min())
                    if spread < best_spread:
                        best, best_w, best_spread = u, w, spread
            else:
                if w > best_w:
                    best, best_w = u, w
        if best >= 0:
            match[v] = best
            match[best] = v


def heavy_edge_matching(
    g: CSRGraph,
    rng: np.random.Generator,
    *,
    balance_constraints: bool = True,
    compiled: bool | None = None,
) -> np.ndarray:
    """Compute a heavy-edge matching (vectorized).

    Returns ``match`` where ``match[v]`` is the vertex matched with
    ``v`` (``match[v] == v`` for unmatched vertices).  The matching is
    symmetric: ``match[match[v]] == v``.

    When ``balance_constraints`` is true and the graph has more than
    one constraint, ties between equally heavy edges are broken toward
    the neighbour minimizing the spread (max-min) of the combined
    constraint vector, following the multi-constraint HEM heuristic.

    Implementation: randomized *proposal rounds* instead of the seed's
    greedy per-vertex loop.  Each round, every unmatched vertex points
    at its best unmatched neighbour — heaviest edge, then smallest
    constraint spread, then a symmetric per-round random key
    ``r[u] + r[v]`` — and mutual proposals are matched.  Because the
    edge key is symmetric and (almost surely) totally ordered, the
    best-keyed edge of the remaining subgraph is always mutual, so each
    round makes progress; the rare adversarial tie pattern falls back
    to the greedy loop.  All per-round work is O(m) NumPy — this is the
    partitioner's hottest kernel and dominates coarsening time.
    """
    n = g.num_vertices
    match = np.arange(n, dtype=np.int64)
    if n == 0 or len(g.adjncy) == 0:
        return match
    multi = balance_constraints and g.ncon > 1

    # Working COO edge set, sorted by source (CSR order); compacted to
    # live endpoints every round, so per-round cost shrinks
    # geometrically and the total work stays O(m).
    e_src = g.edge_sources()
    e_dst = g.adjncy
    # Scoring runs in float64 even on narrowed graphs, so float32
    # storage yields the exact same matching as the wide path.
    e_w = g.adjwgt
    if e_w.dtype != np.float64:
        e_w = e_w.astype(np.float64)
    if multi:
        vw = g.vwgt
        if vw.dtype != np.float64:
            vw = vw.astype(np.float64)
        combined = vw[e_src] + vw[e_dst]
        e_spread = combined.max(axis=1) - combined.min(axis=1)
    else:
        e_spread = None

    # Symmetric per-edge random tie-break key, drawn once: both
    # directions of an undirected edge see the same value, so the
    # best-keyed edge of the live subgraph is always mutually proposed
    # and every round makes progress.
    r = rng.random(n)
    e_rand = r[e_src] + r[e_dst]
    # Unweighted graphs (every mesh dual's finest level) skip the
    # heaviest-edge stage entirely: all edges tie.
    uniform = not multi and e_w.min() == e_w.max()

    alive = np.ones(n, dtype=bool)
    neg_inf = -np.inf
    # A few thousand leftover vertices are cheaper to finish with the
    # greedy loop than with more full-array rounds.
    greedy_cutoff = 2048
    # Rounds halve the edge set in expectation; the cap is a safety
    # net — leftovers are handled by the greedy fallback.
    max_rounds = 4 * int(np.ceil(np.log2(n + 1))) + 8
    for _ in range(max_rounds):
        if len(e_src) == 0:
            return match
        if len(e_src) <= greedy_cutoff:
            break

        # Segment boundaries: runs of equal e_src (sorted).
        first = np.ones(len(e_src), dtype=bool)
        first[1:] = e_src[1:] != e_src[:-1]
        starts = np.flatnonzero(first)
        rows = e_src[starts]

        if uniform:
            key = e_rand
        else:
            # Stage 1: per-row heaviest edge.
            near = e_w >= _segmented_max(e_w, starts) - 1e-12
            # Stage 2 (multi-constraint): smallest combined-weight
            # spread among the near-heaviest edges.
            if multi:
                s = np.where(near, e_spread, np.inf)
                near &= s <= -_segmented_max(-s, starts) + 1e-12
            # Stage 3: random tie-break among the surviving edges.
            key = np.where(near, e_rand, neg_inf)
        argmax = _segmented_argmax_first(key, _segmented_max(key, starts), starts)
        # Per-row proposal; every live row has at least one live edge,
        # so every row proposes.
        cand_v = e_dst[argmax]
        cand = np.full(n, -1, dtype=np.int64)
        cand[rows] = cand_v

        # Match mutual proposals (each pair counted once via v < u).
        mutual = (cand[cand_v] == rows) & (rows < cand_v)
        mv = rows[mutual]
        if len(mv) == 0:
            break  # adversarial tie pattern: finish greedily
        mu = cand_v[mutual]
        match[mv] = mu
        match[mu] = mv
        alive[mv] = False
        alive[mu] = False

        # Compact the edge set to still-live endpoints.
        keep = alive[e_src] & alive[e_dst]
        e_src, e_dst = e_src[keep], e_dst[keep]
        e_rand = e_rand[keep]
        if not uniform:
            e_w = e_w[keep]
            if multi:
                e_spread = e_spread[keep]
    if len(e_src):
        # Unmatched vertices that still have unmatched neighbours.
        _matching_fallback(
            g, match, np.unique(e_src), rng, multi, compiled=compiled
        )
    return match


def contract(
    g: CSRGraph, match: np.ndarray, *, compiled: bool | None = None
) -> CoarseningLevel:
    """Contract a matching into a coarse graph.

    Matched pairs become single coarse vertices whose weight vectors
    are summed; parallel coarse edges are merged with summed weights;
    internal (contracted) edges disappear.

    ``compiled`` selects the kernel tier (see :mod:`repro.accel`) for
    the parallel-edge merge — a counting-sort kernel reproducing the
    stable argsort + run-sum bit for bit; ``None`` consults
    ``REPRO_COMPILED``.
    """
    n = g.num_vertices
    # Assign coarse ids: the smaller endpoint of each pair labels it.
    leader = np.minimum(np.arange(n), match)
    uniq, cmap = np.unique(leader, return_inverse=True)
    nc = len(uniq)

    # Per-constraint bincount beats np.add.at's buffered scatter by a
    # wide margin on the coarsening hot path.
    cvwgt = np.empty((nc, g.vwgt.shape[1]), dtype=np.float64)
    for c in range(g.vwgt.shape[1]):
        cvwgt[:, c] = np.bincount(cmap, weights=g.vwgt[:, c], minlength=nc)

    csrc = cmap[g.edge_sources()]
    cdst = cmap[g.adjncy]
    keep = csrc != cdst  # drop contracted (now internal) edges
    csrc, cdst, w = csrc[keep], cdst[keep], g.adjwgt[keep]

    xadj = np.zeros(nc + 1, dtype=np.int64)
    if len(csrc) and kernels_active(compiled):
        from ..accel.kernels import contract_merge

        gsrc = np.empty(len(csrc), dtype=np.int64)
        gdst = np.empty(len(csrc), dtype=np.int64)
        gw = np.empty(len(csrc), dtype=np.float64)
        ng = contract_merge(
            np.ascontiguousarray(csrc, dtype=np.int64),
            np.ascontiguousarray(cdst, dtype=np.int64),
            w.astype(np.float64, copy=False),
            nc,
            gsrc,
            gdst,
            gw,
            xadj[1:],
        )
        gsrc, gdst, gw = gsrc[:ng], gdst[:ng], gw[:ng]
    else:
        # Merge parallel edges: sort by (src, dst) and sum runs.
        key = csrc * np.int64(nc) + cdst
        order = np.argsort(key, kind="stable")
        key, csrc, cdst, w = key[order], csrc[order], cdst[order], w[order]
        if len(key):
            first = np.ones(len(key), dtype=bool)
            first[1:] = key[1:] != key[:-1]
            group = np.cumsum(first) - 1
            gw = np.bincount(group, weights=w, minlength=group[-1] + 1)
            gsrc = csrc[first]
            gdst = cdst[first]
        else:
            gw = np.empty(0, dtype=np.float64)
            gsrc = gdst = np.empty(0, dtype=np.int64)
        xadj[1:] = np.bincount(gsrc, minlength=nc)
    np.cumsum(xadj, out=xadj)
    # Indices stay narrowed on int32 graphs; the summed coarse weights
    # stay float64 in all cases so both storage widths see the exact
    # same hierarchy.
    gdst = gdst.astype(g.adjncy.dtype, copy=False)
    coarse = CSRGraph(xadj, gdst, vwgt=cvwgt, adjwgt=gw)
    return CoarseningLevel(graph=coarse, cmap=cmap)


def coarsen_once(
    g: CSRGraph,
    rng: np.random.Generator,
    *,
    balance_constraints: bool = True,
    compiled: bool | None = None,
) -> CoarseningLevel:
    """One coarsening step: heavy-edge matching followed by contraction."""
    # Forward ``compiled`` only when explicitly set: the hot-path tests
    # monkeypatch ``heavy_edge_matching`` with the seed oracle, whose
    # signature predates the kernel tier.
    kwargs = {} if compiled is None else {"compiled": compiled}
    match = heavy_edge_matching(
        g, rng, balance_constraints=balance_constraints, **kwargs
    )
    return contract(g, match, compiled=compiled)
