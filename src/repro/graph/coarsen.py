"""Graph coarsening for the multilevel partitioner.

The coarsening phase repeatedly contracts a matching of the graph until
it is small enough for a direct initial partition.  We implement
*heavy-edge matching* (HEM), the workhorse of METIS: vertices are
visited in random order and each unmatched vertex is matched to the
unmatched neighbour connected by the heaviest edge.

For multi-constraint graphs we use the *balanced-edge* variant of
Karypis & Kumar: among heaviest edges, prefer the neighbour whose
combined weight vector is most evenly spread over the constraints,
which keeps constraint classes mixed inside coarse vertices and makes
balanced initial partitions reachable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["CoarseningLevel", "heavy_edge_matching", "contract", "coarsen_once"]


@dataclass
class CoarseningLevel:
    """One level of the coarsening hierarchy.

    Attributes
    ----------
    graph:
        The *coarse* graph produced at this level.
    cmap:
        ``(n_fine,)`` array mapping every fine vertex to its coarse
        vertex index.
    """

    graph: CSRGraph
    cmap: np.ndarray


def heavy_edge_matching(
    g: CSRGraph,
    rng: np.random.Generator,
    *,
    balance_constraints: bool = True,
) -> np.ndarray:
    """Compute a heavy-edge matching.

    Returns ``match`` where ``match[v]`` is the vertex matched with
    ``v`` (``match[v] == v`` for unmatched vertices).  The matching is
    symmetric: ``match[match[v]] == v``.

    When ``balance_constraints`` is true and the graph has more than
    one constraint, ties between equally heavy edges are broken toward
    the neighbour minimizing the spread (max-min) of the combined
    constraint vector, following the multi-constraint HEM heuristic.
    """
    n = g.num_vertices
    match = np.arange(n, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy, adjwgt = g.xadj, g.adjncy, g.adjwgt
    multi = balance_constraints and g.ncon > 1
    vwgt = g.vwgt

    for v in order:
        if match[v] != v:
            continue
        best = -1
        best_w = -np.inf
        best_spread = np.inf
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if match[u] != u or u == v:
                continue
            w = adjwgt[idx]
            if multi:
                if w > best_w + 1e-12:
                    combined = vwgt[v] + vwgt[u]
                    best, best_w = u, w
                    best_spread = float(combined.max() - combined.min())
                elif w > best_w - 1e-12:
                    combined = vwgt[v] + vwgt[u]
                    spread = float(combined.max() - combined.min())
                    if spread < best_spread:
                        best, best_w, best_spread = u, w, spread
            else:
                if w > best_w:
                    best, best_w = u, w
        if best >= 0:
            match[v] = best
            match[best] = v
    return match


def contract(g: CSRGraph, match: np.ndarray) -> CoarseningLevel:
    """Contract a matching into a coarse graph.

    Matched pairs become single coarse vertices whose weight vectors
    are summed; parallel coarse edges are merged with summed weights;
    internal (contracted) edges disappear.
    """
    n = g.num_vertices
    # Assign coarse ids: the smaller endpoint of each pair labels it.
    leader = np.minimum(np.arange(n), match)
    uniq, cmap = np.unique(leader, return_inverse=True)
    nc = len(uniq)

    cvwgt = np.zeros((nc, g.vwgt.shape[1]), dtype=np.float64)
    np.add.at(cvwgt, cmap, g.vwgt)

    src = np.repeat(np.arange(n), np.diff(g.xadj))
    csrc = cmap[src]
    cdst = cmap[g.adjncy]
    keep = csrc != cdst  # drop contracted (now internal) edges
    csrc, cdst, w = csrc[keep], cdst[keep], g.adjwgt[keep]

    # Merge parallel edges: sort by (src, dst) and sum runs.
    key = csrc * np.int64(nc) + cdst
    order = np.argsort(key, kind="stable")
    key, csrc, cdst, w = key[order], csrc[order], cdst[order], w[order]
    if len(key):
        first = np.ones(len(key), dtype=bool)
        first[1:] = key[1:] != key[:-1]
        group = np.cumsum(first) - 1
        gw = np.zeros(group[-1] + 1, dtype=np.float64)
        np.add.at(gw, group, w)
        gsrc = csrc[first]
        gdst = cdst[first]
    else:
        gw = np.empty(0, dtype=np.float64)
        gsrc = gdst = np.empty(0, dtype=np.int64)

    xadj = np.zeros(nc + 1, dtype=np.int64)
    np.add.at(xadj[1:], gsrc, 1)
    np.cumsum(xadj, out=xadj)
    coarse = CSRGraph(xadj, gdst, vwgt=cvwgt, adjwgt=gw)
    return CoarseningLevel(graph=coarse, cmap=cmap)


def coarsen_once(
    g: CSRGraph,
    rng: np.random.Generator,
    *,
    balance_constraints: bool = True,
) -> CoarseningLevel:
    """One coarsening step: heavy-edge matching followed by contraction."""
    match = heavy_edge_matching(g, rng, balance_constraints=balance_constraints)
    return contract(g, match)
