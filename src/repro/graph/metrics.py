"""Quality metrics for graph partitions.

Definitions follow the METIS conventions:

* **edge cut** — total weight of edges whose endpoints lie in different
  parts (each undirected edge counted once);
* **imbalance** — for each constraint ``c``, ``max_p W_p[c] /
  (W_total[c] * target_p)`` where ``W_p`` is the part's weight; a value
  of 1.0 means perfect balance.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "edge_cut",
    "part_weights",
    "imbalance",
    "boundary_vertices",
    "parts_connected",
    "connected_components_of_part",
]


def edge_cut(g: CSRGraph, part: np.ndarray) -> float:
    """Total weight of cut edges (each undirected edge counted once)."""
    cut = part[g.edge_sources()] != part[g.adjncy]
    # float64 accumulation keeps narrowed (float32) graphs bit-identical
    # with the wide path.
    return float(g.adjwgt[cut].sum(dtype=np.float64)) / 2.0


def part_weights(g: CSRGraph, part: np.ndarray, nparts: int) -> np.ndarray:
    """Per-part constraint weights, shape ``(nparts, ncon)``."""
    w = np.empty((nparts, g.ncon), dtype=np.float64)
    for c in range(g.ncon):
        w[:, c] = np.bincount(part, weights=g.vwgt[:, c], minlength=nparts)
    return w


def imbalance(
    g: CSRGraph,
    part: np.ndarray,
    nparts: int,
    target: np.ndarray | None = None,
) -> np.ndarray:
    """Per-constraint load imbalance of a partition.

    Parameters
    ----------
    target:
        Optional ``(nparts,)`` array of target fractions per part
        (defaults to uniform ``1/nparts``).

    Returns
    -------
    ``(ncon,)`` array; entry ``c`` is the max over parts of
    ``W_p[c] / (total[c] * target_p)``.  Constraints with zero total
    weight report 1.0.
    """
    w = part_weights(g, part, nparts)
    total = g.total_vwgt()
    if target is None:
        target = np.full(nparts, 1.0 / nparts)
    target = np.asarray(target, dtype=np.float64)
    out = np.ones(g.ncon, dtype=np.float64)
    for c in range(g.ncon):
        if total[c] <= 0:
            continue
        ratios = w[:, c] / (total[c] * target)
        out[c] = float(ratios.max())
    return out


def boundary_vertices(g: CSRGraph, part: np.ndarray) -> np.ndarray:
    """Indices of vertices adjacent to at least one other part."""
    src = g.edge_sources()
    is_cut = part[src] != part[g.adjncy]
    return np.unique(src[is_cut])


def connected_components_of_part(
    g: CSRGraph, part: np.ndarray, p: int
) -> int:
    """Number of connected components of the subgraph induced by part
    ``p`` (0 if the part is empty)."""
    members = np.flatnonzero(part == p)
    if len(members) == 0:
        return 0
    inpart = np.zeros(g.num_vertices, dtype=bool)
    inpart[members] = True
    seen = np.zeros(g.num_vertices, dtype=bool)
    ncomp = 0
    for start in members:
        if seen[start]:
            continue
        ncomp += 1
        stack = [int(start)]
        seen[start] = True
        while stack:
            v = stack.pop()
            for u in g.neighbors(v):
                if inpart[u] and not seen[u]:
                    seen[u] = True
                    stack.append(int(u))
    return ncomp


def parts_connected(g: CSRGraph, part: np.ndarray, nparts: int) -> np.ndarray:
    """Boolean array: whether each part induces a connected subgraph.

    Empty parts are reported as connected (vacuously true).  The paper
    notes MC_TL often fails to keep domains connected — this metric
    quantifies that artifact (Section IX perspective).
    """
    out = np.ones(nparts, dtype=bool)
    for p in range(nparts):
        out[p] = connected_components_of_part(g, part, p) <= 1
    return out
