"""Multilevel bisection: coarsen → initial bisection → refine.

This is the V-cycle at the heart of the partitioner.  The fine graph is
coarsened with heavy-edge matching until it is small, bisected directly
with greedy graph growing, and the bisection is projected back up with
FM refinement (and explicit rebalancing if needed) at every level.
"""

from __future__ import annotations

import numpy as np

from .coarsen import CoarseningLevel, HierarchySpill, coarsen_once
from .csr import CSRGraph
from .initial import best_initial_bisection
from .refine import fm_refine, rebalance

__all__ = ["multilevel_bisect"]


def multilevel_bisect(
    g: CSRGraph,
    target_frac: float,
    rng: np.random.Generator,
    *,
    imbalance_tol: float = 1.05,
    coarse_to: int | None = None,
    max_passes: int = 8,
    init_trials: int = 8,
    spill: HierarchySpill | None = None,
) -> np.ndarray:
    """Bisect ``g`` so part 0 receives ``target_frac`` of every
    constraint's weight.

    Returns a ``(n,)`` int32 array of 0/1 labels.

    Parameters
    ----------
    imbalance_tol:
        Multiplicative balance tolerance per constraint (METIS-style
        ``ubvec``); 1.05 allows 5% overweight.
    coarse_to:
        Stop coarsening when the graph has at most this many vertices.
        Defaults to ``max(64, 20 * ncon)``.
    spill:
        Optional :class:`~repro.graph.coarsen.HierarchySpill` policy:
        past its byte budget, idle hierarchy levels are written to mmap
        spill files and reattached read-only for their uncoarsening
        step.  Spilling never changes the labels — the reloaded arrays
        are byte-for-byte the spilled ones.
    """
    if coarse_to is None:
        coarse_to = max(64, 20 * g.ncon)

    # --- Coarsening phase -------------------------------------------------
    levels: list[CoarseningLevel] = []
    cur = g
    resident = 0
    try:
        while cur.num_vertices > coarse_to:
            lvl = coarsen_once(cur, rng)
            # Stop if matching stalls (e.g. star graphs): < 10% shrink.
            if lvl.graph.num_vertices > 0.95 * cur.num_vertices:
                break
            levels.append(lvl)
            cur = lvl.graph
            # The previous level just went idle: its graph is needed
            # again only at its uncoarsening step.  The active input
            # (levels[-1]) always stays resident.
            if spill is not None and len(levels) >= 2:
                resident = spill.offload(levels[-2], resident)

        # --- Initial partitioning -----------------------------------------
        part = best_initial_bisection(
            cur,
            target_frac,
            rng,
            ntrials=init_trials,
            imbalance_tol=imbalance_tol,
        ).astype(np.int32)
        part = rebalance(
            cur, part, target_frac=target_frac, imbalance_tol=imbalance_tol
        )
        part = fm_refine(
            cur,
            part,
            target_frac=target_frac,
            imbalance_tol=imbalance_tol,
            max_passes=max_passes,
            rng=rng,
        )

        # --- Uncoarsening phase -------------------------------------------
        # The fine side of level i is level i-1's coarse graph (``None``
        # stands for the original ``g``), reloaded from its spill file
        # when the level went to disk and unlinked right after its
        # refinement step.
        fines: list[CoarseningLevel | None] = [None] + levels[:-1]
        for lvl, fine_lvl in zip(reversed(levels), reversed(fines)):
            if fine_lvl is None:
                fine, reader = g, None
            elif spill is not None:
                fine, reader = spill.reload(fine_lvl)
            else:
                fine, reader = fine_lvl.graph, None
            part = part[lvl.cmap].astype(np.int32)
            part = rebalance(
                fine,
                part,
                target_frac=target_frac,
                imbalance_tol=imbalance_tol,
            )
            part = fm_refine(
                fine,
                part,
                target_frac=target_frac,
                imbalance_tol=imbalance_tol,
                max_passes=max_passes,
                rng=rng,
            )
            if fine_lvl is not None:
                HierarchySpill.release(fine_lvl, reader)
        return part
    finally:
        # Exception safety: never leak spill files for levels whose
        # uncoarsening step did not run.
        for lvl in levels:
            if lvl.spill_handle is not None:
                lvl.spill_handle.unlink()
                lvl.spill_handle = None
