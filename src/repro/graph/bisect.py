"""Multilevel bisection: coarsen → initial bisection → refine.

This is the V-cycle at the heart of the partitioner.  The fine graph is
coarsened with heavy-edge matching until it is small, bisected directly
with greedy graph growing, and the bisection is projected back up with
FM refinement (and explicit rebalancing if needed) at every level.
"""

from __future__ import annotations

import numpy as np

from .coarsen import CoarseningLevel, coarsen_once
from .csr import CSRGraph
from .initial import best_initial_bisection
from .refine import fm_refine, rebalance

__all__ = ["multilevel_bisect"]


def multilevel_bisect(
    g: CSRGraph,
    target_frac: float,
    rng: np.random.Generator,
    *,
    imbalance_tol: float = 1.05,
    coarse_to: int | None = None,
    max_passes: int = 8,
    init_trials: int = 8,
) -> np.ndarray:
    """Bisect ``g`` so part 0 receives ``target_frac`` of every
    constraint's weight.

    Returns a ``(n,)`` int32 array of 0/1 labels.

    Parameters
    ----------
    imbalance_tol:
        Multiplicative balance tolerance per constraint (METIS-style
        ``ubvec``); 1.05 allows 5% overweight.
    coarse_to:
        Stop coarsening when the graph has at most this many vertices.
        Defaults to ``max(64, 20 * ncon)``.
    """
    if coarse_to is None:
        coarse_to = max(64, 20 * g.ncon)

    # --- Coarsening phase -------------------------------------------------
    levels: list[CoarseningLevel] = []
    cur = g
    while cur.num_vertices > coarse_to:
        lvl = coarsen_once(cur, rng)
        # Stop if matching stalls (e.g. star graphs): < 10% shrink.
        if lvl.graph.num_vertices > 0.95 * cur.num_vertices:
            break
        levels.append(lvl)
        cur = lvl.graph

    # --- Initial partitioning ---------------------------------------------
    part = best_initial_bisection(
        cur,
        target_frac,
        rng,
        ntrials=init_trials,
        imbalance_tol=imbalance_tol,
    ).astype(np.int32)
    part = rebalance(
        cur, part, target_frac=target_frac, imbalance_tol=imbalance_tol
    )
    part = fm_refine(
        cur,
        part,
        target_frac=target_frac,
        imbalance_tol=imbalance_tol,
        max_passes=max_passes,
        rng=rng,
    )

    # --- Uncoarsening phase -------------------------------------------
    for lvl, fine in zip(
        reversed(levels), reversed([g] + [l.graph for l in levels[:-1]])
    ):
        part = part[lvl.cmap].astype(np.int32)
        part = rebalance(
            fine,
            part,
            target_frac=target_frac,
            imbalance_tol=imbalance_tol,
        )
        part = fm_refine(
            fine,
            part,
            target_frac=target_frac,
            imbalance_tol=imbalance_tol,
            max_passes=max_passes,
            rng=rng,
        )
    return part
