"""Shared-memory CSR graph storage for multi-process partitioning.

Parallel recursive bisection dispatches independent subtree nodes to
workers.  With a process pool, pickling the whole :class:`CSRGraph`
into every task would copy O(n + m) bytes per split — at paper scale
(1M+ cells) that dwarfs the partitioning work itself.  Instead the
parent packs the four CSR arrays (``xadj/adjncy/vwgt/adjwgt``) into a
single shared segment once; tasks carry only a tiny picklable
*descriptor*, and each worker process attaches the segment one time
and reconstructs zero-copy read-only array views.

Two backends provide the segment:

* ``"shm"`` — POSIX shared memory via
  :class:`multiprocessing.shared_memory.SharedMemory` (the default);
* ``"mmap"`` — a temporary file mapped with :class:`numpy.memmap`,
  used as a spill path when ``/dev/shm`` is unavailable or too small
  (or when forced with ``REPRO_SHARED_BACKEND=mmap``).

Cleanup is defensive in two layers.  The parent object unlinks its
segment via ``weakref.finalize`` (which also runs at interpreter
exit), so worker crashes cannot leak ``/dev/shm`` entries — only the
parent owns the segment's lifetime.  And because a finalizer cannot
survive ``SIGKILL``, segment names embed the owning pid
(``repro-shm-<pid>-<hex>`` / ``repro_csr_<pid>_...`` /
``repro_spill_<pid>_...`` for spilled coarsening levels): a killed
parent's leftovers are recognisably stale (dead pid) and reclaimed by
:func:`sweep_stale_segments` — run automatically once per process
before the first segment is created (disable with
``REPRO_SHM_SWEEP=0``), or on demand via ``repro gc``.
"""

from __future__ import annotations

import os
import re
import tempfile
import warnings
import weakref
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from .csr import CSRGraph

__all__ = [
    "SharedCSR",
    "attached_graph",
    "attachment_count",
    "stale_segments",
    "sweep_stale_segments",
]

#: Segment naming: the owning pid is part of the name, so a sweep can
#: tell live segments from the litter of killed processes.
_SHM_PREFIX = "repro-shm-"
_MMAP_PREFIX = "repro_csr_"
#: Spilled coarsening-hierarchy levels (see
#: :class:`repro.graph.coarsen.HierarchySpill`) use the same mmap
#: machinery under their own prefix, so the sweep can reclaim them too.
_SPILL_PREFIX = "repro_spill_"
_SHM_RE = re.compile(r"^repro-shm-(\d+)-[0-9a-f]+$")
_MMAP_RE = re.compile(r"^repro_csr_(\d+)_.*$")
_SPILL_RE = re.compile(r"^repro_spill_(\d+)_.*$")
_SHM_DIR = Path("/dev/shm")

_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _resolve_backend(backend: str | None) -> str:
    if backend is None:
        backend = os.environ.get("REPRO_SHARED_BACKEND", "").strip() or "auto"
    backend = backend.lower()
    if backend not in ("auto", "shm", "mmap"):
        raise ValueError(f"unknown shared backend {backend!r}")
    return backend


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    On Python >= 3.13 ``track=False`` does this directly; earlier
    versions register every attach with the resource tracker, which
    would try to unlink the (already parent-owned) segment at exit and
    warn — so the registration is undone right away.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - version-dependent branch
        shm = shared_memory.SharedMemory(name=name)
        try:
            import multiprocessing

            if multiprocessing.get_start_method(allow_none=True) != "fork":
                # Forked workers share the parent's tracker, where the
                # owner's registration already covers cleanup; spawned
                # workers have their own tracker, which would wrongly
                # unlink the parent-owned segment at exit unless the
                # attach registration is undone.
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return shm


class SharedCSR:
    """One read-only shared copy of a graph's CSR arrays.

    Create with :meth:`from_graph` in the parent; ship
    :meth:`descriptor` (a small picklable dict) to workers; workers
    call :meth:`attach` (usually via :func:`attached_graph`, which
    caches one attachment per process) and :meth:`graph` for zero-copy
    views.  The parent should call :meth:`unlink` when done — a
    finalizer does it anyway if forgotten or on crash.
    """

    def __init__(
        self,
        *,
        backend: str,
        name: str,
        layout: dict[str, tuple[str, tuple[int, ...], int]],
        total: int,
        buf,
        shm: shared_memory.SharedMemory | None,
        owner: bool,
    ) -> None:
        self._backend = backend
        self._name = name
        self._layout = layout
        self._total = total
        self._buf = buf
        self._shm = shm
        self._owner = owner
        self._closed = False
        if owner:
            self._finalizer = weakref.finalize(
                self, _cleanup, backend, name, shm
            )
        else:
            self._finalizer = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        g: CSRGraph,
        *,
        backend: str | None = None,
        prefix: str | None = None,
    ) -> "SharedCSR":
        """Pack ``g``'s CSR arrays into one new shared segment.

        ``prefix`` overrides the mmap spill-file prefix (the hierarchy
        spiller uses ``repro_spill_``); it must be one of the prefixes
        the stale sweep recognises.
        """
        backend = _resolve_backend(backend)
        arrays = {
            "xadj": g.xadj,
            "adjncy": g.adjncy,
            "vwgt": g.vwgt,
            "adjwgt": g.adjwgt,
        }
        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        offset = 0
        for key, arr in arrays.items():
            offset = _aligned(offset)
            layout[key] = (arr.dtype.str, arr.shape, offset)
            offset += arr.nbytes
        total = max(1, offset)

        _sweep_once()
        shm: shared_memory.SharedMemory | None = None
        if backend in ("auto", "shm"):
            try:
                shm = _create_shm(total)
                buf = shm.buf
                name = shm.name
                backend = "shm"
            except OSError:
                if backend == "shm":
                    raise
                backend = "mmap"
        if backend == "mmap":
            fd, path = tempfile.mkstemp(
                prefix=f"{prefix or _MMAP_PREFIX}{os.getpid()}_",
                suffix=".bin",
            )
            os.close(fd)
            with open(path, "wb") as fh:
                fh.truncate(total)
            buf = np.memmap(path, dtype=np.uint8, mode="r+", shape=(total,))
            name = path

        out = cls(
            backend=backend,
            name=name,
            layout=layout,
            total=total,
            buf=buf,
            shm=shm,
            owner=True,
        )
        for key, arr in arrays.items():
            out._view(key)[...] = arr
        if backend == "mmap":
            buf.flush()
        return out

    @classmethod
    def attach(cls, desc: dict) -> "SharedCSR":
        """Attach to an existing segment from its descriptor."""
        backend = desc["backend"]
        name = desc["name"]
        layout = {
            k: (d, tuple(s), o) for k, (d, s, o) in desc["layout"].items()
        }
        if backend == "shm":
            shm = _attach_shm(name)
            buf = shm.buf
        else:
            shm = None
            buf = np.memmap(
                name, dtype=np.uint8, mode="r", shape=(desc["total"],)
            )
        return cls(
            backend=backend,
            name=name,
            layout=layout,
            total=desc["total"],
            buf=buf,
            shm=shm,
            owner=False,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _view(self, key: str) -> np.ndarray:
        dtype, shape, offset = self._layout[key]
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        arr = np.frombuffer(
            self._buf, dtype=np.dtype(dtype), count=count, offset=offset
        )
        return arr.reshape(shape)

    def graph(self) -> CSRGraph:
        """Zero-copy :class:`CSRGraph` over the shared arrays.

        The views are served straight from the segment; treat the
        graph as read-only (CSRGraph never mutates its arrays).
        """
        return CSRGraph(
            self._view("xadj"),
            self._view("adjncy"),
            vwgt=self._view("vwgt"),
            adjwgt=self._view("adjwgt"),
        )

    def descriptor(self) -> dict:
        """Small picklable handle workers use to :meth:`attach`."""
        return {
            "backend": self._backend,
            "name": self._name,
            "total": self._total,
            "layout": {
                k: (d, list(s), o) for k, (d, s, o) in self._layout.items()
            },
        }

    @property
    def nbytes(self) -> int:
        return self._total

    @property
    def name(self) -> str:
        return self._name

    @property
    def backend(self) -> str:
        return self._backend

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (does not remove the segment)."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        if self._shm is not None:
            try:
                self._shm.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass

    def unlink(self) -> None:
        """Remove the segment (owner only; idempotent)."""
        self.close()
        if self._finalizer is not None:
            # Runs _cleanup exactly once, even if the finalizer would
            # also fire later at gc/exit.
            self._finalizer()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()


def _cleanup(
    backend: str, name: str, shm: shared_memory.SharedMemory | None
) -> None:
    """Owner-side segment removal; must never raise (finalizer)."""
    if backend == "shm" and shm is not None:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
    elif backend == "mmap":
        try:
            os.unlink(name)
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Stale-segment hygiene
# ----------------------------------------------------------------------
def _create_shm(total: int) -> shared_memory.SharedMemory:
    """Create a segment with a pid-keyed name (collision-retried)."""
    for _ in range(16):
        token = os.urandom(4).hex()
        name = f"{_SHM_PREFIX}{os.getpid()}-{token}"
        try:
            return shared_memory.SharedMemory(
                create=True, size=total, name=name
            )
        except FileExistsError:  # pragma: no cover - 2^-32 per round
            continue
    # Pathological collision streak: let the stdlib pick a random name
    # (such a segment is invisible to the sweep, but still finalized).
    return shared_memory.SharedMemory(create=True, size=total)


def _pid_alive(pid: int) -> bool:
    from ..pipeline.locking import pid_alive

    return pid_alive(pid)


def stale_segments() -> list[Path]:
    """Shared segments whose owning process is dead.

    Scans ``/dev/shm`` for ``repro-shm-<pid>-*`` entries and the
    tempdir for ``repro_csr_<pid>_*`` shared-graph spill files and
    ``repro_spill_<pid>_*`` hierarchy spill files; an entry is stale
    when its embedded pid no longer exists.  Only this naming scheme is
    considered — foreign segments are never touched.
    """
    stale: list[Path] = []
    tmp = Path(tempfile.gettempdir())
    for directory, pattern in (
        (_SHM_DIR, _SHM_RE),
        (tmp, _MMAP_RE),
        (tmp, _SPILL_RE),
    ):
        try:
            entries = list(directory.iterdir())
        except OSError:
            continue
        for path in entries:
            match = pattern.match(path.name)
            if match is None:
                continue
            try:
                pid = int(match.group(1))
            except ValueError:  # pragma: no cover - regex guarantees
                continue
            if pid != os.getpid() and not _pid_alive(pid):
                stale.append(path)
    return stale


def sweep_stale_segments(*, remove: bool = True) -> list[str]:
    """Reclaim dead-pid segments; returns the affected names.

    With ``remove=False`` (``repro gc --dry-run``) only reports.
    Removal races are benign: a segment deleted by a concurrent sweep
    is simply skipped.
    """
    swept: list[str] = []
    for path in stale_segments():
        if remove:
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            except OSError:  # pragma: no cover - permissions
                continue
        swept.append(path.name)
    return swept


_SWEPT = False


def _sweep_once() -> None:
    """One startup sweep per process, before the first segment.

    Gated by ``REPRO_SHM_SWEEP=0`` for setups where another live
    process manages segments this scan cannot attribute (e.g. a pid
    namespace boundary makes owner pids unresolvable).
    """
    global _SWEPT
    if _SWEPT or os.environ.get("REPRO_SHM_SWEEP", "1") == "0":
        _SWEPT = True
        return
    _SWEPT = True
    swept = sweep_stale_segments()
    if swept:
        warnings.warn(
            f"reclaimed {len(swept)} stale shared-memory segment(s) "
            f"left by dead processes: {', '.join(sorted(swept)[:4])}"
            + ("..." if len(swept) > 4 else ""),
            RuntimeWarning,
            stacklevel=3,
        )


# ----------------------------------------------------------------------
# Per-process attachment cache (worker side)
# ----------------------------------------------------------------------
#: Segments this process has attached, keyed by segment name.  A worker
#: serves every task of a partitioning run from one attachment.
_ATTACHED: dict[str, tuple[SharedCSR, CSRGraph]] = {}


def attached_graph(desc: dict) -> tuple[CSRGraph, bool]:
    """Worker-side accessor: the shared graph for ``desc``.

    Returns ``(graph, fresh)`` where ``fresh`` is True when this call
    performed the actual attach (first task in this process) — the
    diagnostics recursive bisection uses to prove workers attach
    rather than receive pickled graphs.
    """
    key = desc["name"]
    ent = _ATTACHED.get(key)
    if ent is not None:
        return ent[1], False
    scsr = SharedCSR.attach(desc)
    g = scsr.graph()
    _ATTACHED[key] = (scsr, g)
    return g, True


def attachment_count() -> int:
    """Number of distinct segments attached by this process."""
    return len(_ATTACHED)
