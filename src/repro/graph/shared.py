"""Shared-memory CSR graph storage for multi-process partitioning.

Parallel recursive bisection dispatches independent subtree nodes to
workers.  With a process pool, pickling the whole :class:`CSRGraph`
into every task would copy O(n + m) bytes per split — at paper scale
(1M+ cells) that dwarfs the partitioning work itself.  Instead the
parent packs the four CSR arrays (``xadj/adjncy/vwgt/adjwgt``) into a
single shared segment once; tasks carry only a tiny picklable
*descriptor*, and each worker process attaches the segment one time
and reconstructs zero-copy read-only array views.

Two backends provide the segment:

* ``"shm"`` — POSIX shared memory via
  :class:`multiprocessing.shared_memory.SharedMemory` (the default);
* ``"mmap"`` — a temporary file mapped with :class:`numpy.memmap`,
  used as a spill path when ``/dev/shm`` is unavailable or too small
  (or when forced with ``REPRO_SHARED_BACKEND=mmap``).

Cleanup is defensive: the parent object unlinks its segment via
``weakref.finalize`` (which also runs at interpreter exit), so worker
crashes cannot leak ``/dev/shm`` entries — only the parent owns the
segment's lifetime.
"""

from __future__ import annotations

import os
import tempfile
import weakref
from multiprocessing import shared_memory

import numpy as np

from .csr import CSRGraph

__all__ = ["SharedCSR", "attached_graph", "attachment_count"]

_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _resolve_backend(backend: str | None) -> str:
    if backend is None:
        backend = os.environ.get("REPRO_SHARED_BACKEND", "").strip() or "auto"
    backend = backend.lower()
    if backend not in ("auto", "shm", "mmap"):
        raise ValueError(f"unknown shared backend {backend!r}")
    return backend


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    On Python >= 3.13 ``track=False`` does this directly; earlier
    versions register every attach with the resource tracker, which
    would try to unlink the (already parent-owned) segment at exit and
    warn — so the registration is undone right away.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - version-dependent branch
        shm = shared_memory.SharedMemory(name=name)
        try:
            import multiprocessing

            if multiprocessing.get_start_method(allow_none=True) != "fork":
                # Forked workers share the parent's tracker, where the
                # owner's registration already covers cleanup; spawned
                # workers have their own tracker, which would wrongly
                # unlink the parent-owned segment at exit unless the
                # attach registration is undone.
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return shm


class SharedCSR:
    """One read-only shared copy of a graph's CSR arrays.

    Create with :meth:`from_graph` in the parent; ship
    :meth:`descriptor` (a small picklable dict) to workers; workers
    call :meth:`attach` (usually via :func:`attached_graph`, which
    caches one attachment per process) and :meth:`graph` for zero-copy
    views.  The parent should call :meth:`unlink` when done — a
    finalizer does it anyway if forgotten or on crash.
    """

    def __init__(
        self,
        *,
        backend: str,
        name: str,
        layout: dict[str, tuple[str, tuple[int, ...], int]],
        total: int,
        buf,
        shm: shared_memory.SharedMemory | None,
        owner: bool,
    ) -> None:
        self._backend = backend
        self._name = name
        self._layout = layout
        self._total = total
        self._buf = buf
        self._shm = shm
        self._owner = owner
        self._closed = False
        if owner:
            self._finalizer = weakref.finalize(
                self, _cleanup, backend, name, shm
            )
        else:
            self._finalizer = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, g: CSRGraph, *, backend: str | None = None
    ) -> "SharedCSR":
        """Pack ``g``'s CSR arrays into one new shared segment."""
        backend = _resolve_backend(backend)
        arrays = {
            "xadj": g.xadj,
            "adjncy": g.adjncy,
            "vwgt": g.vwgt,
            "adjwgt": g.adjwgt,
        }
        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        offset = 0
        for key, arr in arrays.items():
            offset = _aligned(offset)
            layout[key] = (arr.dtype.str, arr.shape, offset)
            offset += arr.nbytes
        total = max(1, offset)

        shm: shared_memory.SharedMemory | None = None
        if backend in ("auto", "shm"):
            try:
                shm = shared_memory.SharedMemory(create=True, size=total)
                buf = shm.buf
                name = shm.name
                backend = "shm"
            except OSError:
                if backend == "shm":
                    raise
                backend = "mmap"
        if backend == "mmap":
            fd, path = tempfile.mkstemp(prefix="repro_csr_", suffix=".bin")
            os.close(fd)
            with open(path, "wb") as fh:
                fh.truncate(total)
            buf = np.memmap(path, dtype=np.uint8, mode="r+", shape=(total,))
            name = path

        out = cls(
            backend=backend,
            name=name,
            layout=layout,
            total=total,
            buf=buf,
            shm=shm,
            owner=True,
        )
        for key, arr in arrays.items():
            out._view(key)[...] = arr
        if backend == "mmap":
            buf.flush()
        return out

    @classmethod
    def attach(cls, desc: dict) -> "SharedCSR":
        """Attach to an existing segment from its descriptor."""
        backend = desc["backend"]
        name = desc["name"]
        layout = {
            k: (d, tuple(s), o) for k, (d, s, o) in desc["layout"].items()
        }
        if backend == "shm":
            shm = _attach_shm(name)
            buf = shm.buf
        else:
            shm = None
            buf = np.memmap(
                name, dtype=np.uint8, mode="r", shape=(desc["total"],)
            )
        return cls(
            backend=backend,
            name=name,
            layout=layout,
            total=desc["total"],
            buf=buf,
            shm=shm,
            owner=False,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _view(self, key: str) -> np.ndarray:
        dtype, shape, offset = self._layout[key]
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        arr = np.frombuffer(
            self._buf, dtype=np.dtype(dtype), count=count, offset=offset
        )
        return arr.reshape(shape)

    def graph(self) -> CSRGraph:
        """Zero-copy :class:`CSRGraph` over the shared arrays.

        The views are served straight from the segment; treat the
        graph as read-only (CSRGraph never mutates its arrays).
        """
        return CSRGraph(
            self._view("xadj"),
            self._view("adjncy"),
            vwgt=self._view("vwgt"),
            adjwgt=self._view("adjwgt"),
        )

    def descriptor(self) -> dict:
        """Small picklable handle workers use to :meth:`attach`."""
        return {
            "backend": self._backend,
            "name": self._name,
            "total": self._total,
            "layout": {
                k: (d, list(s), o) for k, (d, s, o) in self._layout.items()
            },
        }

    @property
    def nbytes(self) -> int:
        return self._total

    @property
    def name(self) -> str:
        return self._name

    @property
    def backend(self) -> str:
        return self._backend

    # ------------------------------------------------------------------
    # Lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (does not remove the segment)."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        if self._shm is not None:
            try:
                self._shm.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass

    def unlink(self) -> None:
        """Remove the segment (owner only; idempotent)."""
        self.close()
        if self._finalizer is not None:
            # Runs _cleanup exactly once, even if the finalizer would
            # also fire later at gc/exit.
            self._finalizer()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()


def _cleanup(
    backend: str, name: str, shm: shared_memory.SharedMemory | None
) -> None:
    """Owner-side segment removal; must never raise (finalizer)."""
    if backend == "shm" and shm is not None:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass
    elif backend == "mmap":
        try:
            os.unlink(name)
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Per-process attachment cache (worker side)
# ----------------------------------------------------------------------
#: Segments this process has attached, keyed by segment name.  A worker
#: serves every task of a partitioning run from one attachment.
_ATTACHED: dict[str, tuple[SharedCSR, CSRGraph]] = {}


def attached_graph(desc: dict) -> tuple[CSRGraph, bool]:
    """Worker-side accessor: the shared graph for ``desc``.

    Returns ``(graph, fresh)`` where ``fresh`` is True when this call
    performed the actual attach (first task in this process) — the
    diagnostics recursive bisection uses to prove workers attach
    rather than receive pickled graphs.
    """
    key = desc["name"]
    ent = _ATTACHED.get(key)
    if ent is not None:
        return ent[1], False
    scsr = SharedCSR.attach(desc)
    g = scsr.graph()
    _ATTACHED[key] = (scsr, g)
    return g, True


def attachment_count() -> int:
    """Number of distinct segments attached by this process."""
    return len(_ATTACHED)
