"""Seed (pre-optimization) implementations of the partitioner hot paths.

The vectorized heavy-edge matching in :mod:`repro.graph.coarsen` and the
incremental-gain FM in :mod:`repro.graph.refine` replaced per-vertex
Python loops.  The original loops are kept here verbatim for two
purposes:

* **quality-parity oracles** — tests patch these into the multilevel
  pipeline and assert the fast paths produce edge cuts and imbalance
  statistically indistinguishable from the seed;
* **perf tracking** — the benchmark harness
  (:mod:`repro.perf.partitioner`) times fast vs. reference on the same
  inputs and records the speedup in ``BENCH_partitioner.json``.

These functions are *not* used by the library at runtime.
"""

from __future__ import annotations

import heapq

import numpy as np

from .csr import CSRGraph
from .metrics import edge_cut

__all__ = ["heavy_edge_matching_ref", "fm_refine_ref"]


def heavy_edge_matching_ref(
    g: CSRGraph,
    rng: np.random.Generator,
    *,
    balance_constraints: bool = True,
) -> np.ndarray:
    """Seed heavy-edge matching: greedy per-vertex loop in random order.

    Same contract as :func:`repro.graph.coarsen.heavy_edge_matching`.
    """
    n = g.num_vertices
    match = np.arange(n, dtype=np.int64)
    order = rng.permutation(n)
    xadj, adjncy, adjwgt = g.xadj, g.adjncy, g.adjwgt
    multi = balance_constraints and g.ncon > 1
    vwgt = g.vwgt

    for v in order:
        if match[v] != v:
            continue
        best = -1
        best_w = -np.inf
        best_spread = np.inf
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if match[u] != u or u == v:
                continue
            w = adjwgt[idx]
            if multi:
                if w > best_w + 1e-12:
                    combined = vwgt[v] + vwgt[u]
                    best, best_w = u, w
                    best_spread = float(combined.max() - combined.min())
                elif w > best_w - 1e-12:
                    combined = vwgt[v] + vwgt[u]
                    spread = float(combined.max() - combined.min())
                    if spread < best_spread:
                        best, best_w, best_spread = u, w, spread
            else:
                if w > best_w:
                    best, best_w = u, w
        if best >= 0:
            match[v] = best
            match[best] = v
    return match


def _degrees_ref(g: CSRGraph, part: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Seed internal/external degree computation (``np.add.at`` based)."""
    n = g.num_vertices
    src = np.repeat(np.arange(n), np.diff(g.xadj))
    same = part[src] == part[g.adjncy]
    ideg = np.zeros(n, dtype=np.float64)
    edeg = np.zeros(n, dtype=np.float64)
    np.add.at(ideg, src[same], g.adjwgt[same])
    np.add.at(edeg, src[~same], g.adjwgt[~same])
    return ideg, edeg


def _inv_denoms_ref(
    total: np.ndarray, targets: np.ndarray
) -> tuple[list[float], list[float]]:
    out0, out1 = [], []
    for c in range(len(total)):
        d0 = total[c] * targets[0]
        d1 = total[c] * targets[1]
        out0.append(1.0 / d0 if d0 > 0 else 0.0)
        out1.append(1.0 / d1 if d1 > 0 else 0.0)
    return out0, out1


def _max_imb_ref(
    pw0: list[float], pw1: list[float], inv0: list[float], inv1: list[float]
) -> float:
    worst = 1.0
    for c in range(len(pw0)):
        r0 = pw0[c] * inv0[c]
        if r0 > worst:
            worst = r0
        r1 = pw1[c] * inv1[c]
        if r1 > worst:
            worst = r1
    return worst


def fm_refine_ref(
    g: CSRGraph,
    part: np.ndarray,
    *,
    target_frac: float = 0.5,
    imbalance_tol: float = 1.05,
    max_passes: int = 8,
    max_moves_per_pass: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Seed FM refinement: per-pass degree + edge-cut recomputation.

    Same contract as :func:`repro.graph.refine.fm_refine`.
    """
    n = g.num_vertices
    if n == 0:
        return part
    rng = rng or np.random.default_rng(0)
    total = g.total_vwgt()
    targets = np.array([target_frac, 1.0 - target_frac])
    inv0, inv1 = _inv_denoms_ref(total, targets)
    ncon = g.ncon
    vw_list: list = g.vwgt.tolist()

    pw_arr = np.zeros((2, ncon), dtype=np.float64)
    np.add.at(pw_arr, part, g.vwgt)
    pw = [list(pw_arr[0]), list(pw_arr[1])]
    inv = [inv0, inv1]

    if max_moves_per_pass is None:
        max_moves_per_pass = n
    early_stop = max(100, n // 64)

    xadj_l: list = g.xadj.tolist()
    adj_l: list = g.adjncy.tolist()
    awt_l: list = g.adjwgt.tolist()

    for _ in range(max_passes):
        ideg, edeg = _degrees_ref(g, part)
        boundary = np.flatnonzero(edeg > 0)
        if len(boundary) == 0:
            break
        stale: list = (edeg - ideg).tolist()
        locked = bytearray(n)
        part_l: list = part.tolist()
        heap: list[tuple[float, int, int]] = []
        counter = 0
        for v in boundary[rng.permutation(len(boundary))]:
            heap.append((-stale[v], counter, int(v)))
            counter += 1
        heapq.heapify(heap)

        cur_cut = edge_cut(g, part)
        best_cut = cur_cut
        best_imb = _max_imb_ref(pw[0], pw[1], inv0, inv1)
        moves: list[int] = []
        best_prefix = 0
        budget = max_moves_per_pass
        tol = imbalance_tol

        while heap and budget > 0:
            negg, _, v = heapq.heappop(heap)
            if locked[v] or -negg != stale[v]:
                continue
            src_p = part_l[v]
            dst_p = 1 - src_p
            vw = vw_list[v]
            pws, pwd = pw[src_p], pw[dst_p]
            invs, invd = inv[src_p], inv[dst_p]
            cur_imb = 1.0
            new_imb = 1.0
            for c in range(ncon):
                w = vw[c]
                rs = pws[c] * invs[c]
                rd = pwd[c] * invd[c]
                if rs > cur_imb:
                    cur_imb = rs
                if rd > cur_imb:
                    cur_imb = rd
                nrs = (pws[c] - w) * invs[c]
                nrd = (pwd[c] + w) * invd[c]
                if nrs > new_imb:
                    new_imb = nrs
                if nrd > new_imb:
                    new_imb = nrd
            if not (new_imb <= tol or new_imb < cur_imb - 1e-12):
                continue

            locked[v] = 1
            part_l[v] = dst_p
            for c in range(ncon):
                w = vw[c]
                pws[c] -= w
                pwd[c] += w
            cur_cut -= stale[v]
            moves.append(v)
            budget -= 1

            feasible_now = new_imb <= tol
            feasible_best = best_imb <= tol
            better = (
                (feasible_now and not feasible_best)
                or (
                    feasible_now == feasible_best
                    and cur_cut < best_cut - 1e-12
                )
                or (
                    not feasible_now
                    and not feasible_best
                    and new_imb < best_imb - 1e-12
                )
            )
            if better:
                best_cut = cur_cut
                best_imb = new_imb
                best_prefix = len(moves)
            elif len(moves) - best_prefix > early_stop:
                break

            for idx in range(xadj_l[v], xadj_l[v + 1]):
                u = adj_l[idx]
                if locked[u]:
                    continue
                w = awt_l[idx]
                if part_l[u] == dst_p:
                    stale[u] -= 2.0 * w
                else:
                    stale[u] += 2.0 * w
                heapq.heappush(heap, (-stale[u], counter, u))
                counter += 1

        improved = best_prefix > 0
        for v in moves[best_prefix:]:
            src_p = part_l[v]
            dst_p = 1 - src_p
            part_l[v] = dst_p
            vw = vw_list[v]
            for c in range(ncon):
                w = vw[c]
                pw[src_p][c] -= w
                pw[dst_p][c] += w
        part[:] = part_l
        if not improved:
            break
    return part
