"""A small StarPU-like threaded task runtime: dependency-driven
execution of the task graph on real worker threads, with the solver
kernels as task bodies, hardened with per-task retry, a hang watchdog
and partial-failure health reporting (see :mod:`repro.resilience`)."""

from .executor import (
    ExecutionHealth,
    ExecutionResult,
    RetryPolicy,
    ThreadedExecutor,
)
from .parallel_solver import ParallelSolverRun, run_iteration_threaded

__all__ = [
    "ThreadedExecutor",
    "ExecutionResult",
    "ExecutionHealth",
    "RetryPolicy",
    "run_iteration_threaded",
    "ParallelSolverRun",
]
