"""A small StarPU-like threaded task runtime: dependency-driven
execution of the task graph on real worker threads, with the solver
kernels as task bodies."""

from .executor import ExecutionResult, ThreadedExecutor
from .parallel_solver import ParallelSolverRun, run_iteration_threaded

__all__ = [
    "ThreadedExecutor",
    "ExecutionResult",
    "run_iteration_threaded",
    "ParallelSolverRun",
]
