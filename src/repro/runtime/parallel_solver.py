"""Thread-parallel execution of the finite-volume task graph.

Wraps :class:`~repro.solver.runner.TaskDistributedSolver`'s kernels for
the :class:`~repro.runtime.executor.ThreadedExecutor`:

* flux *computation* (the heavy, GIL-releasing part) runs fully
  concurrently;
* accumulator *deposits* are serialized by a lock — two face tasks
  from different domains may deposit into the same boundary cell, and
  the dependency structure intentionally leaves commutative additions
  unordered (they commute exactly, FLUSEPA does the same with StarPU's
  data reductions);
* cell updates need no lock: Algorithm 1 gives every cell task a
  disjoint cell set, and its read of the accumulator is ordered after
  all deposits by the task dependencies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..mesh.structures import Mesh
from ..partitioning.decomposition import DomainDecomposition
from ..resilience.faults import FaultPlan
from ..solver.euler import FLUXES, physical_flux
from ..solver.lts import LTSState
from ..solver.runner import TaskDistributedSolver
from ..taskgraph.task import ObjectType
from .executor import ExecutionResult, RetryPolicy, ThreadedExecutor

__all__ = ["ParallelSolverRun", "run_iteration_threaded"]


@dataclass
class ParallelSolverRun:
    """Result of a threaded solver iteration.

    Attributes
    ----------
    result:
        The executor's trace and elapsed wall-clock.
    state:
        The advanced solver state (identical, up to float addition
        order, to a serial run).
    """

    result: ExecutionResult
    state: LTSState


def _face_task_fn(
    mesh: Mesh,
    state: LTSState,
    faces: np.ndarray,
    dt_face: float,
    flux_name: str,
    deposit_lock: threading.Lock,
    stage: int = 1,
) -> None:
    if len(faces) == 0:
        return
    src = state.U if stage == 1 else state.Ustar
    acc = state.acc if stage == 1 else state.acc2
    flux_fn = FLUXES[flux_name]
    a = mesh.face_cells[faces, 0]
    b = mesh.face_cells[faces, 1]
    nx = mesh.face_normal[faces, 0]
    ny = mesh.face_normal[faces, 1]
    area = mesh.face_area[faces]
    interior = b >= 0
    UL = src[a]
    UR = UL.copy()
    UR[interior] = src[b[interior]]
    F = np.empty_like(UL)
    if interior.any():
        F[interior] = flux_fn(
            UL[interior], UR[interior], nx[interior], ny[interior]
        )
    bnd = ~interior
    if bnd.any():
        F[bnd] = physical_flux(UL[bnd], nx[bnd], ny[bnd])
    w = F * (area * dt_face)[:, None]
    # Deposits may touch cells shared with other concurrent face
    # tasks; additions commute but are not atomic → serialize them.
    with deposit_lock:
        np.add.at(acc, a, -w)
        if interior.any():
            np.add.at(acc, b[interior], w[interior])


def run_iteration_threaded(
    solver: TaskDistributedSolver,
    state: LTSState,
    *,
    num_processes: int | None = None,
    cores_per_process: int = 2,
    fault_plan: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    watchdog: float | None = None,
) -> ParallelSolverRun:
    """Run one solver iteration on real worker threads.

    Parameters
    ----------
    solver:
        A prepared :class:`TaskDistributedSolver` (its DAG and object
        sets are reused).
    num_processes:
        Worker groups; defaults to the decomposition's process count.
    cores_per_process:
        Threads per group.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`; the task
        bodies are wrapped with its injected faults (NaN poisoning
        targets the stage-1 accumulators).
    retry, watchdog:
        Forwarded to :class:`~repro.runtime.executor.ThreadedExecutor`.

    Returns
    -------
    :class:`ParallelSolverRun` with the real execution trace.
    """
    dag = solver.dag
    mesh = solver.mesh
    if num_processes is None:
        num_processes = solver.decomp.num_processes
    deposit_lock = threading.Lock()
    t = dag.tasks

    heun = getattr(solver, "scheme", "euler") == "heun"

    def task_fn(i: int) -> None:
        objs = solver._task_objects[i]
        stage = int(t.stage[i])
        if t.obj_type[i] == int(ObjectType.FACE):
            dt_face = float(1 << int(t.phase_tau[i])) * solver.dt_min
            _face_task_fn(
                mesh, state, objs, dt_face, solver.flux, deposit_lock,
                stage=stage,
            )
        elif not heun:
            state.U[objs] += state.acc[objs] / mesh.cell_volumes[objs, None]
            state.acc[objs] = 0.0
        elif stage == 1:
            state.Ustar[objs] = (
                state.U[objs] + state.acc[objs] / mesh.cell_volumes[objs, None]
            )
        else:
            state.U[objs] += (
                0.5
                * (state.acc[objs] + state.acc2[objs])
                / mesh.cell_volumes[objs, None]
            )
            state.acc[objs] = 0.0
            state.acc2[objs] = 0.0

    fn = task_fn
    if fault_plan is not None:
        fn = fault_plan.wrap(
            task_fn,
            phase_of=t.phase_tau,
            domain_of=t.domain,
            poison_targets=(state.acc,),
        )
    executor = ThreadedExecutor(
        dag, num_processes, cores_per_process, fn,
        retry=retry, watchdog=watchdog,
    )
    result = executor.run()
    return ParallelSolverRun(result=result, state=state)
