"""A StarPU-like threaded task executor.

FLUSEPA delegates task scheduling to StarPU; FLUSIM only *simulates*
schedules.  This module closes the loop with a real (if small) runtime:
the task graph is executed on actual worker threads, with the paper's
placement rule — every task runs inside the worker group ("process")
that owns its extraction domain — and dependencies enforced by
in-degree countdown.  NumPy kernels release the GIL for the bulk of
their work, so multi-worker runs genuinely overlap.

The executor is hardened for long campaigns:

* a :class:`RetryPolicy` re-runs tasks that fail with a *transient*
  error (exponential backoff, bounded attempts);
* a watchdog deadline converts a hung task into a named
  :class:`~repro.resilience.errors.TaskTimeoutError` instead of a
  silent stall (the hung daemon thread is abandoned — Python threads
  cannot be killed);
* with ``fail_fast=False``, a permanently failed task marks itself
  failed, its transitive dependents are *skipped*, and the execution
  completes with the damage reported in
  :attr:`ExecutionResult.health` instead of raising.

Retry safety: a retried task re-runs its body from the top, so task
bodies must not have published partial effects before failing.  The
solver kernels qualify — each FACE task has a single deposit point at
the end of its body — and injected transient faults
(:class:`~repro.resilience.faults.FaultPlan`) fire *before* the body
by construction.

This powers the strongest form of the production experiment: the
SC_OC/MC_TL comparison measured as *real parallel wall-clock*, not a
replay (see ``repro.experiments.runtime_validation``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..flusim.trace import Trace
from ..resilience.errors import TaskTimeoutError, TransientError
from ..taskgraph.dag import TaskDAG

__all__ = [
    "RetryPolicy",
    "ExecutionHealth",
    "ExecutionResult",
    "ThreadedExecutor",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor handles task failures.

    Parameters
    ----------
    max_retries:
        Retry budget *per task* (0 = never retry).
    backoff:
        Base backoff in seconds; retry ``k`` sleeps
        ``backoff * 2**(k-1)`` (capped at ``backoff_cap``) before
        re-running.
    retry_on:
        Exception classes considered transient.  Anything else — or a
        task that exhausts its budget — is a permanent failure.
    fail_fast:
        ``True`` (default): the first permanent failure aborts the
        execution and ``run()`` raises it (the pre-resilience
        semantics).  ``False``: the task is marked failed, its
        transitive dependents are skipped, and the execution completes
        with the damage in :attr:`ExecutionResult.health`.
    """

    max_retries: int = 2
    backoff: float = 0.0
    backoff_cap: float = 1.0
    retry_on: tuple[type[BaseException], ...] = (TransientError,)
    fail_fast: bool = True

    def delay(self, retry: int) -> float:
        """Backoff before the ``retry``-th retry (1-based)."""
        if self.backoff <= 0:
            return 0.0
        return min(self.backoff * 2.0 ** (retry - 1), self.backoff_cap)


@dataclass
class ExecutionHealth:
    """What it cost to (try to) complete an execution.

    ``wasted_seconds`` is per process: time burnt on failed attempts
    (including the hung time of a timed-out task), excluding backoff
    sleeps.
    """

    retries: int = 0
    failed: list[int] = field(default_factory=list)
    skipped: list[int] = field(default_factory=list)
    timed_out: list[int] = field(default_factory=list)
    wasted_seconds: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    errors: dict[int, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """No task failed, was skipped, or timed out."""
        return not (self.failed or self.skipped or self.timed_out)

    @property
    def total_wasted(self) -> float:
        """Total wasted seconds across processes."""
        return float(self.wasted_seconds.sum())

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"retries={self.retries} failed={len(self.failed)} "
            f"skipped={len(self.skipped)} timed_out={len(self.timed_out)} "
            f"wasted={self.total_wasted:.3f}s"
        )


@dataclass
class ExecutionResult:
    """Outcome of a threaded execution.

    Attributes
    ----------
    trace:
        Per-task placement/timing (seconds since execution start),
        compatible with every FLUSIM analysis helper.  Failed/skipped
        tasks (``fail_fast=False`` only) have zeroed entries.
    elapsed:
        Wall-clock of the whole execution.
    health:
        Retry/failure accounting for the run.
    """

    trace: Trace
    elapsed: float
    health: ExecutionHealth = field(default_factory=ExecutionHealth)


class ThreadedExecutor:
    """Execute a :class:`TaskDAG` on worker threads.

    Parameters
    ----------
    dag:
        The task graph; ``dag.tasks.process`` assigns each task to a
        worker group.
    num_processes:
        Number of worker groups (emulated MPI processes).
    cores_per_process:
        Worker threads per group.
    task_fn:
        ``task_fn(task_id)`` runs the task's body; it is called from
        worker threads, so it must only touch disjoint data per task
        (which Algorithm 1's dependency structure guarantees for the
        solver kernels).
    retry:
        Optional :class:`RetryPolicy`; ``None`` keeps the historical
        fail-fast, no-retry behaviour.
    watchdog:
        Optional per-task deadline in seconds.  A task running longer
        aborts the execution with a
        :class:`~repro.resilience.errors.TaskTimeoutError`; its worker
        thread is abandoned (daemon), so the caller must treat the
        shared state as suspect and roll back (see
        :class:`~repro.resilience.guards.StateSnapshot`).
    """

    def __init__(
        self,
        dag: TaskDAG,
        num_processes: int,
        cores_per_process: int,
        task_fn: Callable[[int], None],
        *,
        retry: RetryPolicy | None = None,
        watchdog: float | None = None,
    ) -> None:
        if num_processes < 1 or cores_per_process < 1:
            raise ValueError("need at least one process and one core")
        if watchdog is not None and watchdog <= 0:
            raise ValueError("watchdog deadline must be positive")
        tproc = dag.tasks.process
        if dag.num_tasks and (
            tproc.min() < 0 or tproc.max() >= num_processes
        ):
            raise ValueError("task process out of range")
        self.dag = dag
        self.num_processes = num_processes
        self.cores_per_process = cores_per_process
        self.task_fn = task_fn
        self.retry = retry
        self.watchdog = watchdog

    def run(self) -> ExecutionResult:
        """Execute every task once, respecting dependencies.

        Returns an :class:`ExecutionResult`.  Raises the first
        permanent worker failure unless ``retry.fail_fast`` is
        ``False`` (a watchdog timeout always raises — the hung thread
        cannot be reclaimed, so the execution cannot be trusted).
        """
        dag = self.dag
        T = dag.num_tasks
        indeg = dag.in_degrees().tolist()
        sx, sa = dag.successors_csr()
        tproc = dag.tasks.process
        policy = self.retry

        lock = threading.Lock()
        conditions = [threading.Condition(lock) for _ in range(self.num_processes)]
        queues: list[deque[int]] = [deque() for _ in range(self.num_processes)]
        remaining = T
        failure: list[BaseException] = []

        start = np.zeros(T, dtype=np.float64)
        end = np.zeros(T, dtype=np.float64)
        worker_of = np.zeros(T, dtype=np.int32)

        # Health accounting (all mutated under ``lock``).
        attempts = [0] * T
        poisoned = bytearray(T)  # transitively downstream of a failure
        retries = 0
        failed: list[int] = []
        skipped: list[int] = []
        timed_out: list[int] = []
        errors: dict[int, str] = {}
        wasted = np.zeros(self.num_processes, dtype=np.float64)
        running: dict[tuple[int, int], tuple[int, float]] = {}
        stuck: set[tuple[int, int]] = set()

        for t in range(T):
            if indeg[t] == 0:
                queues[tproc[t]].append(t)

        t0 = time.perf_counter()

        def finish_locked(task: int, ok: bool) -> set[int]:
            """Retire ``task`` (lock held): decrement successors,
            cascade skips through failed subtrees, return the processes
            that received new ready work."""
            nonlocal remaining
            woken: set[int] = set()
            stack: list[tuple[int, bool]] = [(task, ok)]
            while stack:
                v, vok = stack.pop()
                remaining -= 1
                for u in sa[sx[v] : sx[v + 1]]:
                    u = int(u)
                    if not vok:
                        poisoned[u] = 1
                    indeg[u] -= 1
                    if indeg[u] == 0:
                        if poisoned[u]:
                            skipped.append(u)
                            stack.append((u, False))
                        else:
                            pu = int(tproc[u])
                            queues[pu].append(u)
                            woken.add(pu)
            return woken

        def notify_locked(p: int, woken: set[int]) -> None:
            if remaining <= 0:
                for c in conditions:
                    c.notify_all()
            else:
                for pu in woken:
                    conditions[pu].notify()
                conditions[p].notify()

        def worker(p: int, w: int) -> None:
            nonlocal remaining, retries
            cond = conditions[p]
            q = queues[p]
            key = (p, w)
            while True:
                with lock:
                    while not q and remaining > 0 and not failure:
                        cond.wait(timeout=0.05)
                    if failure or (remaining <= 0 and not q):
                        return
                    if not q:
                        continue
                    t = q.popleft()
                while True:  # attempt loop
                    ts = time.perf_counter() - t0
                    with lock:
                        if failure:
                            return
                        running[key] = (t, time.monotonic())
                    delay = 0.0
                    try:
                        self.task_fn(t)
                    except BaseException as exc:
                        burnt = time.perf_counter() - t0 - ts
                        with lock:
                            running.pop(key, None)
                            wasted[p] += burnt
                            if failure:
                                return  # execution already aborted
                            if (
                                policy is not None
                                and isinstance(exc, policy.retry_on)
                                and attempts[t] < policy.max_retries
                            ):
                                attempts[t] += 1
                                retries += 1
                                delay = policy.delay(attempts[t])
                            else:
                                errors[t] = f"{type(exc).__name__}: {exc}"
                                if policy is None or policy.fail_fast:
                                    failure.append(exc)
                                    for c in conditions:
                                        c.notify_all()
                                    return
                                failed.append(t)
                                woken = finish_locked(t, ok=False)
                                notify_locked(p, woken)
                                break  # on to the next queued task
                        if delay > 0.0:
                            time.sleep(delay)
                        continue  # retry the same task
                    te = time.perf_counter() - t0
                    with lock:
                        running.pop(key, None)
                        if failure:
                            return
                        start[t] = ts
                        end[t] = te
                        worker_of[t] = w
                        woken = finish_locked(t, ok=True)
                        notify_locked(p, woken)
                    break

        def watchdog_thread() -> None:
            deadline = float(self.watchdog)  # type: ignore[arg-type]
            interval = max(min(0.05, deadline / 4.0), 0.005)
            while True:
                with lock:
                    if remaining <= 0 or failure:
                        return
                    now = time.monotonic()
                    for (p, w), (t, since) in running.items():
                        if now - since > deadline:
                            exc = TaskTimeoutError(t, p, w, deadline)
                            timed_out.append(t)
                            errors[t] = str(exc)
                            wasted[p] += now - since
                            stuck.add((p, w))
                            failure.append(exc)
                            for c in conditions:
                                c.notify_all()
                            return
                time.sleep(interval)

        threads = {
            (p, w): threading.Thread(
                target=worker, args=(p, w), daemon=True,
                name=f"repro-worker-p{p}w{w}",
            )
            for p in range(self.num_processes)
            for w in range(self.cores_per_process)
        }
        for th in threads.values():
            th.start()
        monitor = None
        if self.watchdog is not None:
            monitor = threading.Thread(
                target=watchdog_thread, daemon=True, name="repro-watchdog"
            )
            monitor.start()
        for key, th in threads.items():
            while th.is_alive():
                th.join(timeout=0.1)
                with lock:
                    if key in stuck:
                        break  # abandon the hung daemon thread
        if monitor is not None:
            monitor.join()
        elapsed = time.perf_counter() - t0

        health = ExecutionHealth(
            retries=retries,
            failed=sorted(failed),
            skipped=sorted(skipped),
            timed_out=sorted(timed_out),
            wasted_seconds=wasted,
            errors=errors,
        )
        if failure:
            raise failure[0]
        if remaining != 0:
            raise RuntimeError(
                f"executor finished with {remaining} tasks pending "
                "(cyclic graph?)"
            )
        trace = Trace(
            process=tproc.astype(np.int32).copy(),
            worker=worker_of,
            start=start,
            end=end,
            num_processes=self.num_processes,
            cores_per_process=self.cores_per_process,
        )
        return ExecutionResult(trace=trace, elapsed=elapsed, health=health)
