"""A StarPU-like threaded task executor.

FLUSEPA delegates task scheduling to StarPU; FLUSIM only *simulates*
schedules.  This module closes the loop with a real (if small) runtime:
the task graph is executed on actual worker threads, with the paper's
placement rule — every task runs inside the worker group ("process")
that owns its extraction domain — and dependencies enforced by
in-degree countdown.  NumPy kernels release the GIL for the bulk of
their work, so multi-worker runs genuinely overlap.

This powers the strongest form of the production experiment: the
SC_OC/MC_TL comparison measured as *real parallel wall-clock*, not a
replay (see ``repro.experiments.runtime_validation``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..flusim.trace import Trace
from ..taskgraph.dag import TaskDAG

__all__ = ["ExecutionResult", "ThreadedExecutor"]


@dataclass
class ExecutionResult:
    """Outcome of a threaded execution.

    Attributes
    ----------
    trace:
        Per-task placement/timing (seconds since execution start),
        compatible with every FLUSIM analysis helper.
    elapsed:
        Wall-clock of the whole execution.
    """

    trace: Trace
    elapsed: float


class ThreadedExecutor:
    """Execute a :class:`TaskDAG` on worker threads.

    Parameters
    ----------
    dag:
        The task graph; ``dag.tasks.process`` assigns each task to a
        worker group.
    num_processes:
        Number of worker groups (emulated MPI processes).
    cores_per_process:
        Worker threads per group.
    task_fn:
        ``task_fn(task_id)`` runs the task's body; it is called from
        worker threads, so it must only touch disjoint data per task
        (which Algorithm 1's dependency structure guarantees for the
        solver kernels).
    """

    def __init__(
        self,
        dag: TaskDAG,
        num_processes: int,
        cores_per_process: int,
        task_fn: Callable[[int], None],
    ) -> None:
        if num_processes < 1 or cores_per_process < 1:
            raise ValueError("need at least one process and one core")
        tproc = dag.tasks.process
        if dag.num_tasks and (
            tproc.min() < 0 or tproc.max() >= num_processes
        ):
            raise ValueError("task process out of range")
        self.dag = dag
        self.num_processes = num_processes
        self.cores_per_process = cores_per_process
        self.task_fn = task_fn

    def run(self) -> ExecutionResult:
        """Execute every task once, respecting dependencies.

        Returns an :class:`ExecutionResult`; raises the first worker
        exception (execution is aborted, remaining tasks skipped).
        """
        dag = self.dag
        T = dag.num_tasks
        indeg = dag.in_degrees().tolist()
        sx, sa = dag.successors_csr()
        tproc = dag.tasks.process

        lock = threading.Lock()
        conditions = [threading.Condition(lock) for _ in range(self.num_processes)]
        queues: list[deque[int]] = [deque() for _ in range(self.num_processes)]
        remaining = T
        failure: list[BaseException] = []

        start = np.zeros(T, dtype=np.float64)
        end = np.zeros(T, dtype=np.float64)
        worker_of = np.zeros(T, dtype=np.int32)

        for t in range(T):
            if indeg[t] == 0:
                queues[tproc[t]].append(t)

        t0 = time.perf_counter()

        def worker(p: int, w: int) -> None:
            nonlocal remaining
            cond = conditions[p]
            q = queues[p]
            while True:
                with lock:
                    while not q and remaining > 0 and not failure:
                        cond.wait(timeout=0.05)
                    if failure or (remaining <= 0 and not q):
                        return
                    if not q:
                        continue
                    t = q.popleft()
                ts = time.perf_counter() - t0
                try:
                    self.task_fn(t)
                except BaseException as exc:  # propagate to caller
                    with lock:
                        failure.append(exc)
                        for c in conditions:
                            c.notify_all()
                    return
                te = time.perf_counter() - t0
                start[t] = ts
                end[t] = te
                worker_of[t] = w
                with lock:
                    remaining -= 1
                    woken: set[int] = set()
                    for u in sa[sx[t] : sx[t + 1]]:
                        indeg[u] -= 1
                        if indeg[u] == 0:
                            pu = int(tproc[u])
                            queues[pu].append(int(u))
                            woken.add(pu)
                    if remaining <= 0:
                        for c in conditions:
                            c.notify_all()
                    else:
                        for pu in woken:
                            conditions[pu].notify()
                        conditions[p].notify()

        threads = [
            threading.Thread(
                target=worker, args=(p, w), daemon=True,
                name=f"repro-worker-p{p}w{w}",
            )
            for p in range(self.num_processes)
            for w in range(self.cores_per_process)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        elapsed = time.perf_counter() - t0

        if failure:
            raise failure[0]
        if remaining != 0:
            raise RuntimeError(
                f"executor finished with {remaining} tasks pending "
                "(cyclic graph?)"
            )
        trace = Trace(
            process=tproc.astype(np.int32).copy(),
            worker=worker_of,
            start=start,
            end=end,
            num_processes=self.num_processes,
            cores_per_process=self.cores_per_process,
        )
        return ExecutionResult(trace=trace, elapsed=elapsed)
