"""Seeded adversarial input generators.

Each generator derives a pathological graph or mesh from a
:class:`numpy.random.Generator`, so a fuzzing seed reproduces its whole
case deterministically.  The catalogue deliberately targets the inputs
the paper's meshes never exercise: disconnected dual graphs, star/path
topologies, duplicate coordinates, one-cell-per-level skew, empty
temporal-level classes and heavy-tailed weights.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..graph.csr import CSRGraph, graph_from_edges
from ..mesh.generators import uniform_mesh
from ..mesh.structures import Mesh

__all__ = [
    "GraphCase",
    "MeshCase",
    "GRAPH_GENERATORS",
    "MESH_GENERATORS",
    "make_graph_case",
    "make_mesh_case",
]


@dataclass
class GraphCase:
    """A pathological graph plus the part counts to try on it."""

    name: str
    graph: CSRGraph
    nparts: tuple[int, ...]


@dataclass
class MeshCase:
    """A pathological mesh + temporal levels plus domain counts."""

    name: str
    mesh: Mesh
    tau: np.ndarray
    num_domains: tuple[int, ...]


# ----------------------------------------------------------------------
# graph cases
# ----------------------------------------------------------------------
def _random_vwgt(rng: np.random.Generator, n: int) -> np.ndarray | None:
    """Random vertex weights: none, unit, heavy-tailed, or
    multi-constraint indicator-ish columns."""
    style = rng.integers(4)
    if style == 0:
        return None
    if style == 1:
        return rng.integers(1, 10, size=n).astype(np.float64)
    if style == 2:
        # Heavy-tailed (Pareto): a few vertices dominate the total.
        return np.ceil(rng.pareto(1.1, size=n) + 1.0)
    ncon = int(rng.integers(2, 5))
    lev = rng.integers(0, ncon, size=n)
    out = np.zeros((n, ncon), dtype=np.float64)
    out[np.arange(n), lev] = 1.0
    return out


def _grid_graph(rng: np.random.Generator) -> GraphCase:
    nx = int(rng.integers(3, 12))
    ny = int(rng.integers(3, 12))
    idx = np.arange(nx * ny).reshape(nx, ny)
    edges = [
        (int(idx[i, j]), int(idx[i + 1, j]))
        for i in range(nx - 1)
        for j in range(ny)
    ] + [
        (int(idx[i, j]), int(idx[i, j + 1]))
        for i in range(nx)
        for j in range(ny - 1)
    ]
    g = graph_from_edges(nx * ny, edges, vwgt=_random_vwgt(rng, nx * ny))
    return GraphCase("grid", g, (2, int(rng.integers(3, 9))))


def _disconnected_graph(rng: np.random.Generator) -> GraphCase:
    ncomp = int(rng.integers(2, 6))
    edges: list[tuple[int, int]] = []
    n = 0
    for _ in range(ncomp):
        size = int(rng.integers(1, 15))
        edges.extend((n + i, n + i + 1) for i in range(size - 1))
        n += size
    g = graph_from_edges(n, edges, vwgt=_random_vwgt(rng, n))
    kmax = max(2, min(n, ncomp + 2))
    return GraphCase("disconnected", g, (2, kmax))


def _star_graph(rng: np.random.Generator) -> GraphCase:
    nleaves = int(rng.integers(3, 40))
    n = nleaves + 1
    edges = [(0, i) for i in range(1, n)]
    ewgt = None
    if rng.integers(2):
        ewgt = np.ceil(rng.pareto(1.0, size=nleaves) + 1.0)
    g = graph_from_edges(n, edges, vwgt=_random_vwgt(rng, n), ewgt=ewgt)
    return GraphCase("star", g, (2, min(4, n)))


def _path_graph(rng: np.random.Generator) -> GraphCase:
    n = int(rng.integers(2, 60))
    edges = [(i, i + 1) for i in range(n - 1)]
    g = graph_from_edges(n, edges, vwgt=_random_vwgt(rng, n))
    return GraphCase("path", g, (2, min(5, n)))


def _isolated_vertices(rng: np.random.Generator) -> GraphCase:
    """A clique plus fully isolated vertices (degree 0)."""
    k = int(rng.integers(3, 8))
    iso = int(rng.integers(1, 6))
    n = k + iso
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    g = graph_from_edges(n, edges, vwgt=_random_vwgt(rng, n))
    return GraphCase("isolated", g, (2, min(n, k)))


def _zero_column(rng: np.random.Generator) -> GraphCase:
    n = int(rng.integers(4, 30))
    edges = [(i, i + 1) for i in range(n - 1)]
    ncon = int(rng.integers(2, 4))
    vwgt = np.ones((n, ncon), dtype=np.float64)
    vwgt[:, int(rng.integers(ncon))] = 0.0  # an empty level class
    g = graph_from_edges(n, edges, vwgt=vwgt)
    return GraphCase("zero-column", g, (2, min(4, n)))


def _single_vertex(rng: np.random.Generator) -> GraphCase:
    g = graph_from_edges(1, [], vwgt=_random_vwgt(rng, 1))
    return GraphCase("single-vertex", g, (1, 2))


GRAPH_GENERATORS = (
    _grid_graph,
    _disconnected_graph,
    _star_graph,
    _path_graph,
    _isolated_vertices,
    _zero_column,
    _single_vertex,
)


def make_graph_case(rng: np.random.Generator) -> GraphCase:
    """Draw one pathological graph case."""
    gen = GRAPH_GENERATORS[int(rng.integers(len(GRAPH_GENERATORS)))]
    return gen(rng)


# ----------------------------------------------------------------------
# mesh cases
# ----------------------------------------------------------------------
def _base_mesh(rng: np.random.Generator) -> Mesh:
    return uniform_mesh(depth=int(rng.integers(2, 5)))


def _skewed_tau(rng: np.random.Generator) -> MeshCase:
    """One-cell-per-level skew: levels 1..L each own exactly one cell,
    level 0 owns the rest — the hardest MC_TL balance case."""
    mesh = _base_mesh(rng)
    n = mesh.num_cells
    nlev = int(rng.integers(2, min(6, n)))
    tau = np.zeros(n, dtype=np.int32)
    tau[rng.choice(n, size=nlev - 1, replace=False)] = np.arange(
        1, nlev, dtype=np.int32
    )
    return MeshCase("skewed-tau", mesh, tau, (2, 4))


def _uniform_tau(rng: np.random.Generator) -> MeshCase:
    """All cells on one temporal level: MC_TL degenerates to a single
    constraint column."""
    mesh = _base_mesh(rng)
    tau = np.full(mesh.num_cells, int(rng.integers(3)), dtype=np.int32)
    return MeshCase("uniform-tau", mesh, tau, (2, 4))


def _duplicate_coords(rng: np.random.Generator) -> MeshCase:
    """Many cells collapse onto identical coordinates (degenerate
    geometry for the SFC/RCB strategies and the SFC fallback)."""
    mesh = _base_mesh(rng)
    n = mesh.num_cells
    centers = mesh.cell_centers.copy()
    dup = rng.choice(n, size=max(2, n // 2), replace=False)
    centers[dup] = centers[dup[0]]
    mesh = replace(mesh, cell_centers=centers, _adjacency=None)
    tau = rng.integers(0, 3, size=n).astype(np.int32)
    return MeshCase("duplicate-coords", mesh, tau, (2, 4))


def _disconnected_mesh(rng: np.random.Generator) -> MeshCase:
    """Two meshes glued into one array with no connecting faces — the
    dual graph is disconnected."""
    m1 = _base_mesh(rng)
    m2 = _base_mesh(rng)
    shift = np.array([10.0, 0.0])
    n1 = m1.num_cells
    fc2 = m2.face_cells.copy()
    fc2[fc2 >= 0] += n1
    mesh = Mesh(
        cell_centers=np.vstack([m1.cell_centers, m2.cell_centers + shift]),
        cell_volumes=np.concatenate([m1.cell_volumes, m2.cell_volumes]),
        cell_depth=np.concatenate([m1.cell_depth, m2.cell_depth]),
        face_cells=np.vstack([m1.face_cells, fc2]),
        face_area=np.concatenate([m1.face_area, m2.face_area]),
        face_normal=np.vstack([m1.face_normal, m2.face_normal]),
        face_center=np.vstack([m1.face_center, m2.face_center + shift]),
    )
    tau = rng.integers(0, 3, size=mesh.num_cells).astype(np.int32)
    return MeshCase("disconnected-mesh", mesh, tau, (2, 4))


def _single_cell_mesh(rng: np.random.Generator) -> MeshCase:
    """One square cell with four boundary faces."""
    mesh = Mesh(
        cell_centers=np.array([[0.5, 0.5]]),
        cell_volumes=np.array([1.0]),
        cell_depth=np.zeros(1, dtype=np.int64),
        face_cells=np.array([[0, -1]] * 4, dtype=np.int64),
        face_area=np.ones(4),
        face_normal=np.array(
            [[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]]
        ),
        face_center=np.array(
            [[1.0, 0.5], [0.0, 0.5], [0.5, 1.0], [0.5, 0.0]]
        ),
    )
    tau = np.zeros(1, dtype=np.int32)
    return MeshCase("single-cell", mesh, tau, (1, 2))


MESH_GENERATORS = (
    _skewed_tau,
    _uniform_tau,
    _duplicate_coords,
    _disconnected_mesh,
    _single_cell_mesh,
)


def make_mesh_case(rng: np.random.Generator) -> MeshCase:
    """Draw one pathological mesh case."""
    gen = MESH_GENERATORS[int(rng.integers(len(MESH_GENERATORS)))]
    return gen(rng)
