"""Seeded adversarial fuzzing of the partitioning pipeline.

The harness (:func:`~repro.fuzz.harness.run_fuzz`, also exposed as the
``repro fuzz`` CLI subcommand) generates pathological graphs and meshes
and differentially checks the fast partitioner kernels against the
reference oracles plus the partition/DAG contracts.  See
:mod:`repro.fuzz.harness` for the full check catalogue.
"""

from .generators import (
    GRAPH_GENERATORS,
    MESH_GENERATORS,
    GraphCase,
    MeshCase,
    make_graph_case,
    make_mesh_case,
)
from .harness import FuzzFailure, FuzzReport, run_fuzz

__all__ = [
    "run_fuzz",
    "FuzzReport",
    "FuzzFailure",
    "GraphCase",
    "MeshCase",
    "make_graph_case",
    "make_mesh_case",
    "GRAPH_GENERATORS",
    "MESH_GENERATORS",
]
