"""Differential fuzzing harness.

:func:`run_fuzz` drives seeded adversarial cases
(:mod:`repro.fuzz.generators`) through three families of checks:

* **contract checks** — :func:`repro.graph.partition.partition_graph`
  and every mesh strategy in :data:`repro.partitioning.strategies.STRATEGIES`
  must return a contract-clean result, degrade with non-default
  provenance *and* a :class:`~repro.graph.contracts.PartitionQualityWarning`,
  or raise a typed error — never silently return garbage;
* **differential checks** — the vectorized hot kernels
  (:func:`~repro.graph.coarsen.heavy_edge_matching`,
  :func:`~repro.graph.refine.fm_refine`) are compared against the
  pre-optimization oracles in :mod:`repro.graph.reference` on the same
  inputs: matchings must be valid involutions along edges with at
  least 80 % of the oracle's matched weight, and FM must be
  deterministic, internally consistent (incremental cut == recomputed
  cut) and never worse than the oracle on both cut and worst
  imbalance beyond small slack;
* **mixed-dtype differentials** — every graph case is re-partitioned
  from a narrowed storage copy (int32 ``adjncy``, float32
  ``vwgt``/``adjwgt`` holding the exact same values) and the labels
  must be bit-identical to the wide int64/float64 path — the
  equivalence gate behind the scale tier's index/weight narrowing;
* **kernel-tier differentials** — the compiled-tier kernels
  (:mod:`repro.accel`: FM unit pass, HEM greedy tail, FLUSIM release,
  contraction merge, FM degree recomputation) are forced on via
  ``compiled=True`` (interpreted when Numba is absent — same code
  path, minus the JIT) and must reproduce the reference paths bit for
  bit;
* **out-of-core differentials** — every mesh case's dual graph is
  rebuilt with the streaming engine at an adversarial chunk size and
  must equal the materialized oracle array for array, and every graph
  case is re-partitioned under a forced ``REPRO_HIERARCHY_BUDGET=1``
  spill budget with bit-identical labels;
* **DAG checks** — every mesh decomposition is expanded into Euler and
  Heun task graphs and audited with
  :func:`repro.taskgraph.verify.verify_dag`;
* **downstream differentials** — per seed, one decomposition is pushed
  through the vectorized Algorithm 1 generator and the low-overhead
  FLUSIM engine and compared against the seed oracles
  (:mod:`repro.taskgraph.reference`, :mod:`repro.flusim.reference`):
  DAGs must match bit-identically up to canonical edge order
  (including ``scheme="heun"`` and ``iterations > 1``) and traces must
  be bit-identical across engines, schedulers, cluster shapes and a
  non-free :class:`~repro.flusim.commmodel.CommModel`.

Failures are collected (not raised) so one run reports everything; the
``repro fuzz`` CLI exits non-zero when any failure survives.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..graph.coarsen import heavy_edge_matching
from ..graph.contracts import PartitionQualityWarning, check_partition_contract
from ..graph.csr import CSRGraph
from ..graph.metrics import edge_cut, imbalance
from ..graph.partition import partition_graph
from ..graph.reference import fm_refine_ref, heavy_edge_matching_ref
from ..graph.refine import fm_refine
from ..pipeline import TaskGraphConfig, TaskGraphStage
from ..resilience.errors import PartitionError, PartitionQualityError
from ..taskgraph.verify import verify_dag
from .generators import GraphCase, MeshCase, make_graph_case, make_mesh_case

__all__ = ["FuzzFailure", "FuzzReport", "run_fuzz"]


@dataclass
class FuzzFailure:
    """One check that did not hold."""

    seed: int
    case: str
    check: str
    detail: str

    def __str__(self) -> str:
        return f"[seed {self.seed}] {self.case} / {self.check}: {self.detail}"


@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing run."""

    seeds: int = 0
    cases: int = 0
    contract_checks: int = 0
    differential_checks: int = 0
    dag_checks: int = 0
    rejected_inputs: int = 0  # typed-error rejections (expected)
    degraded_results: int = 0  # non-primary provenance (expected)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every check held."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"fuzz: {self.seeds} seed(s), {self.cases} case(s), "
            f"{self.contract_checks} contract / "
            f"{self.differential_checks} differential / "
            f"{self.dag_checks} DAG check(s)",
            f"  typed rejections: {self.rejected_inputs}, "
            f"degraded (non-primary provenance): {self.degraded_results}",
            f"  failures: {len(self.failures)}",
        ]
        lines.extend(f"  {f}" for f in self.failures)
        return "\n".join(lines)


def _matched_weight(g: CSRGraph, match: np.ndarray) -> float:
    src = g.edge_sources()
    sel = (match[src] == g.adjncy) & (src < g.adjncy)
    return float(g.adjwgt[sel].sum())


def _check_matching(
    report: FuzzReport, seed: int, case: str, g: CSRGraph
) -> None:
    """Differential: vectorized HEM vs the reference greedy loop."""
    report.differential_checks += 1
    fast = heavy_edge_matching(g, np.random.default_rng(seed))
    ref = heavy_edge_matching_ref(g, np.random.default_rng(seed))

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, case, check, detail))

    if not np.array_equal(fast[fast], np.arange(g.num_vertices)):
        fail("hem-involution", "match[match[v]] != v for some v")
        return
    matched = np.flatnonzero(fast != np.arange(g.num_vertices))
    for v in matched:
        u = fast[v]
        if u not in g.adjncy[g.xadj[v] : g.xadj[v + 1]]:
            fail("hem-adjacency", f"matched pair ({v}, {u}) is not an edge")
            return
    again = heavy_edge_matching(g, np.random.default_rng(seed))
    if not np.array_equal(fast, again):
        fail("hem-determinism", "same seed produced different matchings")
    forced = heavy_edge_matching(
        g, np.random.default_rng(seed), compiled=True
    )
    if not np.array_equal(fast, forced):
        fail(
            "hem-compiled",
            "compiled-tier greedy tail diverged from the NumPy path",
        )
    wf, wr = _matched_weight(g, fast), _matched_weight(g, ref)
    if wr > 0 and wf < 0.8 * wr:
        fail(
            "hem-weight",
            f"fast matched weight {wf:g} < 0.8 × reference {wr:g}",
        )


def _check_fm(
    report: FuzzReport, seed: int, case: str, g: CSRGraph
) -> None:
    """Differential: incremental-gain FM vs the reference per-pass FM."""
    if g.num_vertices < 2:
        return
    report.differential_checks += 1
    rng = np.random.default_rng(seed)
    part0 = (rng.random(g.num_vertices) < 0.5).astype(np.int32)
    tol = 1.10

    def run(fn, check_cut=False):
        kwargs = {"check_cut": True} if check_cut else {}
        p = fn(
            g,
            part0.copy(),
            imbalance_tol=tol,
            rng=np.random.default_rng(seed),
            **kwargs,
        )
        return p, edge_cut(g, p), float(imbalance(g, p, 2).max())

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, case, check, detail))

    try:
        fast, fast_cut, fast_imb = run(fm_refine, check_cut=True)
    except PartitionError as exc:
        fail("fm-internal", f"check_cut tripped: {exc}")
        return
    _, ref_cut, ref_imb = run(fm_refine_ref)
    cut0 = edge_cut(g, part0)
    imb0 = float(imbalance(g, part0, 2).max())

    again, again_cut, _ = run(fm_refine)
    if not np.array_equal(fast, again) or again_cut != fast_cut:
        fail("fm-determinism", "same seed produced different refinements")
    try:
        forced = fm_refine(
            g,
            part0.copy(),
            imbalance_tol=tol,
            rng=np.random.default_rng(seed),
            check_cut=True,
            compiled=True,
        )
    except PartitionError as exc:
        fail("fm-compiled-internal", f"check_cut tripped: {exc}")
    else:
        if not np.array_equal(fast, forced):
            fail(
                "fm-compiled",
                "compiled-tier unit pass diverged from the NumPy path",
            )
    # FM keeps the best prefix: it must never leave the partition worse
    # than it started on *both* axes.
    if fast_cut > cut0 + 1e-9 and fast_imb > imb0 + 1e-9:
        fail(
            "fm-monotonic",
            f"cut {cut0:g}→{fast_cut:g} and imbalance "
            f"{imb0:g}→{fast_imb:g} both worsened",
        )
    # Quality parity with the oracle (generous slack: both are
    # heuristics with different tie-breaking).
    if fast_imb <= tol < ref_imb - 1e-9:
        return  # fast repaired balance where the oracle did not
    if fast_cut > 2.0 * ref_cut + 4.0:
        fail(
            "fm-vs-reference",
            f"fast cut {fast_cut:g} ≫ reference cut {ref_cut:g}",
        )


def _check_multilevel_kernels(
    report: FuzzReport, seed: int, case: str, g: CSRGraph
) -> None:
    """Differential: the contraction-merge and degree-recomputation
    kernels forced on must be bit-identical to the NumPy paths."""
    if g.num_vertices < 2:
        return
    report.differential_checks += 1
    from ..graph.coarsen import contract
    from ..graph.refine import _degrees

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, case, check, detail))

    match = heavy_edge_matching(g, np.random.default_rng(seed))
    ref = contract(g, match, compiled=False)
    forced = contract(g, match, compiled=True)
    same = (
        np.array_equal(ref.graph.xadj, forced.graph.xadj)
        and np.array_equal(ref.graph.adjncy, forced.graph.adjncy)
        and np.array_equal(ref.graph.adjwgt, forced.graph.adjwgt)
        and np.array_equal(ref.graph.vwgt, forced.graph.vwgt)
        and ref.graph.adjncy.dtype == forced.graph.adjncy.dtype
    )
    if not same:
        fail(
            "contract-compiled",
            "compiled-tier contraction merge diverged from the NumPy "
            "path",
        )
    part = (
        np.random.default_rng(seed).random(g.num_vertices) < 0.5
    ).astype(np.int32)
    i0, e0 = _degrees(g, part, compiled=False)
    i1, e1 = _degrees(g, part, compiled=True)
    if not (np.array_equal(i0, i1) and np.array_equal(e0, e1)):
        fail(
            "degrees-compiled",
            "compiled-tier degree recomputation diverged from bincount",
        )


def _check_spill_path(
    report: FuzzReport,
    seed: int,
    case: str,
    g: CSRGraph,
    nparts: int,
) -> None:
    """Differential: a forced 1-byte hierarchy spill budget must leave
    the labels bit-identical to the in-memory V-cycle."""
    if g.num_vertices < 1 or nparts < 1 or nparts > g.num_vertices:
        return
    report.differential_checks += 1
    import os as _os

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, case, check, detail))

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            base = partition_graph(g, nparts, seed=seed)
            prev = _os.environ.get("REPRO_HIERARCHY_BUDGET")
            _os.environ["REPRO_HIERARCHY_BUDGET"] = "1"
            try:
                spilled = partition_graph(g, nparts, seed=seed)
            finally:
                if prev is None:
                    del _os.environ["REPRO_HIERARCHY_BUDGET"]
                else:
                    _os.environ["REPRO_HIERARCHY_BUDGET"] = prev
        except (ValueError, PartitionError):
            return  # rejection behaviour is the contract stage's job
    if not np.array_equal(base.part, spilled.part):
        fail(
            "spill-labels",
            f"forced-spill labels diverged (nparts={nparts}, base cut "
            f"{base.cut:g}, spilled cut {spilled.cut:g})",
        )
    if base.spill != {}:
        fail("spill-provenance", "spill stats recorded without a budget")


def _check_dtype_paths(
    report: FuzzReport,
    seed: int,
    case: str,
    g: CSRGraph,
    nparts: int,
) -> None:
    """Differential: narrowed (int32/float32) vs wide (int64/float64)
    storage must produce bit-identical labels.

    Both copies hold the *same values* — the weights are rounded
    through float32 first — so any divergence means a kernel scored or
    accumulated in storage precision instead of promoting to float64,
    exactly the failure mode the narrowing tier must not introduce.
    """
    if g.num_vertices < 1 or nparts < 1 or nparts > g.num_vertices:
        return
    report.differential_checks += 1

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, case, check, detail))

    vw32 = np.asarray(g.vwgt, dtype=np.float32)
    aw32 = np.asarray(g.adjwgt, dtype=np.float32)
    wide = CSRGraph(
        g.xadj.astype(np.int64),
        g.adjncy.astype(np.int64),
        vwgt=vw32.astype(np.float64),
        adjwgt=aw32.astype(np.float64),
    )
    narrow = CSRGraph(
        g.xadj.astype(np.int64),
        g.adjncy.astype(np.int32),
        vwgt=vw32,
        adjwgt=aw32,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            res_w = partition_graph(wide, nparts, seed=seed)
            res_n = partition_graph(narrow, nparts, seed=seed)
        except (ValueError, PartitionError):
            return  # rejection behaviour is the contract stage's job
    if not np.array_equal(res_w.part, res_n.part):
        fail(
            "dtype-labels",
            f"narrowed labels diverged from wide path (nparts={nparts}, "
            f"wide cut {res_w.cut:g}, narrow cut {res_n.cut:g})",
        )
    if res_n.dtypes.get("adjncy") != "int32":
        fail(
            "dtype-provenance",
            "narrowed run recorded adjncy dtype "
            f"{res_n.dtypes.get('adjncy')!r}, expected 'int32'",
        )


def _check_partition_result(
    report: FuzzReport,
    seed: int,
    case: str,
    g: CSRGraph,
    nparts: int,
) -> None:
    """Contract: partition_graph is clean, degraded-with-warning, or a
    typed rejection — and strict mode raises instead of degrading."""
    report.contract_checks += 1

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, case, check, detail))

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        try:
            res = partition_graph(g, nparts, seed=seed)
        except (ValueError, PartitionError) as exc:
            report.rejected_inputs += 1
            if nparts <= g.num_vertices and nparts >= 1:
                fail(
                    "contract-reject",
                    f"valid nparts={nparts} rejected: {exc}",
                )
            return
    quality = [
        w for w in caught if issubclass(w.category, PartitionQualityWarning)
    ]
    violations = check_partition_contract(g, res.part, res.nparts)
    if violations:
        if res.provenance == "primary" and not tuple(res.violations):
            fail(
                "contract-silent",
                "out-of-contract result with default provenance and no "
                f"recorded violations: {violations}",
            )
        elif not quality:
            fail(
                "contract-warning",
                f"degraded result ({res.provenance}) emitted no "
                "PartitionQualityWarning",
            )
    if res.provenance != "primary":
        report.degraded_results += 1
        # strict mode must refuse to degrade silently for the same input
        # ... unless the degradation was input-stage (components), which
        # strict mode still permits with its warning.
        if res.provenance in ("relaxed", "sfc", "block"):
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    partition_graph(g, nparts, seed=seed, strict=True)
            except PartitionQualityError:
                pass
            else:
                fail(
                    "contract-strict",
                    f"strict=True did not raise though the default run "
                    f"degraded to {res.provenance!r}",
                )


def _fuzz_graph_case(report: FuzzReport, seed: int, case: GraphCase) -> None:
    name = f"graph:{case.name}"
    for nparts in case.nparts:
        _check_partition_result(report, seed, name, case.graph, nparts)
    if case.nparts:
        _check_dtype_paths(
            report,
            seed,
            name,
            case.graph,
            case.nparts[seed % len(case.nparts)],
        )
    if case.graph.num_vertices <= 400:
        _check_matching(report, seed, name, case.graph)
        _check_fm(report, seed, name, case.graph)
        _check_multilevel_kernels(report, seed, name, case.graph)
        if case.nparts:
            _check_spill_path(
                report,
                seed,
                name,
                case.graph,
                case.nparts[(seed + 1) % len(case.nparts)],
            )


def _check_downstream(
    report: FuzzReport, seed: int, name: str, mesh, tau, decomp
) -> None:
    """Differential: vectorized Algorithm 1 + low-overhead FLUSIM vs
    the retained seed oracles — DAG and trace bit-equality."""
    from ..flusim import ClusterConfig, CommModel, simulate, simulate_ref
    from ..flusim.schedulers import SCHEDULERS
    from ..flusim.trace import trace_differences
    from ..taskgraph import generate_task_graph, generate_task_graph_ref
    from ..taskgraph.verify import dag_differences

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, name, check, detail))

    dag = None
    for scheme, iters in (("euler", 1), ("heun", 2)):
        report.differential_checks += 1
        fast = generate_task_graph(
            mesh, tau, decomp, scheme=scheme, iterations=iters
        )
        ref = generate_task_graph_ref(
            mesh, tau, decomp, scheme=scheme, iterations=iters
        )
        diffs = dag_differences(fast, ref)
        if diffs:
            fail(f"taskgraph-{scheme}x{iters}", "; ".join(diffs[:3]))
        elif scheme == "euler":
            dag = fast
    if dag is None:
        return

    # One scheduler / cluster shape / engine combination per seed keeps
    # the run bounded while the campaign sweeps the whole matrix.
    scheduler = SCHEDULERS[seed % len(SCHEDULERS)]
    cores = (1, 2, None)[seed % 3]
    engine = ("auto", "scalar", "batched")[seed % 3]
    cluster = ClusterConfig(decomp.num_processes, cores)
    for comm in (None, CommModel(latency=0.05, bandwidth=32.0)):
        report.differential_checks += 1
        got = simulate(
            dag, cluster, scheduler=scheduler, comm=comm, seed=seed,
            engine=engine,
        )
        want = simulate_ref(
            dag, cluster, scheduler=scheduler, comm=comm, seed=seed
        )
        diffs = trace_differences(got, want)
        if diffs:
            fail(
                f"flusim-{scheduler}-{engine}"
                f"-{'comm' if comm else 'nocomm'}",
                "; ".join(diffs[:3]),
            )

    # Compiled tier: the batched engine with the release kernel forced
    # on (interpreted when Numba is absent) must stay bit-identical.
    report.differential_checks += 1
    got = simulate(
        dag, cluster, scheduler=scheduler, seed=seed,
        engine="batched", compiled=True,
    )
    want = simulate_ref(dag, cluster, scheduler=scheduler, seed=seed)
    diffs = trace_differences(got, want)
    if diffs:
        fail(f"flusim-{scheduler}-batched-compiled", "; ".join(diffs[:3]))


def _check_streaming_dual(
    report: FuzzReport, seed: int, name: str, mesh
) -> None:
    """Differential: the streaming dual builder vs the materialized
    oracle, at an adversarial (non-power-of-two) chunk size."""
    from ..mesh.dual import mesh_to_dual_graph

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, name, check, detail))

    chunk = 1 + seed % 7  # tiny odd windows stress the cursor carry
    for edge_weight in ("unit", "area"):
        report.differential_checks += 1
        ref = mesh_to_dual_graph(
            mesh, edge_weight=edge_weight, engine="materialized"
        )
        got = mesh_to_dual_graph(
            mesh,
            edge_weight=edge_weight,
            engine="streaming",
            chunk_faces=chunk,
        )
        same = (
            np.array_equal(ref.xadj, got.xadj)
            and np.array_equal(ref.adjncy, got.adjncy)
            and np.array_equal(ref.adjwgt, got.adjwgt)
        )
        if not same:
            fail(
                f"dual-streaming-{edge_weight}",
                f"streaming dual (chunk_faces={chunk}) diverged from "
                "the materialized oracle",
            )


def _fuzz_mesh_case(report: FuzzReport, seed: int, case: MeshCase) -> None:
    from ..partitioning.strategies import STRATEGIES, make_decomposition

    name = f"mesh:{case.name}"
    _check_streaming_dual(report, seed, name, case.mesh)
    n = case.mesh.num_cells
    strategies = sorted(STRATEGIES)
    downstream_strat = strategies[seed % len(strategies)]

    def fail(check: str, detail: str) -> None:
        report.failures.append(FuzzFailure(seed, name, check, detail))

    for ndom in case.num_domains:
        for strat in strategies:
            report.contract_checks += 1
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                try:
                    decomp = make_decomposition(
                        case.mesh, case.tau, ndom, max(1, ndom // 2),
                        strategy=strat, seed=seed,
                    )
                except (ValueError, PartitionError) as exc:
                    report.rejected_inputs += 1
                    if 1 <= ndom <= n:
                        fail(
                            f"{strat}-reject",
                            f"valid num_domains={ndom} rejected: {exc}",
                        )
                    continue
            dom = decomp.domain
            if dom.min() < 0 or dom.max() >= ndom:
                fail(f"{strat}-labels", "domain label out of range")
                continue
            if len(np.unique(dom)) != ndom:
                fail(f"{strat}-empty", "empty domain produced")
                continue
            if ndom > n:
                fail(
                    f"{strat}-overcommit",
                    f"{ndom} domains accepted for {n} cells",
                )
                continue
            for scheme in ("euler", "heun"):
                report.dag_checks += 1
                # Same typed chain link the pipeline runs (fuzz meshes
                # are one-shot, so no artifact store is involved).
                dag = TaskGraphStage.compute(
                    TaskGraphConfig(scheme=scheme),
                    case.mesh,
                    case.tau,
                    decomp,
                )
                bad = verify_dag(
                    dag, case.mesh, case.tau, scheme=scheme
                )
                if bad:
                    fail(f"{strat}-dag-{scheme}", "; ".join(bad))
            if strat == downstream_strat:
                _check_downstream(
                    report, seed, name, case.mesh, case.tau, decomp
                )


def run_fuzz(
    seeds: int = 25,
    *,
    start: int = 0,
    progress=None,
) -> FuzzReport:
    """Run the adversarial fuzzing campaign over ``seeds`` seeds.

    Every seed deterministically generates one graph case and one mesh
    case and pushes them through the contract, differential and DAG
    checks.  ``progress`` is an optional callback ``(seed_index,
    total)`` for CLI feedback.

    Returns a :class:`FuzzReport`; ``report.ok`` is the pass/fail
    verdict.
    """
    report = FuzzReport()
    for i in range(seeds):
        seed = start + i
        report.seeds += 1
        if progress is not None:
            progress(i, seeds)

        rng = np.random.default_rng([0xF022, seed])
        gcase = make_graph_case(rng)
        report.cases += 1
        _fuzz_graph_case(report, seed, gcase)

        mcase = make_mesh_case(rng)
        report.cases += 1
        _fuzz_mesh_case(report, seed, mcase)
    return report
