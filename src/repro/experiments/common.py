"""Shared infrastructure for the experiment harnesses.

Historically this module owned its own memoization (a scatter of
unbounded ``functools.lru_cache`` maps) and the ``PAPER_CONFIGS``
dict.  Both now live in :mod:`repro.pipeline`: the chain is executed
by the typed pipeline runner against the process-wide artifact store
(bounded in-memory LRU, optional content-addressed disk layer), and
the paper configurations are the scenario registry.  The helpers here
are kept as thin wrappers so the experiment modules and external
callers keep their historical API.
"""

from __future__ import annotations

import numpy as np

from ..mesh import MESH_FACTORIES, Mesh
from ..partitioning import DomainDecomposition
from ..pipeline import (
    NUM_LEVELS,
    Pipeline,
    RunRecord,
    Scenario,
    paper_configs,
    resolve_n_jobs,
)
from ..pipeline import set_default_n_jobs as _set_default_n_jobs

__all__ = [
    "NUM_LEVELS",
    "PAPER_CONFIGS",
    "default_n_jobs",
    "set_default_n_jobs",
    "standard_case",
    "standard_scenario",
    "cached_decomposition",
    "cached_task_graph",
    "run_flusim",
]

#: Legacy view of the scenario registry
#: (:data:`repro.pipeline.SCENARIOS`).
PAPER_CONFIGS = paper_configs()


def set_default_n_jobs(n: int | None) -> None:
    """Set the partitioner worker count used by the experiment
    harnesses (``None`` reverts to ``REPRO_N_JOBS`` / serial)."""
    _set_default_n_jobs(n)


def default_n_jobs() -> int:
    """Partitioner worker count for experiment runs (resolved once by
    :func:`repro.pipeline.resolve_n_jobs`)."""
    return resolve_n_jobs()


def standard_scenario(
    name: str,
    domains: int = 1,
    processes: int = 1,
    cores: int | None = 1,
    strategy: str = "SC_OC",
    *,
    scale: int | None = None,
    seed: int = 0,
    scheduler: str = "eager",
    scheme: str = "euler",
    n_jobs: int | None = None,
) -> Scenario:
    """A pipeline :class:`~repro.pipeline.Scenario` on a named replica
    mesh with the Table I level caps and the resolved worker count."""
    if name not in MESH_FACTORIES:
        raise ValueError(f"unknown mesh {name!r}")
    return Scenario.standard(
        name,
        domains,
        processes,
        cores,
        strategy,
        scale=scale,
        seed=seed,
        scheduler=scheduler,
        scheme=scheme,
        n_jobs=resolve_n_jobs(n_jobs),
    )


def standard_case(
    name: str, *, scale: int | None = None
) -> tuple[Mesh, np.ndarray]:
    """Return ``(mesh, tau)`` for a named replica mesh.

    ``scale`` overrides the generator's default ``max_depth`` (smaller
    = fewer cells = faster experiments).  Served from the artifact
    store, so repeated calls return the same objects.
    """
    return Pipeline().case(standard_scenario(name, scale=scale))


def cached_decomposition(
    name: str,
    domains: int,
    processes: int,
    strategy: str,
    *,
    scale: int | None = None,
    seed: int = 0,
    n_jobs: int | None = None,
) -> DomainDecomposition:
    """Store-backed :func:`repro.partitioning.make_decomposition` on a
    standard case (``n_jobs=None`` uses the resolved default)."""
    sc = standard_scenario(
        name,
        domains,
        processes,
        strategy=strategy,
        scale=scale,
        seed=seed,
        n_jobs=n_jobs,
    )
    return Pipeline().run(sc, through="partition").decomp


def cached_task_graph(
    name: str,
    domains: int,
    processes: int,
    strategy: str,
    scale: int | None = None,
    seed: int = 0,
    n_jobs: int | None = None,
):
    """Store-backed task graph for a standard case + decomposition."""
    sc = standard_scenario(
        name,
        domains,
        processes,
        strategy=strategy,
        scale=scale,
        seed=seed,
        n_jobs=n_jobs,
    )
    return Pipeline().run(sc, through="taskgraph").dag


def run_flusim(
    name: str,
    domains: int,
    processes: int,
    cores: int | None,
    strategy: str,
    *,
    scale: int | None = None,
    seed: int = 0,
    scheduler: str = "eager",
) -> RunRecord:
    """One FLUSIM run on a standard case.

    Returns a typed :class:`~repro.pipeline.RunRecord` (with per-stage
    cache provenance in ``record.provenance``); iterating it yields
    the legacy ``(dag, trace, metrics)`` triple.
    """
    sc = standard_scenario(
        name,
        domains,
        processes,
        cores,
        strategy,
        scale=scale,
        seed=seed,
        scheduler=scheduler,
    )
    return Pipeline().run(sc)
