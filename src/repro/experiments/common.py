"""Shared infrastructure for the experiment harnesses.

Provides the *standard cases* — replica mesh + temporal levels matching
the paper's Table I — and memoization of meshes and partitions so that
the benchmark suite does not regenerate/re-partition the same inputs.
"""

from __future__ import annotations

import os
from functools import lru_cache

import numpy as np

from ..flusim import ClusterConfig, schedule_metrics, simulate
from ..mesh import MESH_FACTORIES, Mesh
from ..partitioning import DomainDecomposition, make_decomposition
from ..taskgraph import generate_task_graph

__all__ = [
    "NUM_LEVELS",
    "PAPER_CONFIGS",
    "default_n_jobs",
    "set_default_n_jobs",
    "standard_case",
    "cached_decomposition",
    "cached_task_graph",
    "run_flusim",
]

#: Process-wide default for the partitioner's ``n_jobs`` knob;
#: ``None`` falls back to the ``REPRO_N_JOBS`` environment variable.
_default_n_jobs: int | None = None


def set_default_n_jobs(n: int | None) -> None:
    """Set the partitioner worker count used by the experiment
    harnesses (``None`` reverts to ``REPRO_N_JOBS`` / serial)."""
    global _default_n_jobs
    _default_n_jobs = n


def default_n_jobs() -> int:
    """Partitioner worker count for experiment runs.

    Resolution order: :func:`set_default_n_jobs` (e.g. the CLI's
    ``--jobs``), then the ``REPRO_N_JOBS`` environment variable, then
    serial.
    """
    if _default_n_jobs is not None:
        return max(1, _default_n_jobs)
    env = os.environ.get("REPRO_N_JOBS", "")
    try:
        return max(1, int(env)) if env.strip() else 1
    except ValueError:
        import warnings

        warnings.warn(
            f"invalid REPRO_N_JOBS value {env!r} (expected an integer); "
            "falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1

#: Temporal level count per mesh (Table I).
NUM_LEVELS = {"cylinder": 4, "cube": 4, "pprime_nozzle": 3}

#: The cluster/domain configurations used in the paper's experiments.
PAPER_CONFIGS = {
    # Fig 5/12/13: nozzle on 6 processes of 4 cores, 12 domains.
    "nozzle_validation": dict(
        mesh="pprime_nozzle", domains=12, processes=6, cores=4
    ),
    # Fig 6: 64 domains on 64 processes, unbounded cores.
    "unbounded": dict(mesh="cylinder", domains=64, processes=64, cores=None),
    # Fig 7/10: 16 processes of 32 cores, 16 domains.
    "characteristics": dict(
        mesh="cylinder", domains=16, processes=16, cores=32
    ),
    # Fig 9: 128 domains on 16 processes of 32 cores.
    "speedup": dict(domains=128, processes=16, cores=32),
}


@lru_cache(maxsize=8)
def _mesh(name: str, scale: int | None) -> Mesh:
    factory = MESH_FACTORIES[name]
    return factory() if scale is None else factory(max_depth=scale)


@lru_cache(maxsize=8)
def _case(name: str, scale: int | None) -> tuple[Mesh, np.ndarray]:
    from ..temporal import levels_from_depth

    mesh = _mesh(name, scale)
    tau = levels_from_depth(mesh, num_levels=NUM_LEVELS.get(name))
    return mesh, tau


def standard_case(name: str, *, scale: int | None = None):
    """Return ``(mesh, tau)`` for a named replica mesh.

    ``scale`` overrides the generator's default ``max_depth`` (smaller
    = fewer cells = faster experiments).  Results are memoized.
    """
    if name not in MESH_FACTORIES:
        raise ValueError(f"unknown mesh {name!r}")
    return _case(name, scale)


@lru_cache(maxsize=64)
def _decomp_cached(
    name: str,
    scale: int | None,
    domains: int,
    processes: int,
    strategy: str,
    seed: int,
    n_jobs: int,
) -> DomainDecomposition:
    mesh, tau = standard_case(name, scale=scale)
    return make_decomposition(
        mesh,
        tau,
        domains,
        processes,
        strategy=strategy,
        seed=seed,
        n_jobs=n_jobs,
    )


def cached_decomposition(
    name: str,
    domains: int,
    processes: int,
    strategy: str,
    *,
    scale: int | None = None,
    seed: int = 0,
    n_jobs: int | None = None,
) -> DomainDecomposition:
    """Memoized :func:`repro.partitioning.make_decomposition` on a
    standard case (``n_jobs=None`` uses :func:`default_n_jobs`)."""
    if n_jobs is None:
        n_jobs = default_n_jobs()
    return _decomp_cached(
        name, scale, domains, processes, strategy, seed, n_jobs
    )


@lru_cache(maxsize=64)
def _task_graph_cached(
    name: str,
    domains: int,
    processes: int,
    strategy: str,
    scale: int | None,
    seed: int,
    n_jobs: int,
):
    mesh, tau = standard_case(name, scale=scale)
    decomp = cached_decomposition(
        name,
        domains,
        processes,
        strategy,
        scale=scale,
        seed=seed,
        n_jobs=n_jobs,
    )
    return generate_task_graph(mesh, tau, decomp)


def cached_task_graph(
    name: str,
    domains: int,
    processes: int,
    strategy: str,
    scale: int | None = None,
    seed: int = 0,
    n_jobs: int | None = None,
):
    """Memoized task graph for a standard case + decomposition."""
    if n_jobs is None:
        n_jobs = default_n_jobs()
    return _task_graph_cached(
        name, domains, processes, strategy, scale, seed, n_jobs
    )


def run_flusim(
    name: str,
    domains: int,
    processes: int,
    cores: int | None,
    strategy: str,
    *,
    scale: int | None = None,
    seed: int = 0,
    scheduler: str = "eager",
):
    """One FLUSIM run on a standard case; returns
    ``(dag, trace, metrics)``."""
    dag = cached_task_graph(
        name, domains, processes, strategy, scale=scale, seed=seed
    )
    cluster = ClusterConfig(processes, cores)
    trace = simulate(dag, cluster, scheduler=scheduler, seed=seed)
    return dag, trace, schedule_metrics(dag, trace)
