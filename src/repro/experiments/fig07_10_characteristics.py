"""Figs. 7 and 10 — domain characteristics under SC_OC vs MC_TL.

For the CYLINDER case on 16 processes (32 cores each):

* (a) the operating cost held by each process, broken down by temporal
  level — SC_OC concentrates each process in one level, MC_TL spreads
  every level across all processes;
* (b) the cumulative computation each process performs per
  subiteration — under SC_OC, processes 10–15 do nearly all their work
  in the first subiteration and then starve; under MC_TL every row is
  flat.

The result carries both matrices plus scalar *concentration* metrics
so benchmarks can assert the paper's qualitative claims numerically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..taskgraph.analysis import (
    operating_cost_by_process_level,
    work_by_process_subiteration,
)
from .common import cached_decomposition, cached_task_graph, standard_case

__all__ = ["CharacteristicsResult", "run", "report", "level_concentration"]


def level_concentration(cost_by_level: np.ndarray) -> float:
    """Mean over processes of the share held by the dominant temporal
    level (1.0 = every process fully single-level; 1/L = perfectly
    mixed)."""
    totals = cost_by_level.sum(axis=1, keepdims=True)
    totals = np.maximum(totals, 1e-300)
    return float((cost_by_level.max(axis=1, keepdims=True) / totals).mean())


def first_subiteration_share(work_by_sub: np.ndarray) -> np.ndarray:
    """Per-process share of work done in the first subiteration."""
    totals = np.maximum(work_by_sub.sum(axis=1), 1e-300)
    return work_by_sub[:, 0] / totals


@dataclass
class CharacteristicsResult:
    """Fig. 7/10 matrices and concentration summaries per strategy."""

    strategy: str
    cost_by_process_level: np.ndarray  # (P, L) — panel (a)
    work_by_process_subiteration: np.ndarray  # (P, S) — panel (b)
    concentration: float
    max_first_subiteration_share: float
    total_cost_imbalance: float  # max/mean of per-process total cost


def run(
    strategy: str,
    *,
    mesh_name: str = "cylinder",
    domains: int = 16,
    processes: int = 16,
    scale: int | None = None,
    seed: int = 0,
) -> CharacteristicsResult:
    """Compute the Fig. 7 (SC_OC) or Fig. 10 (MC_TL) matrices."""
    mesh, tau = standard_case(mesh_name, scale=scale)
    decomp = cached_decomposition(
        mesh_name, domains, processes, strategy, scale=scale, seed=seed
    )
    dag = cached_task_graph(
        mesh_name, domains, processes, strategy, scale=scale, seed=seed
    )
    cost_lv = operating_cost_by_process_level(tau, decomp)
    work_sub = work_by_process_subiteration(dag, processes)
    totals = cost_lv.sum(axis=1)
    return CharacteristicsResult(
        strategy=strategy,
        cost_by_process_level=cost_lv,
        work_by_process_subiteration=work_sub,
        concentration=level_concentration(cost_lv),
        max_first_subiteration_share=float(
            first_subiteration_share(work_sub).max()
        ),
        total_cost_imbalance=float(totals.max() / totals.mean()),
    )


def report(r: CharacteristicsResult) -> str:
    """Render both panels as stacked bars plus the summary line."""
    from ..viz import render_stacked_bars

    parts = [
        f"--- {r.strategy}: operating cost by temporal level (Fig 7a/10a) ---",
        render_stacked_bars(r.cost_by_process_level),
        f"--- {r.strategy}: work by subiteration (Fig 7b/10b) ---",
        render_stacked_bars(r.work_by_process_subiteration),
        (
            f"{r.strategy}: dominant-level concentration "
            f"{r.concentration:.2f}, max first-subiteration share "
            f"{r.max_first_subiteration_share:.2f}, total-cost imbalance "
            f"{r.total_cost_imbalance:.3f}"
        ),
    ]
    return "\n".join(parts)
