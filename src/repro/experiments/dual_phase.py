"""§VII perspective — dual-phase MC_TL → SC_OC partitioning.

"The first [phase] balances the temporal levels (MC_TL) where a
process is assigned to a single domain.  To achieve efficient
granularity with minimal communication, a second phase of partitioning
is performed within each domain using an operational cost balancing
strategy (SC_OC)."  The paper reports preliminary results showing a
favorable compromise between performance and communication.

This experiment compares, at equal domain count: pure SC_OC, pure
MC_TL and DUAL on makespan and cross-process communication volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flusim import ClusterConfig, simulate, taskgraph_comm_volume
from ..taskgraph import generate_task_graph
from .common import cached_decomposition, standard_case

__all__ = ["DualPhaseResult", "run", "report"]


@dataclass
class DualPhaseResult:
    """Makespan/communication per strategy."""

    strategies: list[str]
    makespan: dict[str, float]
    comm_volume: dict[str, int]
    improvement_vs_sc_oc: dict[str, float]


def run(
    *,
    mesh_name: str = "cylinder",
    domains: int = 64,
    processes: int = 16,
    cores: int = 32,
    scale: int | None = None,
    seed: int = 0,
) -> DualPhaseResult:
    """Compare SC_OC / MC_TL / DUAL at equal domain counts."""
    mesh, tau = standard_case(mesh_name, scale=scale)
    cluster = ClusterConfig(processes, cores)
    strategies = ["SC_OC", "MC_TL", "DUAL"]
    makespan: dict[str, float] = {}
    comm: dict[str, int] = {}
    for strategy in strategies:
        decomp = cached_decomposition(
            mesh_name, domains, processes, strategy, scale=scale, seed=seed
        )
        dag = generate_task_graph(mesh, tau, decomp)
        trace = simulate(dag, cluster, scheduler="eager", seed=seed)
        makespan[strategy] = trace.makespan
        comm[strategy] = taskgraph_comm_volume(dag)
    impr = {
        s: 1.0 - makespan[s] / makespan["SC_OC"] for s in strategies
    }
    return DualPhaseResult(
        strategies=strategies,
        makespan=makespan,
        comm_volume=comm,
        improvement_vs_sc_oc=impr,
    )


def report(r: DualPhaseResult) -> str:
    """Tabulate the three strategies."""
    lines = [
        f"{s:>6s}: makespan {r.makespan[s]:8.0f}  comm "
        f"{r.comm_volume[s]:6d}  vs SC_OC "
        f"{100 * r.improvement_vs_sc_oc[s]:+5.1f}%"
        for s in r.strategies
    ]
    return "\n".join(lines)
