"""Extension study — the phenomenon on a true 3D octree mesh.

The 2D quadtree replicas reproduce the paper's τ-distributions, but
the original meshes are 3D: cells have ~6+ neighbours and level
classes have different surface/volume scaling.  This study rebuilds
the full pipeline on a 3D octree CYLINDER-like mesh and checks that
the SC_OC pathology and the MC_TL remedy are dimension-independent —
everything downstream of the dual graph already is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import ClusterConfig, simulate, subiteration_balance
from ..mesh.octree import octree_cylinder_mesh
from ..partitioning import make_decomposition
from ..taskgraph import generate_task_graph
from ..temporal import levels_from_depth

__all__ = ["Octree3DResult", "run", "report"]


@dataclass
class Octree3DResult:
    """3D-mesh comparison of the two strategies."""

    num_cells: int
    makespan_sc_oc: float
    makespan_mc_tl: float
    speedup: float
    worst_subiteration_imbalance_sc_oc: float
    worst_subiteration_imbalance_mc_tl: float


def run(
    *,
    max_depth: int = 7,
    domains: int = 16,
    processes: int = 8,
    cores: int = 8,
    seed: int = 0,
) -> Octree3DResult:
    """Run SC_OC vs MC_TL on the 3D octree cylinder."""
    mesh, _ = octree_cylinder_mesh(max_depth=max_depth)
    tau = levels_from_depth(mesh, num_levels=4)
    cluster = ClusterConfig(processes, cores)
    spans = {}
    imb = {}
    for strategy in ("SC_OC", "MC_TL"):
        decomp = make_decomposition(
            mesh, tau, domains, processes, strategy=strategy, seed=seed
        )
        dag = generate_task_graph(mesh, tau, decomp)
        spans[strategy] = simulate(dag, cluster, seed=seed).makespan
        imb[strategy] = float(subiteration_balance(dag, processes).max())
    return Octree3DResult(
        num_cells=mesh.num_cells,
        makespan_sc_oc=spans["SC_OC"],
        makespan_mc_tl=spans["MC_TL"],
        speedup=spans["SC_OC"] / spans["MC_TL"],
        worst_subiteration_imbalance_sc_oc=imb["SC_OC"],
        worst_subiteration_imbalance_mc_tl=imb["MC_TL"],
    )


def report(r: Octree3DResult) -> str:
    """Summary of the 3D comparison."""
    return (
        f"3D octree cylinder ({r.num_cells} cells): SC_OC "
        f"{r.makespan_sc_oc:.0f} → MC_TL {r.makespan_mc_tl:.0f} "
        f"(×{r.speedup:.2f}); worst per-subiteration imbalance "
        f"{r.worst_subiteration_imbalance_sc_oc:.1f} → "
        f"{r.worst_subiteration_imbalance_mc_tl:.1f} — the phenomenon "
        "and the remedy are dimension-independent."
    )
