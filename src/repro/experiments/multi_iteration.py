"""Extension study — cross-iteration pipelining.

The paper simulates a single iteration and argues the pattern repeats
("this pattern is reproduced at each iteration").  With no global
barrier between iterations (the task dependencies alone separate
them), a process that finishes its subiterations early can start the
next iteration's work — which partially hides SC_OC's imbalance, the
same mechanism as the Fig 11a granularity effect.  This study chains
k iterations into one DAG and measures the *steady-state* per-iteration
makespan against the single-iteration one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flusim import ClusterConfig, simulate
from ..taskgraph import generate_task_graph
from .common import cached_decomposition, standard_case

__all__ = ["MultiIterationResult", "run", "report"]


@dataclass
class MultiIterationResult:
    """Single-iteration vs amortized multi-iteration makespans."""

    iterations: int
    single: dict[str, float]  # strategy -> 1-iteration makespan
    amortized: dict[str, float]  # strategy -> k-iteration makespan / k
    pipelining_gain: dict[str, float]  # 1 − amortized/single
    speedup_single: float
    speedup_amortized: float


def run(
    *,
    mesh_name: str = "cylinder",
    iterations: int = 4,
    domains: int = 64,
    processes: int = 16,
    cores: int = 32,
    scale: int | None = None,
    seed: int = 0,
) -> MultiIterationResult:
    """Compare single-iteration and k-iteration schedules."""
    mesh, tau = standard_case(mesh_name, scale=scale)
    cluster = ClusterConfig(processes, cores)
    single: dict[str, float] = {}
    amortized: dict[str, float] = {}
    for strategy in ("SC_OC", "MC_TL"):
        decomp = cached_decomposition(
            mesh_name, domains, processes, strategy, scale=scale, seed=seed
        )
        dag1 = generate_task_graph(mesh, tau, decomp)
        single[strategy] = simulate(dag1, cluster, seed=seed).makespan
        dagk = generate_task_graph(
            mesh, tau, decomp, iterations=iterations
        )
        amortized[strategy] = (
            simulate(dagk, cluster, seed=seed).makespan / iterations
        )
    gain = {
        s: 1.0 - amortized[s] / single[s] for s in single
    }
    return MultiIterationResult(
        iterations=iterations,
        single=single,
        amortized=amortized,
        pipelining_gain=gain,
        speedup_single=single["SC_OC"] / single["MC_TL"],
        speedup_amortized=amortized["SC_OC"] / amortized["MC_TL"],
    )


def report(r: MultiIterationResult) -> str:
    """Tabulate single vs amortized makespans."""
    lines = [
        f"{s}: single {r.single[s]:.0f} → amortized over "
        f"{r.iterations} iterations {r.amortized[s]:.0f} "
        f"(pipelining gain {100 * r.pipelining_gain[s]:.0f}%)"
        for s in ("SC_OC", "MC_TL")
    ]
    lines.append(
        f"MC_TL speedup: ×{r.speedup_single:.2f} single-iteration, "
        f"×{r.speedup_amortized:.2f} steady-state"
    )
    return "\n".join(lines)
