"""Extension study — the full production loop with adaptive meshing.

Production CFD campaigns adapt the mesh to the solution; temporal
levels and partitions must follow.  This study runs the complete loop
the paper's machinery lives inside:

    solve k iterations → adapt mesh to the density front →
    transfer the state conservatively → re-derive levels →
    re-partition → continue

and checks that (a) refinement tracks the expanding blast front,
(b) the conservative transfer loses nothing, and (c) MC_TL keeps its
advantage on every adapted mesh generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..flusim import ClusterConfig, simulate
from ..mesh import (
    adapt_mesh,
    density_gradient_indicator,
    transfer_solution,
    uniform_mesh,
)
from ..partitioning import make_decomposition
from ..solver import LTSState, TaskDistributedSolver, blast_wave
from ..solver.timestep import stable_timesteps
from ..taskgraph import generate_task_graph
from ..temporal import levels_from_depth

__all__ = ["AdaptationCycle", "AdaptationStudyResult", "run", "report"]


@dataclass
class AdaptationCycle:
    """Statistics of one adapt→solve cycle."""

    cycle: int
    num_cells: int
    front_radius: float  # radius of the finest-cell band
    mass_error: float  # relative, cumulative since start
    speedup: float  # FLUSIM SC_OC/MC_TL on this mesh generation


@dataclass
class AdaptationStudyResult:
    """Whole-campaign statistics."""

    cycles: list[AdaptationCycle] = field(default_factory=list)


def run(
    *,
    base_depth: int = 5,
    max_depth: int = 7,
    cycles: int = 3,
    iterations_per_cycle: int = 3,
    domains: int = 8,
    processes: int = 4,
    cores: int = 8,
    seed: int = 0,
) -> AdaptationStudyResult:
    """Run the adapt→solve campaign on an expanding blast wave."""
    mesh = uniform_mesh(depth=base_depth)
    U = blast_wave(mesh, radius=0.06, p_ratio=6.0)
    mass0 = float((U[:, 0] * mesh.cell_volumes).sum())
    cluster = ClusterConfig(processes, cores)
    result = AdaptationStudyResult()

    for cycle in range(cycles):
        # --- adapt to the current solution --------------------------------
        ind = density_gradient_indicator(mesh, U)
        new_mesh = adapt_mesh(
            mesh,
            ind,
            refine_threshold=0.01,
            coarsen_threshold=0.002,
            max_depth=max_depth,
            min_depth=base_depth - 1,
        )
        U = transfer_solution(mesh, new_mesh, U)
        mesh = new_mesh

        # --- levels, partitions, task graphs ------------------------------
        tau = levels_from_depth(mesh, num_levels=3)
        dt_min = float((stable_timesteps(mesh, U) / np.exp2(tau)).min())
        spans = {}
        for strategy in ("SC_OC", "MC_TL"):
            decomp = make_decomposition(
                mesh, tau, domains, processes, strategy=strategy, seed=seed
            )
            dag = generate_task_graph(mesh, tau, decomp)
            spans[strategy] = simulate(dag, cluster, seed=seed).makespan
        # --- solve a few iterations on the MC_TL decomposition ------------
        decomp = make_decomposition(
            mesh, tau, domains, processes, strategy="MC_TL", seed=seed
        )
        solver = TaskDistributedSolver(mesh, tau, decomp, dt_min)
        state = LTSState(U)
        for _ in range(iterations_per_cycle):
            solver.run_iteration(state)
        # Fold outstanding accumulators into the state before the next
        # adaptation (the transfer only sees U).
        state.U += state.acc / mesh.cell_volumes[:, None]
        state.acc[:] = 0.0
        U = state.U

        fine = mesh.cell_centers[mesh.cell_depth == mesh.cell_depth.max()]
        r = (
            float(
                np.median(
                    np.hypot(fine[:, 0] - 0.5, fine[:, 1] - 0.5)
                )
            )
            if len(fine)
            else 0.0
        )
        mass = float((U[:, 0] * mesh.cell_volumes).sum())
        result.cycles.append(
            AdaptationCycle(
                cycle=cycle,
                num_cells=mesh.num_cells,
                front_radius=r,
                mass_error=abs(mass - mass0) / mass0,
                speedup=spans["SC_OC"] / spans["MC_TL"],
            )
        )
    return result


def report(r: AdaptationStudyResult) -> str:
    """Per-cycle table."""
    lines = [
        f"cycle {c.cycle}: {c.num_cells} cells, front radius "
        f"{c.front_radius:.3f}, cumulative mass error {c.mass_error:.2e}, "
        f"MC_TL speedup ×{c.speedup:.2f}"
        for c in r.cycles
    ]
    return "\n".join(lines)
