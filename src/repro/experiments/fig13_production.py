"""Fig. 13 — production validation: MC_TL gain with *real* task
durations.

The paper's final experiment runs MC_TL inside FLUSEPA itself and
still measures ~20% gain "with all the overhead and communication that
goes with it".  Our production stand-in executes every task's actual
finite-volume kernel (mini-FLUSEPA), measures per-task wall-clock
durations, and replays them on the virtual cluster for both
partitioning strategies — so the comparison includes all real cost
effects the cost model misses (cache behaviour, per-task overhead,
NumPy fixed costs on small tasks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import ClusterConfig, simulate
from ..solver import LTSState, TaskDistributedSolver, blast_wave
from ..solver.timestep import stable_timesteps
from ..taskgraph import generate_task_graph
from .common import cached_decomposition, standard_case

__all__ = ["Fig13Result", "run", "report"]


@dataclass
class Fig13Result:
    """Measured-duration comparison between strategies."""

    makespan_sc_oc: float
    makespan_mc_tl: float
    improvement: float
    serial_time_sc_oc: float
    serial_time_mc_tl: float
    tasks_sc_oc: int
    tasks_mc_tl: int


def run(
    *,
    mesh_name: str = "pprime_nozzle",
    domains: int = 12,
    processes: int = 6,
    cores: int = 4,
    scale: int | None = 10,
    seed: int = 0,
    scheme: str = "heun",
) -> Fig13Result:
    """Run the production-replay comparison.

    ``scheme`` defaults to ``"heun"`` — the paper's second-order
    integrator — so the measured kernels are the production ones.

    The default scale (``max_depth=10``, ~100k cells) is one step above
    the other experiments: with very small meshes, per-task fixed
    overhead (NumPy call costs) penalizes MC_TL's finer tasks and masks
    the scheduling gain; at 10⁵+ cells the gain dominates, as it does
    at the paper's 10⁷-cell production scale (see EXPERIMENTS.md).
    """
    mesh, tau = standard_case(mesh_name, scale=scale)
    U0 = blast_wave(mesh)
    # CFL-safe base step for the depth-derived levels: a level-τ cell
    # advances 2**τ·dt_min, which must not exceed its stability bound.
    dt_min = float((stable_timesteps(mesh, U0) / np.exp2(tau)).min())
    cluster = ClusterConfig(processes, cores)

    results = {}
    for strategy in ("SC_OC", "MC_TL"):
        decomp = cached_decomposition(
            mesh_name, domains, processes, strategy, scale=scale, seed=seed
        )
        dag = generate_task_graph(mesh, tau, decomp, scheme=scheme)
        solver = TaskDistributedSolver(
            mesh, tau, decomp, dt_min, dag=dag, scheme=scheme
        )
        solver.run_iteration(LTSState(U0))  # warmup
        it = solver.run_iteration(LTSState(U0))
        trace = simulate(
            dag, cluster, scheduler="eager", durations=it.durations, seed=seed
        )
        results[strategy] = (trace.makespan, it.durations.sum(), dag.num_tasks)

    ms_sc, serial_sc, nt_sc = results["SC_OC"]
    ms_mc, serial_mc, nt_mc = results["MC_TL"]
    return Fig13Result(
        makespan_sc_oc=float(ms_sc),
        makespan_mc_tl=float(ms_mc),
        improvement=1.0 - ms_mc / ms_sc,
        serial_time_sc_oc=float(serial_sc),
        serial_time_mc_tl=float(serial_mc),
        tasks_sc_oc=nt_sc,
        tasks_mc_tl=nt_mc,
    )


def report(r: Fig13Result) -> str:
    """Summary line (paper: ~20% gain in production)."""
    return (
        f"Production replay (measured kernels): SC_OC "
        f"{r.makespan_sc_oc * 1e3:.2f}ms → MC_TL "
        f"{r.makespan_mc_tl * 1e3:.2f}ms "
        f"({100 * r.improvement:.0f}% faster, paper ≈20%). Serial kernel "
        f"time {r.serial_time_sc_oc * 1e3:.1f}ms vs "
        f"{r.serial_time_mc_tl * 1e3:.1f}ms; tasks {r.tasks_sc_oc} vs "
        f"{r.tasks_mc_tl}."
    )
