"""Extension study — sensitivity to the temporal-level distribution.

The paper evaluates three fixed meshes.  This study asks *when* MC_TL
matters: using :func:`repro.temporal.assign_levels_by_fraction` on a
single mesh, the fraction of fine cells is swept while the geometry
stays constant (fine cells are always the smallest, spatially
clustered ones).  The speedup curve shows the regime structure: with
almost no fine cells or almost all fine cells the mesh is effectively
single-level and SC_OC ≈ MC_TL; in between, level classes coexist and
concentrate spatially — the paper's regime — and MC_TL wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import ClusterConfig, simulate
from ..partitioning import make_decomposition
from ..taskgraph import generate_task_graph
from ..temporal import assign_levels_by_fraction
from .common import standard_case

__all__ = ["DistributionSweepResult", "run", "report"]


@dataclass
class DistributionSweepResult:
    """Speedup as a function of the fine-cell fraction."""

    fine_fractions: list[float]
    speedup: np.ndarray
    makespan_sc_oc: np.ndarray
    makespan_mc_tl: np.ndarray


def run(
    *,
    mesh_name: str = "cylinder",
    fine_fractions: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2, 0.4),
    num_levels: int = 3,
    domains: int = 32,
    processes: int = 8,
    cores: int = 16,
    scale: int | None = 9,
    seed: int = 0,
) -> DistributionSweepResult:
    """Sweep the fine-cell fraction at fixed geometry."""
    mesh, _ = standard_case(mesh_name, scale=scale)
    cluster = ClusterConfig(processes, cores)
    sp, ms_sc, ms_mc = [], [], []
    for f0 in fine_fractions:
        rest = (1.0 - f0) / (num_levels - 1)
        fractions = np.array([f0] + [rest] * (num_levels - 1))
        tau = assign_levels_by_fraction(mesh, fractions, seed=seed)
        spans = {}
        for strategy in ("SC_OC", "MC_TL"):
            decomp = make_decomposition(
                mesh, tau, domains, processes, strategy=strategy, seed=seed
            )
            dag = generate_task_graph(mesh, tau, decomp)
            spans[strategy] = simulate(dag, cluster, seed=seed).makespan
        ms_sc.append(spans["SC_OC"])
        ms_mc.append(spans["MC_TL"])
        sp.append(spans["SC_OC"] / spans["MC_TL"])
    return DistributionSweepResult(
        fine_fractions=list(fine_fractions),
        speedup=np.array(sp),
        makespan_sc_oc=np.array(ms_sc),
        makespan_mc_tl=np.array(ms_mc),
    )


def report(r: DistributionSweepResult) -> str:
    """Tabulate the sweep."""
    lines = [
        "fine fraction: "
        + "  ".join(f"{f:>6.2f}" for f in r.fine_fractions),
        "speedup      : "
        + "  ".join(f"{v:>6.2f}" for v in r.speedup),
        "SC_OC        : "
        + "  ".join(f"{v:>6.0f}" for v in r.makespan_sc_oc),
        "MC_TL        : "
        + "  ".join(f"{v:>6.0f}" for v in r.makespan_mc_tl),
    ]
    return "\n".join(lines)
