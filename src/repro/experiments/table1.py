"""Table I — test-mesh characteristics.

For each replica mesh: per-τ cell counts, %cells and %computation,
side by side with the paper's numbers for the original Airbus meshes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh import format_table1_row, level_statistics
from ..mesh.generators import PAPER_CELL_COUNTS, PAPER_CELL_FRACTIONS
from ..pipeline import Pipeline
from .common import standard_scenario

__all__ = ["Table1Result", "run", "report"]

#: Paper "%Computation" rows (per τ ascending) for reference.
PAPER_COMPUTATION_FRACTIONS = {
    "cylinder": np.array([0.044, 0.113, 0.432, 0.412]),
    "cube": np.array([0.097, 0.386, 0.004, 0.513]),
    "pprime_nozzle": np.array([0.284, 0.383, 0.333]),
}


@dataclass
class Table1Result:
    """Replica-vs-paper statistics for the three meshes."""

    names: list[str]
    replica_counts: dict[str, np.ndarray]
    replica_cell_fraction: dict[str, np.ndarray]
    replica_computation_fraction: dict[str, np.ndarray]
    paper_cell_fraction: dict[str, np.ndarray]
    paper_computation_fraction: dict[str, np.ndarray]
    paper_counts: dict[str, int]


def run(*, scale: int | None = None) -> Table1Result:
    """Compute Table I for the replica meshes."""
    names = ["cylinder", "cube", "pprime_nozzle"]
    counts, cf, wf = {}, {}, {}
    pipe = Pipeline()
    for name in names:
        mesh, tau = pipe.case(standard_scenario(name, scale=scale))
        st = level_statistics(mesh, tau)
        counts[name] = st.counts
        cf[name] = st.cell_fraction
        wf[name] = st.computation_fraction
    return Table1Result(
        names=names,
        replica_counts=counts,
        replica_cell_fraction=cf,
        replica_computation_fraction=wf,
        paper_cell_fraction=dict(PAPER_CELL_FRACTIONS),
        paper_computation_fraction=dict(PAPER_COMPUTATION_FRACTIONS),
        paper_counts=dict(PAPER_CELL_COUNTS),
    )


def report(result: Table1Result) -> str:
    """Render the replica Table I with paper reference rows."""
    blocks = []
    pipe = Pipeline()
    for name in result.names:
        mesh, tau = pipe.case(standard_scenario(name))
        st = level_statistics(mesh, tau)
        block = [format_table1_row(name.upper(), st)]
        block.append(
            "paper %Cells "
            + "".join(
                f"  {100 * f:<9.1f}%" for f in result.paper_cell_fraction[name]
            )
            + f"   (original total {result.paper_counts[name]:,} cells)"
        )
        block.append(
            "paper %Comp  "
            + "".join(
                f"  {100 * f:<9.1f}%"
                for f in result.paper_computation_fraction[name]
            )
        )
        blocks.append("\n".join(block))
    return "\n\n".join(blocks)
