"""Ablation studies around the paper's design choices.

1. **Scheduling policies** (§III-C): the paper argues better scheduling
   cannot fix the SC_OC task graph; we quantify this by running every
   scheduler on both strategies' graphs.
2. **Partitioner method** (§V): the paper picks recursive bisection
   over k-way "because it produces higher quality solutions on our
   meshes"; we compare both drivers.
3. **Geometric baselines** (§VIII): RCB and SFC comparators, which
   balance only total cost and ignore connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import SCHEDULERS, ClusterConfig, simulate
from ..graph import edge_cut, imbalance, partition_graph
from ..mesh import mesh_to_dual_graph
from ..partitioning.strategies import _level_indicator_matrix
from .common import cached_task_graph, run_flusim, standard_case

__all__ = [
    "SchedulerAblation",
    "run_scheduler_ablation",
    "MethodAblation",
    "run_method_ablation",
    "BaselineAblation",
    "run_baseline_ablation",
]


@dataclass
class SchedulerAblation:
    """Makespan per (strategy, scheduler)."""

    schedulers: list[str]
    makespan: dict[tuple[str, str], float]

    def best_improvement_within(self, strategy: str) -> float:
        """Best relative gain any scheduler achieves over eager, for a
        fixed partitioning strategy."""
        base = self.makespan[(strategy, "eager")]
        best = min(
            self.makespan[(strategy, s)] for s in self.schedulers
        )
        return 1.0 - best / base


def run_scheduler_ablation(
    *,
    mesh_name: str = "cylinder",
    domains: int = 64,
    processes: int = 16,
    cores: int = 32,
    scale: int | None = None,
    seed: int = 0,
) -> SchedulerAblation:
    """Every scheduler × both strategies."""
    makespan: dict[tuple[str, str], float] = {}
    for strategy in ("SC_OC", "MC_TL"):
        dag = cached_task_graph(
            mesh_name, domains, processes, strategy, scale=scale, seed=seed
        )
        cluster = ClusterConfig(processes, cores)
        for sched in SCHEDULERS:
            trace = simulate(dag, cluster, scheduler=sched, seed=seed)
            makespan[(strategy, sched)] = trace.makespan
    return SchedulerAblation(schedulers=list(SCHEDULERS), makespan=makespan)


@dataclass
class MethodAblation:
    """Recursive bisection vs direct k-way on the MC_TL problem."""

    cut: dict[str, float]
    worst_imbalance: dict[str, float]


def run_method_ablation(
    *,
    mesh_name: str = "cylinder",
    domains: int = 32,
    scale: int | None = None,
    seed: int = 0,
) -> MethodAblation:
    """Partition the MC_TL multi-constraint problem with both drivers."""
    mesh, tau = standard_case(mesh_name, scale=scale)
    g = mesh_to_dual_graph(mesh, vwgt=_level_indicator_matrix(tau))
    cut: dict[str, float] = {}
    imb: dict[str, float] = {}
    for method in ("recursive", "kway"):
        res = partition_graph(g, domains, method=method, seed=seed)
        cut[method] = res.cut
        imb[method] = float(res.imbalance.max())
    return MethodAblation(cut=cut, worst_imbalance=imb)


@dataclass
class BaselineAblation:
    """FLUSIM makespans of the geometric baselines vs SC_OC/MC_TL."""

    strategies: list[str]
    makespan: dict[str, float]
    speedup_vs_sc_oc: dict[str, float]


def run_baseline_ablation(
    *,
    mesh_name: str = "cylinder",
    domains: int = 64,
    processes: int = 16,
    cores: int = 32,
    scale: int | None = None,
    seed: int = 0,
) -> BaselineAblation:
    """Compare RCB and SFC against the graph-based strategies."""
    strategies = ["SC_OC", "MC_TL", "RCB", "SFC"]
    makespan: dict[str, float] = {}
    for s in strategies:
        _, _, m = run_flusim(
            mesh_name, domains, processes, cores, s, scale=scale, seed=seed
        )
        makespan[s] = m.makespan
    speedup = {s: makespan["SC_OC"] / makespan[s] for s in strategies}
    return BaselineAblation(
        strategies=strategies, makespan=makespan, speedup_vs_sc_oc=speedup
    )
