"""Extension study — campaigns under injected faults (chaos study).

The production solver survives transient task failures, stragglers and
silent data corruption through its runtime machinery; this study
demonstrates the reproduction's :mod:`repro.resilience` layer doing
the same, *measurably*.  For each strategy (SC_OC, MC_TL) it runs
three threaded campaigns on the same initial state:

* **bare** — resilience disabled (no guard, no retry, no watchdog):
  the overhead reference;
* **resilient** — guards + retry + watchdog armed, but no faults
  injected: what the safety net costs when nothing goes wrong;
* **chaos** — the same net under a seeded
  :class:`~repro.resilience.faults.FaultPlan` injecting transient
  failures, stragglers and NaN poisoning: the recovery cost (retries,
  rollbacks, wasted seconds) and the proof of correctness — the final
  conserved totals must match the fault-free run's to float tolerance
  (injected transients fire *before* the task body and poisons are
  rolled back, so recovery is exact, not approximate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..resilience import FaultPlan, FaultSpec, GuardConfig
from ..runtime import RetryPolicy
from ..solver import blast_wave
from ..solver.driver import SimulationDriver
from .common import standard_case

__all__ = ["ChaosStudyResult", "run", "report"]

STRATEGIES = ("SC_OC", "MC_TL")


@dataclass
class ChaosStudyResult:
    """Recovery statistics of the chaos campaigns."""

    strategies: list[str]
    iterations: int
    injected: dict[str, dict[str, int]]  # per strategy: kind -> count
    retries: dict[str, int]
    rollbacks: dict[str, int]
    wasted_seconds: dict[str, float]
    totals_delta: dict[str, float]  # |chaos - fault-free| rel, mass/energy
    elapsed_bare: dict[str, float]
    elapsed_resilient: dict[str, float]
    elapsed_chaos: dict[str, float]

    def recovered(self, strategy: str) -> bool:
        """Whether the chaos campaign matched the fault-free physics."""
        return self.totals_delta[strategy] < 1e-9

    def overhead(self, strategy: str) -> float:
        """Resilience-on/faults-off cost over the bare run."""
        bare = self.elapsed_bare[strategy]
        return self.elapsed_resilient[strategy] / max(bare, 1e-300)


def _campaign_elapsed(records) -> float:
    return float(sum(r.elapsed for r in records))


def run(
    *,
    mesh_name: str = "cube",
    scale: int | None = 7,
    iterations: int = 5,
    domains: int = 8,
    processes: int = 4,
    cores: int = 2,
    seed: int = 0,
    transient_rate: float = 0.05,
    straggler_rate: float = 0.03,
    poison_rate: float = 0.01,
) -> ChaosStudyResult:
    """Run the chaos campaigns for both strategies."""
    mesh, _ = standard_case(mesh_name, scale=scale)
    U0 = blast_wave(mesh)

    injected: dict[str, dict[str, int]] = {}
    retries: dict[str, int] = {}
    rollbacks: dict[str, int] = {}
    wasted: dict[str, float] = {}
    delta: dict[str, float] = {}
    el_bare: dict[str, float] = {}
    el_res: dict[str, float] = {}
    el_chaos: dict[str, float] = {}

    for strategy in STRATEGIES:
        common = dict(
            num_domains=domains,
            num_processes=processes,
            strategy=strategy,
            seed=seed,
            executor="threaded",
            cores_per_process=cores,
        )
        # max_drift must sit above the *physical* per-iteration
        # boundary outflow (the domain is open, ~1e-6 relative at the
        # small scales); NaN poisoning is caught by the finite checks,
        # not the drift bound, which only nets gross corruption here.
        armed = dict(
            guard=GuardConfig(max_drift=1e-4, max_consecutive_rollbacks=5),
            retry=RetryPolicy(max_retries=3, backoff=0.001),
            watchdog=30.0,
        )

        # Bare: resilience disabled — the overhead reference.
        bare = SimulationDriver(mesh, U0, **common)
        res_bare = bare.run(iterations)
        el_bare[strategy] = _campaign_elapsed(res_bare.records)

        # Resilient, fault-free: what the safety net costs.
        resilient = SimulationDriver(mesh, U0, **common, **armed)
        res_res = resilient.run(iterations)
        el_res[strategy] = _campaign_elapsed(res_res.records)

        # Chaos: the same net under injected faults.
        plan = FaultPlan(
            specs=(
                FaultSpec("transient", transient_rate),
                FaultSpec("straggler", straggler_rate, delay=0.002),
                FaultSpec("poison", poison_rate),
            ),
            seed=seed + 1,
        )
        chaos = SimulationDriver(mesh, U0, **common, **armed, fault_plan=plan)
        res_chaos = chaos.run(iterations)
        el_chaos[strategy] = _campaign_elapsed(res_chaos.records)

        injected[strategy] = dict(plan.injected)
        retries[strategy] = res_chaos.health.retries
        rollbacks[strategy] = res_chaos.health.rollbacks
        wasted[strategy] = res_chaos.health.wasted_seconds

        ref = res_bare.state.conserved_total(mesh)
        got = res_chaos.state.conserved_total(mesh)
        delta[strategy] = float(
            max(
                abs(got[c] - ref[c]) / max(abs(ref[c]), 1.0)
                for c in (0, 3)
            )
        )

    return ChaosStudyResult(
        strategies=list(STRATEGIES),
        iterations=iterations,
        injected=injected,
        retries=retries,
        rollbacks=rollbacks,
        wasted_seconds=wasted,
        totals_delta=delta,
        elapsed_bare=el_bare,
        elapsed_resilient=el_res,
        elapsed_chaos=el_chaos,
    )


def report(result: ChaosStudyResult) -> str:
    """Human-readable chaos report."""
    lines = [
        "Chaos study — threaded campaigns under injected faults",
        f"  ({result.iterations} iterations per campaign; bare vs "
        "resilient vs chaos)",
        "",
        f"{'strategy':>8}  {'injected (t/s/p)':>18}  {'retries':>7}  "
        f"{'rollbacks':>9}  {'wasted[s]':>9}  {'overhead':>8}  "
        f"{'Δtotals':>9}  recovered",
    ]
    for s in result.strategies:
        inj = result.injected[s]
        inj_str = (
            f"{inj.get('transient', 0)}/{inj.get('straggler', 0)}"
            f"/{inj.get('poison', 0)}"
        )
        lines.append(
            f"{s:>8}  {inj_str:>18}  {result.retries[s]:>7}  "
            f"{result.rollbacks[s]:>9}  {result.wasted_seconds[s]:>9.3f}  "
            f"{result.overhead(s):>7.2f}x  {result.totals_delta[s]:>9.1e}  "
            f"{result.recovered(s)}"
        )
    lines += [
        "",
        "  overhead = resilient-but-fault-free elapsed / bare elapsed",
        "  Δtotals  = rel. mass/energy difference, chaos vs fault-free",
    ]
    return "\n".join(lines)
