"""Fig. 5 — FLUSIM validity: simulator vs real execution.

The paper compares a real FLUSEPA run against FLUSIM with identical
parameters (PPRIME_NOZZLE, 12 domains SC_OC, 6 MPI processes × 4
cores) and observes the same scheduling patterns with a ~20% variance
in iteration time.

Here the "real execution" is the mini-FLUSEPA solver: every task of
the same task graph runs its actual finite-volume kernel and is
wall-clock timed; the measured durations are replayed on the virtual
cluster.  FLUSIM's prediction uses the abstract cost model
(cost ∝ object count).  The comparison reports the relative variance
between the two makespans after normalizing total work — i.e. purely
the *shape* mismatch of the cost model, which is what the paper's 20%
figure measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import ClusterConfig, simulate
from ..pipeline import Pipeline
from ..solver import LTSState, TaskDistributedSolver, blast_wave
from ..solver.timestep import stable_timesteps
from .common import standard_scenario

__all__ = ["Fig5Result", "run", "report"]


@dataclass
class Fig5Result:
    """Model-predicted vs measured-replay schedules."""

    makespan_model: float
    makespan_measured: float
    variance: float  # |model − measured| / measured, after normalization
    efficiency_model: float
    efficiency_measured: float
    num_tasks: int


def run(
    *,
    mesh_name: str = "pprime_nozzle",
    domains: int = 12,
    processes: int = 6,
    cores: int = 4,
    scale: int | None = None,
    seed: int = 0,
    warmup_iterations: int = 1,
    scheme: str = "heun",
) -> Fig5Result:
    """Run the Fig. 5 validation experiment (second-order Heun
    kernels by default, like FLUSEPA)."""
    # One typed pipeline run up to the task graph: mesh, levels and
    # the SC_OC decomposition are all served from the artifact store
    # when previously computed.
    rec = Pipeline().run(
        standard_scenario(
            mesh_name,
            domains,
            processes,
            cores,
            "SC_OC",
            scale=scale,
            seed=seed,
            scheme=scheme,
        ),
        through="taskgraph",
    )
    mesh, tau_depth, decomp, dag = rec.mesh, rec.tau, rec.decomp, rec.dag
    cluster = ClusterConfig(processes, cores)

    # --- FLUSIM prediction from the abstract cost model ---------------
    trace_model = simulate(dag, cluster, scheduler="eager", seed=seed)

    # --- "production" run: real kernels, measured durations -----------
    U0 = blast_wave(mesh)
    # CFL-safe base step for the depth-derived levels.
    dt_min = float(
        (stable_timesteps(mesh, U0) / np.exp2(tau_depth)).min()
    )
    solver = TaskDistributedSolver(
        mesh, tau_depth, decomp, dt_min, dag=dag, scheme=scheme
    )
    state = LTSState(U0)
    for _ in range(warmup_iterations):  # warm caches/JIT-free but fair
        solver.run_iteration(LTSState(U0))
    result = solver.run_iteration(state)
    trace_measured = simulate(
        dag, cluster, scheduler="eager", durations=result.durations, seed=seed
    )

    # Normalize: scale model costs so total work matches measured total
    # work, isolating shape (per-task cost profile) differences.
    scale_factor = result.durations.sum() / max(dag.tasks.cost.sum(), 1e-300)
    makespan_model = trace_model.makespan * scale_factor
    makespan_measured = trace_measured.makespan
    variance = abs(makespan_model - makespan_measured) / makespan_measured
    return Fig5Result(
        makespan_model=float(makespan_model),
        makespan_measured=float(makespan_measured),
        variance=float(variance),
        efficiency_model=trace_model.efficiency(),
        efficiency_measured=trace_measured.efficiency(),
        num_tasks=dag.num_tasks,
    )


def report(r: Fig5Result) -> str:
    """One-paragraph summary matching the paper's claim."""
    return (
        f"FLUSIM vs measured replay (nozzle, SC_OC): model makespan "
        f"{r.makespan_model:.4f}s vs measured {r.makespan_measured:.4f}s "
        f"→ variance {100 * r.variance:.1f}% (paper: ~20%). "
        f"Efficiency model {r.efficiency_model:.2f} / measured "
        f"{r.efficiency_measured:.2f}; {r.num_tasks} tasks."
    )
