"""Extension study — how much communication cost can MC_TL absorb?

The paper expects MC_TL's extra communication volume (Fig. 11b) "to be
overlapped by FLUSEPA thanks to its use of the task-based programming
model", and proposes the dual-phase scheme when it is not (§VII).
This experiment quantifies the assumption with FLUSIM's α/β extension:
sweeping the per-message latency shows where SC_OC/MC_TL cross over,
and where the dual-phase scheme lands between them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import ClusterConfig, CommModel, simulate
from .common import cached_task_graph

__all__ = ["CommSensitivityResult", "run", "report"]


@dataclass
class CommSensitivityResult:
    """Makespans per (strategy, latency)."""

    strategies: list[str]
    latencies: list[float]
    makespan: dict[str, np.ndarray]  # strategy -> per-latency array

    def ratio(self, a: str = "SC_OC", b: str = "MC_TL") -> np.ndarray:
        """Makespan ratio a/b along the latency sweep."""
        return self.makespan[a] / self.makespan[b]

    def crossover_latency(self) -> float | None:
        """First latency where SC_OC ≤ MC_TL (None if MC_TL always
        wins within the sweep)."""
        r = self.ratio()
        idx = np.flatnonzero(r <= 1.0)
        return float(self.latencies[idx[0]]) if len(idx) else None


def run(
    *,
    mesh_name: str = "cylinder",
    domains: int = 64,
    processes: int = 16,
    cores: int = 32,
    latencies: tuple[float, ...] = (0.0, 5.0, 25.0, 50.0, 100.0, 200.0),
    strategies: tuple[str, ...] = ("SC_OC", "MC_TL", "DUAL"),
    scale: int | None = None,
    seed: int = 0,
) -> CommSensitivityResult:
    """Sweep message latency for every strategy."""
    cluster = ClusterConfig(processes, cores)
    makespan: dict[str, np.ndarray] = {}
    for strategy in strategies:
        dag = cached_task_graph(
            mesh_name, domains, processes, strategy, scale=scale, seed=seed
        )
        spans = [
            simulate(
                dag, cluster, comm=CommModel(latency=lat), seed=seed
            ).makespan
            for lat in latencies
        ]
        makespan[strategy] = np.array(spans)
    return CommSensitivityResult(
        strategies=list(strategies),
        latencies=list(latencies),
        makespan=makespan,
    )


def report(r: CommSensitivityResult) -> str:
    """Tabulate the latency sweep."""
    lines = [
        "latency:  " + "  ".join(f"{v:>8.1f}" for v in r.latencies)
    ]
    for s in r.strategies:
        lines.append(
            f"{s:>7s}:  "
            + "  ".join(f"{v:>8.0f}" for v in r.makespan[s])
        )
    lines.append(
        "SC/MC  :  " + "  ".join(f"{v:>8.2f}" for v in r.ratio())
    )
    cx = r.crossover_latency()
    lines.append(
        f"crossover latency: {cx if cx is not None else 'none in sweep'}"
    )
    return "\n".join(lines)
