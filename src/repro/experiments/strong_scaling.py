"""Extension study — strong scaling of the two strategies.

For a fixed mesh and fixed total domain count, the process count is
swept (cores per process fixed).  SC_OC saturates early: once each
process holds few domains, level concentration forces subiteration
starvation that more processes cannot fix.  MC_TL keeps scaling until
the critical path dominates.  This is the classical HPC view of the
paper's result — and the regime where its 20% production gain lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import ClusterConfig, simulate
from .common import cached_task_graph

__all__ = ["StrongScalingResult", "run", "report"]


@dataclass
class StrongScalingResult:
    """Makespans over the process sweep."""

    process_counts: list[int]
    makespan: dict[str, np.ndarray]  # strategy -> per-count array
    parallel_efficiency: dict[str, np.ndarray]

    def speedup_curve(self, strategy: str) -> np.ndarray:
        """Speedup relative to the smallest process count."""
        m = self.makespan[strategy]
        return m[0] / m


def run(
    *,
    mesh_name: str = "cylinder",
    process_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
    domains: int = 64,
    cores: int = 8,
    scale: int | None = None,
    seed: int = 0,
) -> StrongScalingResult:
    """Sweep the process count for both strategies."""
    makespan: dict[str, np.ndarray] = {}
    eff: dict[str, np.ndarray] = {}
    for strategy in ("SC_OC", "MC_TL"):
        spans = []
        effs = []
        for p in process_counts:
            dag = cached_task_graph(
                mesh_name, domains, p, strategy, scale=scale, seed=seed
            )
            trace = simulate(dag, ClusterConfig(p, cores), seed=seed)
            spans.append(trace.makespan)
            effs.append(trace.efficiency())
        makespan[strategy] = np.array(spans)
        eff[strategy] = np.array(effs)
    return StrongScalingResult(
        process_counts=list(process_counts),
        makespan=makespan,
        parallel_efficiency=eff,
    )


def report(r: StrongScalingResult) -> str:
    """Tabulate the scaling curves."""
    lines = [
        "processes : "
        + "  ".join(f"{p:>6d}" for p in r.process_counts)
    ]
    for s in ("SC_OC", "MC_TL"):
        lines.append(
            f"{s:>6s} span: "
            + "  ".join(f"{v:>6.0f}" for v in r.makespan[s])
        )
        lines.append(
            f"{s:>6s} eff : "
            + "  ".join(
                f"{v:>6.2f}" for v in r.parallel_efficiency[s]
            )
        )
    return "\n".join(lines)
