"""Fig. 12 — PPRIME_NOZZLE in FLUSIM: MC_TL ≈ 20% faster.

Same configuration as Fig. 5 (12 domains, 6 processes × 4 cores), both
strategies.  The nozzle's "more intricate structure produces a
slightly smaller, but still considerable, improvement of around 20%".
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import run_flusim

__all__ = ["Fig12Result", "run", "report"]


@dataclass
class Fig12Result:
    """Nozzle FLUSIM comparison."""

    makespan_sc_oc: float
    makespan_mc_tl: float
    improvement: float  # 1 − MC_TL/SC_OC
    efficiency_sc_oc: float
    efficiency_mc_tl: float


def run(
    *,
    mesh_name: str = "pprime_nozzle",
    domains: int = 12,
    processes: int = 6,
    cores: int = 4,
    scale: int | None = None,
    seed: int = 0,
) -> Fig12Result:
    """Run the nozzle FLUSIM comparison."""
    _, _, m_sc = run_flusim(
        mesh_name, domains, processes, cores, "SC_OC", scale=scale, seed=seed
    )
    _, _, m_mc = run_flusim(
        mesh_name, domains, processes, cores, "MC_TL", scale=scale, seed=seed
    )
    return Fig12Result(
        makespan_sc_oc=m_sc.makespan,
        makespan_mc_tl=m_mc.makespan,
        improvement=1.0 - m_mc.makespan / m_sc.makespan,
        efficiency_sc_oc=m_sc.efficiency,
        efficiency_mc_tl=m_mc.efficiency,
    )


def report(r: Fig12Result) -> str:
    """Summary line (paper: ~20% improvement)."""
    return (
        f"NOZZLE FLUSIM: SC_OC {r.makespan_sc_oc:.0f} → MC_TL "
        f"{r.makespan_mc_tl:.0f} ({100 * r.improvement:.0f}% faster, "
        f"paper ≈20%); efficiency {r.efficiency_sc_oc:.2f} → "
        f"{r.efficiency_mc_tl:.2f}"
    )
