"""Extension study — automatic domain-granularity selection.

Implements the paper's concluding perspective: "exploring ways to
automatically determine the best domain granularity with respect to
the target machine's number of cores."  The study runs the tuner for
both strategies under three overhead regimes (free, per-task overhead,
per-task + communication penalty) and reports the selected domain
counts and their makespans.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flusim import ClusterConfig
from ..partitioning import GranularitySearchResult, tune_granularity
from ..pipeline import Pipeline
from .common import standard_scenario

__all__ = ["GranularityStudyResult", "run", "report"]


@dataclass
class GranularityStudyResult:
    """Tuner outcomes per (strategy, regime)."""

    regimes: list[str]
    # (strategy, regime) -> search result
    searches: dict[tuple[str, str], GranularitySearchResult]

    def best_domains(self, strategy: str, regime: str) -> int:
        """Selected domain count for a (strategy, regime) pair."""
        return self.searches[(strategy, regime)].best.domains


def run(
    *,
    mesh_name: str = "cylinder",
    processes: int = 8,
    cores: int = 16,
    task_overhead: float = 2.0,
    comm_cost: float = 0.05,
    scale: int | None = None,
    seed: int = 0,
) -> GranularityStudyResult:
    """Run the tuner for both strategies under three regimes."""
    mesh, tau = Pipeline().case(standard_scenario(mesh_name, scale=scale))
    cluster = ClusterConfig(processes, cores)
    regimes = {
        "free": dict(task_overhead=0.0, comm_cost=0.0),
        "overhead": dict(task_overhead=task_overhead, comm_cost=0.0),
        "overhead+comm": dict(
            task_overhead=task_overhead, comm_cost=comm_cost
        ),
    }
    searches: dict[tuple[str, str], GranularitySearchResult] = {}
    for strategy in ("SC_OC", "MC_TL"):
        for regime, kwargs in regimes.items():
            searches[(strategy, regime)] = tune_granularity(
                mesh,
                tau,
                cluster,
                strategy=strategy,
                seed=seed,
                **kwargs,
            )
    return GranularityStudyResult(
        regimes=list(regimes), searches=searches
    )


def report(r: GranularityStudyResult) -> str:
    """Tabulate selected granularities and makespans."""
    lines = []
    for strategy in ("SC_OC", "MC_TL"):
        for regime in r.regimes:
            s = r.searches[(strategy, regime)]
            curve = "  ".join(
                f"{p.domains}:{p.objective:.0f}" for p in s.evaluated
            )
            lines.append(
                f"{strategy:>6s} / {regime:<14s} best={s.best.domains:<4d} "
                f"(makespan {s.best.makespan:.0f}, comm "
                f"{s.best.comm_volume}) | {curve}"
            )
    return "\n".join(lines)
