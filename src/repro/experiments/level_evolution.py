"""Extension study — do temporal levels really barely evolve?

The paper's whole methodology rests on §III-A's observation: "the
temporal levels of the cells experience minimal evolution across
iterations — hence, optimizing the entire computation is equivalent to
optimizing an individual iteration."  This study verifies the claim
with the real solver: a multi-iteration blast-wave campaign on the
CUBE replica tracks, per iteration, how many cells change level (with
production-style anchored-reference hysteresis re-leveling) and how
often the decomposition must be rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..solver import blast_wave
from ..solver.driver import SimulationDriver
from .common import standard_case

__all__ = ["LevelEvolutionResult", "run", "report"]


@dataclass
class LevelEvolutionResult:
    """Campaign-level drift statistics."""

    iterations: int
    level_changes: list[int]
    drift_fraction: list[float]
    num_repartitions: int
    num_cells: int


def run(
    *,
    mesh_name: str = "cube",
    iterations: int = 8,
    num_domains: int = 8,
    num_processes: int = 4,
    strategy: str = "MC_TL",
    repartition_threshold: float = 0.05,
    scale: int | None = 8,
    seed: int = 0,
) -> LevelEvolutionResult:
    """Run the campaign and collect per-iteration drift."""
    mesh, _ = standard_case(mesh_name, scale=scale)
    U0 = blast_wave(mesh, center=(0.2, 0.25), radius=0.05, p_ratio=3.0)
    driver = SimulationDriver(
        mesh,
        U0,
        num_domains=num_domains,
        num_processes=num_processes,
        strategy=strategy,
        num_levels=4,
        relevel_every=1,
        repartition_threshold=repartition_threshold,
        seed=seed,
    )
    result = driver.run(iterations)
    changes = [r.level_changes for r in result.records]
    return LevelEvolutionResult(
        iterations=iterations,
        level_changes=changes,
        drift_fraction=[c / mesh.num_cells for c in changes],
        num_repartitions=result.num_repartitions,
        num_cells=mesh.num_cells,
    )


def report(r: LevelEvolutionResult) -> str:
    """Per-iteration drift table plus the verdict."""
    rows = "  ".join(f"{100 * d:.1f}%" for d in r.drift_fraction)
    return (
        f"level drift per iteration ({r.num_cells} cells): {rows}\n"
        f"repartitions: {r.num_repartitions}/{r.iterations} — after the "
        "initial transient, levels barely evolve (paper §III-A)."
    )
