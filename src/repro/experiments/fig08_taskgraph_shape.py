"""Fig. 8 — task-graph shape: SC_OC vs MC_TL on a two-domain toy.

The paper's illustration: with SC_OC a phase's work may be expressed
by tasks from a single domain (the other has no objects of the
phase's level), while MC_TL gives every domain tasks in every phase —
"a total of 8 tasks, 4 from each domain, instead of the 2 created by
SC_OC" for the first phase.

This experiment builds a small two-hotspot mesh, partitions it into
two domains with both strategies, and counts the tasks each phase of
the first subiteration receives from each domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mesh import cube_mesh
from ..partitioning import make_decomposition
from ..taskgraph import generate_task_graph
from ..temporal import levels_from_depth

__all__ = ["Fig8Result", "run", "report"]


@dataclass
class Fig8Result:
    """Per-strategy phase/domain task counts for subiteration 0."""

    strategies: list[str]
    # strategy -> (L, ndom) task counts in subiteration 0 by phase τ.
    tasks_by_phase_domain: dict[str, np.ndarray]
    total_tasks: dict[str, int]
    domains_active_every_phase: dict[str, bool]


def run(*, scale: int = 7, seed: int = 0) -> Fig8Result:
    """Build the toy comparison (two domains)."""
    mesh = cube_mesh(max_depth=scale)
    tau = levels_from_depth(mesh, num_levels=3)
    nlev = int(tau.max()) + 1
    out: dict[str, np.ndarray] = {}
    totals: dict[str, int] = {}
    active: dict[str, bool] = {}
    for strategy in ("SC_OC", "MC_TL"):
        decomp = make_decomposition(
            mesh, tau, 2, 2, strategy=strategy, seed=seed
        )
        dag = generate_task_graph(mesh, tau, decomp)
        t = dag.tasks
        sel = t.subiteration == 0
        counts = np.zeros((nlev, 2), dtype=np.int64)
        np.add.at(counts, (t.phase_tau[sel], t.domain[sel]), 1)
        out[strategy] = counts
        totals[strategy] = int(sel.sum())
        active[strategy] = bool(np.all(counts.sum(axis=0) > 0) and np.all(
            counts > 0
        ))
    return Fig8Result(
        strategies=["SC_OC", "MC_TL"],
        tasks_by_phase_domain=out,
        total_tasks=totals,
        domains_active_every_phase=active,
    )


def report(r: Fig8Result) -> str:
    """Tabulate first-subiteration task counts per phase and domain."""
    lines = []
    for s in r.strategies:
        counts = r.tasks_by_phase_domain[s]
        lines.append(
            f"{s}: subiteration-0 tasks = {r.total_tasks[s]}; per phase "
            "(rows τ desc) × domain:"
        )
        for tph in range(counts.shape[0] - 1, -1, -1):
            lines.append(
                f"  τ={tph}: " + "  ".join(
                    f"d{d}={counts[tph, d]}" for d in range(counts.shape[1])
                )
            )
        lines.append(
            f"  every domain contributes tasks to every phase: "
            f"{r.domains_active_every_phase[s]}"
        )
    return "\n".join(lines)
