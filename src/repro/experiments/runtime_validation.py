"""Extension study — real threaded execution of the task graph.

The paper's production runs execute the task graph with StarPU worker
threads; this study does the same with :mod:`repro.runtime`: the real
finite-volume kernels run on worker threads grouped into emulated
processes, producing a *real* execution trace (not a simulation, not a
replay).  We verify the physics is bit-compatible with serial
execution, and compare the two strategies' real traces.

Note: on a single-core host the threads time-share, so absolute
wall-clock does not speed up; the trace-level comparison (occupancy,
per-process balance) is hardware-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime import run_iteration_threaded
from ..solver import LTSState, TaskDistributedSolver, blast_wave
from ..solver.timestep import stable_timesteps
from .common import cached_decomposition, standard_case

__all__ = ["RuntimeValidationResult", "run", "report"]


@dataclass
class RuntimeValidationResult:
    """Threaded-execution comparison between strategies."""

    strategies: list[str]
    elapsed: dict[str, float]
    efficiency: dict[str, float]
    busy_balance: dict[str, float]  # max/mean of per-process busy time
    matches_serial: dict[str, bool]


def run(
    *,
    mesh_name: str = "pprime_nozzle",
    domains: int = 12,
    processes: int = 6,
    cores: int = 2,
    scale: int | None = None,
    seed: int = 0,
) -> RuntimeValidationResult:
    """Execute one iteration with real threads for both strategies."""
    mesh, tau = standard_case(mesh_name, scale=scale)
    U0 = blast_wave(mesh)
    dt_min = float((stable_timesteps(mesh, U0) / np.exp2(tau)).min())

    elapsed: dict[str, float] = {}
    efficiency: dict[str, float] = {}
    balance: dict[str, float] = {}
    matches: dict[str, bool] = {}
    for strategy in ("SC_OC", "MC_TL"):
        decomp = cached_decomposition(
            mesh_name, domains, processes, strategy, scale=scale, seed=seed
        )
        solver = TaskDistributedSolver(mesh, tau, decomp, dt_min)
        serial_state = LTSState(U0)
        solver.run_iteration(serial_state)

        threaded_state = LTSState(U0)
        run_res = run_iteration_threaded(
            solver, threaded_state, cores_per_process=cores
        )
        trace = run_res.result.trace
        busy = trace.busy_time_per_process()
        elapsed[strategy] = run_res.result.elapsed
        efficiency[strategy] = trace.efficiency()
        balance[strategy] = float(busy.max() / max(busy.mean(), 1e-300))
        matches[strategy] = bool(
            np.allclose(threaded_state.U, serial_state.U, atol=1e-11)
        )
    return RuntimeValidationResult(
        strategies=["SC_OC", "MC_TL"],
        elapsed=elapsed,
        efficiency=efficiency,
        busy_balance=balance,
        matches_serial=matches,
    )


def report(r: RuntimeValidationResult) -> str:
    """Per-strategy summary of the real threaded runs."""
    lines = []
    for s in r.strategies:
        lines.append(
            f"{s}: elapsed {r.elapsed[s] * 1e3:.1f} ms, trace efficiency "
            f"{r.efficiency[s]:.2f}, busy balance {r.busy_balance[s]:.2f}, "
            f"physics matches serial: {r.matches_serial[s]}"
        )
    return "\n".join(lines)
