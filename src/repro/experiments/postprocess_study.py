"""Extension study — connectivity post-processing of MC_TL partitions.

Implements and evaluates the paper's concluding perspective: "develop
post-processing techniques to minimize the artifacts produced by
partitioners when constrained by many criteria — they tend to create
disconnected subdomains that increase the number of domain borders
and, thus, the number of communications and tasks."

The study partitions with MC_TL, runs the reconnection pass
(:func:`repro.graph.reconnect_parts`), and compares fragments,
communication volume, imbalance and simulated makespan before/after.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import ClusterConfig, simulate, taskgraph_comm_volume
from ..graph import reconnect_parts
from ..mesh.dual import mesh_to_dual_graph
from ..partitioning import DomainDecomposition
from ..partitioning.strategies import _level_indicator_matrix, mc_tl_partition
from ..taskgraph import generate_task_graph
from .common import standard_case

__all__ = ["PostprocessResult", "run", "report"]


@dataclass
class PostprocessResult:
    """Before/after metrics of the reconnection pass."""

    fragments_before: int
    fragments_after: int
    moved_vertices: int
    imbalance_before: float
    imbalance_after: float
    comm_before: int
    comm_after: int
    makespan_before: float
    makespan_after: float


def run(
    *,
    mesh_name: str = "cylinder",
    domains: int = 32,
    processes: int = 8,
    cores: int = 16,
    imbalance_tol: float = 1.30,
    scale: int | None = None,
    seed: int = 0,
) -> PostprocessResult:
    """Partition with MC_TL, reconnect, and compare."""
    mesh, tau = standard_case(mesh_name, scale=scale)
    part = mc_tl_partition(mesh, tau, domains, seed=seed)
    g = mesh_to_dual_graph(mesh, vwgt=_level_indicator_matrix(tau))
    res = reconnect_parts(g, part, domains, imbalance_tol=imbalance_tol)

    cluster = ClusterConfig(processes, cores)
    spans = []
    comms = []
    for labels in (part, res.part):
        decomp = DomainDecomposition.block_mapping(
            labels, domains, processes, strategy="MC_TL"
        )
        dag = generate_task_graph(mesh, tau, decomp)
        comms.append(taskgraph_comm_volume(dag))
        spans.append(simulate(dag, cluster, seed=seed).makespan)

    return PostprocessResult(
        fragments_before=res.fragments_before,
        fragments_after=res.fragments_after,
        moved_vertices=res.moved_vertices,
        imbalance_before=res.imbalance_before,
        imbalance_after=res.imbalance_after,
        comm_before=comms[0],
        comm_after=comms[1],
        makespan_before=float(spans[0]),
        makespan_after=float(spans[1]),
    )


def report(r: PostprocessResult) -> str:
    """One-paragraph before/after summary."""
    return (
        f"MC_TL reconnection pass: fragments {r.fragments_before} → "
        f"{r.fragments_after} ({r.moved_vertices} cells moved); "
        f"comm volume {r.comm_before} → {r.comm_after}; worst level "
        f"imbalance {r.imbalance_before:.2f} → {r.imbalance_after:.2f}; "
        f"makespan {r.makespan_before:.0f} → {r.makespan_after:.0f}"
    )
