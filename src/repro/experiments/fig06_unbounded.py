"""Fig. 6 — idleness persists with unbounded cores.

The paper's §III-C thought experiment: 64 domains on 64 MPI processes,
each with an effectively unlimited number of cores and eager
scheduling (optimal in this regime, since every ready task starts
immediately).  Even so, composite processes exhibit idle periods — the
task graph's *shape*, not the scheduling policy, is the bottleneck.

The experiment reports per-process idle fractions and verifies the
schedule equals the DAG's earliest-start-time schedule (eager with
unbounded cores is optimal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import run_flusim

__all__ = ["Fig6Result", "run", "report"]


@dataclass
class Fig6Result:
    """Unbounded-cores idleness measurements."""

    makespan: float
    critical_path: float
    idle_fraction_per_process: np.ndarray
    mean_idle_fraction: float
    sc_oc_strategy: str = "SC_OC"


def run(
    *,
    mesh_name: str = "cylinder",
    domains: int = 64,
    processes: int = 64,
    scale: int | None = None,
    seed: int = 0,
) -> Fig6Result:
    """Run the unbounded-cores experiment (SC_OC, eager)."""
    dag, trace, metrics = run_flusim(
        mesh_name, domains, processes, None, "SC_OC", scale=scale, seed=seed
    )
    idle = np.array(
        [
            trace.process_idle_time(p) / trace.makespan
            for p in range(processes)
        ]
    )
    return Fig6Result(
        makespan=metrics.makespan,
        critical_path=metrics.critical_path,
        idle_fraction_per_process=idle,
        mean_idle_fraction=float(idle.mean()),
    )


def report(r: Fig6Result) -> str:
    """Summary: even with unlimited cores, processes idle."""
    return (
        f"Unbounded cores, SC_OC, eager: makespan {r.makespan:.0f} "
        f"(= critical path {r.critical_path:.0f}); mean composite-process "
        f"idle fraction {100 * r.mean_idle_fraction:.0f}% "
        f"(max {100 * r.idle_fraction_per_process.max():.0f}%) — idleness "
        "persists without any resource limit, so scheduling policy is not "
        "the root cause (paper §III-C)."
    )
