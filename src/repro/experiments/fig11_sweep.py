"""Fig. 11 — behaviour vs the number of domains.

(a) Makespan ratio SC_OC/MC_TL for increasing domain counts: MC_TL
always wins (ratio > 1) and the ratio decreases for larger counts —
finer granularity lets pipelining partially hide SC_OC's imbalance.

(b) Estimated communication volume (task-graph edges crossing process
boundaries): MC_TL pays more communication, increasingly so with the
domain count, since balancing all levels breaks domain contiguity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flusim import taskgraph_comm_volume
from .common import run_flusim

__all__ = ["Fig11Result", "run", "report"]


@dataclass
class Fig11Result:
    """Sweep series per mesh: ratios and communication volumes."""

    meshes: list[str]
    domain_counts: list[int]
    # mesh -> array over domain_counts
    ratio: dict[str, np.ndarray]  # makespan SC_OC / MC_TL (Fig 11a)
    comm_sc_oc: dict[str, np.ndarray]  # (Fig 11b)
    comm_mc_tl: dict[str, np.ndarray]


def run(
    *,
    meshes: tuple[str, ...] = ("cylinder", "cube"),
    domain_counts: tuple[int, ...] = (16, 32, 64, 128),
    processes: int = 16,
    cores: int = 32,
    scale: int | None = None,
    seed: int = 0,
) -> Fig11Result:
    """Sweep the domain count for both strategies and meshes."""
    ratio: dict[str, np.ndarray] = {}
    c_sc: dict[str, np.ndarray] = {}
    c_mc: dict[str, np.ndarray] = {}
    for name in meshes:
        rr, cs, cm = [], [], []
        for nd in domain_counts:
            rec_sc = run_flusim(
                name, nd, processes, cores, "SC_OC", scale=scale, seed=seed
            )
            rec_mc = run_flusim(
                name, nd, processes, cores, "MC_TL", scale=scale, seed=seed
            )
            rr.append(rec_sc.metrics.makespan / rec_mc.metrics.makespan)
            cs.append(taskgraph_comm_volume(rec_sc.dag))
            cm.append(taskgraph_comm_volume(rec_mc.dag))
        ratio[name] = np.array(rr)
        c_sc[name] = np.array(cs, dtype=np.int64)
        c_mc[name] = np.array(cm, dtype=np.int64)
    return Fig11Result(
        meshes=list(meshes),
        domain_counts=list(domain_counts),
        ratio=ratio,
        comm_sc_oc=c_sc,
        comm_mc_tl=c_mc,
    )


def report(r: Fig11Result) -> str:
    """Tabulate the sweep series."""
    lines = ["domains: " + "  ".join(f"{d:>6d}" for d in r.domain_counts)]
    for name in r.meshes:
        lines.append(
            f"{name:>9s} ratio SC_OC/MC_TL: "
            + "  ".join(f"{v:6.2f}" for v in r.ratio[name])
        )
        lines.append(
            f"{name:>9s} comm SC_OC: "
            + "  ".join(f"{v:6d}" for v in r.comm_sc_oc[name])
        )
        lines.append(
            f"{name:>9s} comm MC_TL: "
            + "  ".join(f"{v:6d}" for v in r.comm_mc_tl[name])
        )
    return "\n".join(lines)
