"""Experiment registry — the single source of truth for which
experiment harnesses exist.

The ``repro experiment`` CLI derives its ``choices`` from this map,
so a new experiment module registered here is immediately runnable
from the command line and can't silently drift out of the CLI list.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable

__all__ = ["Experiment", "EXPERIMENTS", "available", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One runnable harness: a module with ``run()``/``report()``.

    ``run_kwargs`` are fixed arguments (e.g. the strategy for the
    fig07/fig10 pair); ``takes_scale`` says whether ``run`` accepts
    the CLI's ``--scale`` mesh-depth override.
    """

    module: str
    run_kwargs: tuple[tuple[str, Any], ...] = ()
    takes_scale: bool = True

    def run_report(self, scale: int | None = None) -> str:
        """Execute the harness and render its report."""
        mod = import_module(f"repro.experiments.{self.module}")
        kwargs = dict(self.run_kwargs)
        if self.takes_scale and scale is not None:
            kwargs["scale"] = scale
        return mod.report(mod.run(**kwargs))


#: CLI name → experiment (sorted rendering is up to the caller).
EXPERIMENTS: dict[str, Experiment] = {
    "fig05": Experiment("fig05_validation"),
    "fig06": Experiment("fig06_unbounded"),
    "fig07": Experiment(
        "fig07_10_characteristics", (("strategy", "SC_OC"),)
    ),
    "fig08": Experiment("fig08_taskgraph_shape", takes_scale=False),
    "fig09": Experiment("fig09_speedup"),
    "fig10": Experiment(
        "fig07_10_characteristics", (("strategy", "MC_TL"),)
    ),
    "fig11": Experiment("fig11_sweep"),
    "fig12": Experiment("fig12_nozzle"),
    "fig13": Experiment("fig13_production"),
    "dual": Experiment("dual_phase"),
    "comm": Experiment("comm_sensitivity"),
    "postprocess": Experiment("postprocess_study"),
    "granularity": Experiment("granularity_study"),
    "levels": Experiment("level_evolution"),
    "runtime": Experiment("runtime_validation"),
    "octree3d": Experiment("octree3d", takes_scale=False),
    "multi": Experiment("multi_iteration"),
    "scaling": Experiment("strong_scaling"),
    "distribution": Experiment(
        "distribution_sensitivity", takes_scale=False
    ),
    "chaos": Experiment("chaos_study"),
}


def available() -> list[str]:
    """Registered experiment names, CLI order."""
    return list(EXPERIMENTS)


def run_experiment(name: str, *, scale: int | None = None) -> str:
    """Run a registered experiment and return its report text."""
    try:
        exp = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(available())}"
        ) from None
    return exp.run_report(scale)
