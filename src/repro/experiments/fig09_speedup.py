"""Fig. 9 — the headline result: MC_TL ≈ 2× faster than SC_OC.

CYLINDER and CUBE, 128 domains, executed by FLUSIM on 16 MPI processes
of 32 cores each.  The paper's traces show "a clear visual
representation of an acceleration factor of 2 in execution time by
applying the new MC_TL strategy".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pipeline import RunRecord
from .common import run_flusim

__all__ = ["Fig9Result", "run", "report"]


@dataclass
class Fig9Result:
    """Makespans and speedups per mesh."""

    meshes: list[str]
    makespan_sc_oc: dict[str, float]
    makespan_mc_tl: dict[str, float]
    speedup: dict[str, float]
    efficiency_sc_oc: dict[str, float]
    efficiency_mc_tl: dict[str, float]
    total_work: dict[str, float]
    # Per-(mesh, strategy) pipeline runs, with per-stage cache
    # provenance (``records[name, strategy].provenance``).
    records: dict[tuple[str, str], RunRecord] | None = None


def run(
    *,
    meshes: tuple[str, ...] = ("cylinder", "cube"),
    domains: int = 128,
    processes: int = 16,
    cores: int = 32,
    scale: int | None = None,
    seed: int = 0,
) -> Fig9Result:
    """Run the SC_OC vs MC_TL comparison on both meshes."""
    ms_sc, ms_mc, sp, eff_sc, eff_mc, tw = {}, {}, {}, {}, {}, {}
    records: dict[tuple[str, str], RunRecord] = {}
    for name in meshes:
        rec_sc = run_flusim(
            name, domains, processes, cores, "SC_OC", scale=scale, seed=seed
        )
        rec_mc = run_flusim(
            name, domains, processes, cores, "MC_TL", scale=scale, seed=seed
        )
        records[(name, "SC_OC")] = rec_sc
        records[(name, "MC_TL")] = rec_mc
        m_sc, m_mc = rec_sc.metrics, rec_mc.metrics
        ms_sc[name] = m_sc.makespan
        ms_mc[name] = m_mc.makespan
        sp[name] = m_sc.makespan / m_mc.makespan
        eff_sc[name] = m_sc.efficiency
        eff_mc[name] = m_mc.efficiency
        tw[name] = rec_sc.dag.total_work()
        # Invariant: the total work must not depend on the strategy.
        assert abs(rec_sc.dag.total_work() - rec_mc.dag.total_work()) < 1e-9
    return Fig9Result(
        meshes=list(meshes),
        makespan_sc_oc=ms_sc,
        makespan_mc_tl=ms_mc,
        speedup=sp,
        efficiency_sc_oc=eff_sc,
        efficiency_mc_tl=eff_mc,
        total_work=tw,
        records=records,
    )


def report(r: Fig9Result) -> str:
    """Per-mesh speedup lines (paper: ×2 for both meshes)."""
    lines = []
    for name in r.meshes:
        lines.append(
            f"{name.upper()}: SC_OC makespan {r.makespan_sc_oc[name]:.0f} → "
            f"MC_TL {r.makespan_mc_tl[name]:.0f} "
            f"(speedup ×{r.speedup[name]:.2f}, paper ≈×2); efficiency "
            f"{r.efficiency_sc_oc[name]:.2f} → {r.efficiency_mc_tl[name]:.2f}"
        )
    return "\n".join(lines)
