"""Experiment harnesses — one module per table/figure of the paper.

==================  ==========================================
module              reproduces
==================  ==========================================
table1              Table I (mesh characteristics)
fig05_validation    Fig. 5 (FLUSIM vs measured execution)
fig06_unbounded     Fig. 6 (idleness with unbounded cores)
fig07_10_...        Figs. 7 & 10 (domain characteristics)
fig08_...           Fig. 8 (task-graph shape, 2-domain toy)
fig09_speedup       Fig. 9 (the ×2 speedup)
fig11_sweep         Fig. 11a/b (domain-count sweep)
fig12_nozzle        Fig. 12 (nozzle FLUSIM, ~20%)
fig13_production    Fig. 13 (production replay, ~20%)
dual_phase          §VII perspective (MC_TL→SC_OC dual phase)
ablations           schedulers, RB-vs-kway, RCB/SFC baselines
==================  ==========================================

Extension studies beyond the paper's figures:

==========================  =======================================
comm_sensitivity            α/β link-cost sweep (overlap assumption)
postprocess_study           reconnecting fragmented MC_TL domains
granularity_study           automatic domain-count tuning
level_evolution             §III-A stationarity, verified with solver
runtime_validation          real threaded execution of the kernels
octree3d                    the phenomenon on a true 3D octree mesh
multi_iteration             cross-iteration pipelining (steady state)
distribution_sensitivity    when does MC_TL matter? (τ-mix sweep)
strong_scaling              SC_OC saturates; MC_TL keeps scaling
chaos_study                 campaigns under injected faults
==========================  =======================================
"""

from . import (
    ablations,
    adaptation_study,
    chaos_study,
    comm_sensitivity,
    distribution_sensitivity,
    dual_phase,
    fig05_validation,
    fig06_unbounded,
    fig07_10_characteristics,
    fig08_taskgraph_shape,
    fig09_speedup,
    fig11_sweep,
    fig12_nozzle,
    fig13_production,
    granularity_study,
    level_evolution,
    multi_iteration,
    octree3d,
    postprocess_study,
    runtime_validation,
    strong_scaling,
    table1,
)
from .common import (
    NUM_LEVELS,
    PAPER_CONFIGS,
    cached_decomposition,
    cached_task_graph,
    run_flusim,
    standard_case,
    standard_scenario,
)
from .registry import EXPERIMENTS, available, run_experiment

__all__ = [
    "table1",
    "fig05_validation",
    "fig06_unbounded",
    "fig07_10_characteristics",
    "fig08_taskgraph_shape",
    "fig09_speedup",
    "fig11_sweep",
    "fig12_nozzle",
    "fig13_production",
    "dual_phase",
    "ablations",
    "adaptation_study",
    "chaos_study",
    "comm_sensitivity",
    "distribution_sensitivity",
    "multi_iteration",
    "strong_scaling",
    "postprocess_study",
    "granularity_study",
    "level_evolution",
    "octree3d",
    "runtime_validation",
    "standard_case",
    "standard_scenario",
    "cached_decomposition",
    "cached_task_graph",
    "run_flusim",
    "NUM_LEVELS",
    "PAPER_CONFIGS",
    "EXPERIMENTS",
    "available",
    "run_experiment",
]
