"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print the replica Table I with paper reference rows.
``experiment <name>``
    Run one experiment harness (the choices derive from the
    experiment registry, :data:`repro.experiments.EXPERIMENTS`) and
    print its report.
``pipeline``
    Run the typed mesh→partition→DAG→schedule pipeline on a named
    scenario, optionally sweeping options (``--sweep
    domains=32,64,128``) and printing per-stage cache provenance
    (``--explain``); ``pipeline scenarios`` lists the registry.
``gantt``
    Simulate a case and print the composite-process Gantt chart for
    both strategies.
``mesh <name>``
    Generate a replica mesh, print its summary, optionally save it.
``bench``
    Run the hot-path microbenchmark suites (``--suite partitioner``,
    ``taskgraph``, ``flusim``, the opt-in paper-scale ``scale`` chain,
    or ``all``); optionally compare against (or update) the matching
    committed ``BENCH_<suite>.json`` baseline.
``campaign``
    Run a multi-iteration solver campaign with optional physics
    guards, fault injection, checkpointing and resume.
``fuzz``
    Run the seeded adversarial fuzzing harness (partition contracts,
    fast-vs-reference kernel differentials, task-DAG invariants).
``serve``
    The overload-safe scenario job service over a filesystem spool:
    ``serve run`` starts the daemon (drains on SIGTERM/SIGINT, sheds
    load under resource pressure), ``serve submit``/``status``/
    ``result`` are the client side (content-addressed dedup, typed
    JobFailed with partial provenance, worker-death retries,
    admission-control rejections with a retry-after hint), ``serve
    status --health`` reads the daemon's liveness/readiness/pressure
    files, and ``serve deadletter list|show|retry|purge`` operates the
    poison-job quarantine and its circuit breakers.
``store doctor``
    Inspect (or ``--flush``) the on-disk artifact store: entries,
    bytes, active/stale claims, quarantined corruption.
``gc``
    Sweep stale shared-memory segments left by dead processes; with
    ``--spool DIR`` also dead daemons' spool litter (tmp files, orphan
    work dirs).

The global ``--artifacts DIR`` option (before the subcommand) enables
the content-addressed on-disk artifact store for every command that
executes the pipeline chain, so meshes/partitions/task graphs are
computed once and reused across invocations; ``--artifacts default``
uses ``~/.cache/repro`` (or ``$REPRO_ARTIFACTS``).

User-facing failures (bad paths, invalid sizes, corrupt checkpoints)
exit nonzero with a one-line message; pass ``--debug`` (before the
subcommand) to re-raise with the full traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

__all__ = ["main"]


def _apply_jobs(args: argparse.Namespace) -> None:
    if getattr(args, "jobs", None) is not None:
        from .pipeline import set_default_n_jobs

        set_default_n_jobs(args.jobs)


def _apply_artifacts(args: argparse.Namespace) -> None:
    """Install a disk-backed default store when ``--artifacts`` was
    given (``default`` resolves to ``$REPRO_ARTIFACTS`` /
    ``~/.cache/repro``)."""
    root = getattr(args, "artifacts", None)
    if root is None:
        return
    from .pipeline import ArtifactStore, default_cache_root, set_default_store

    path = default_cache_root() if root == "default" else root
    set_default_store(ArtifactStore(path))


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import table1

    _apply_artifacts(args)
    print(table1.report(table1.run(scale=args.scale)))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments.registry import run_experiment

    _apply_jobs(args)
    _apply_artifacts(args)
    print(run_experiment(args.name, scale=args.scale))
    return 0


def _parse_option_value(key: str, raw: str):
    """Parse one scenario option value from the command line."""
    if raw.lower() in ("none", "null"):
        return None
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .pipeline import (
        SCENARIOS,
        expand_sweep,
        get_scenario,
        run_batch,
    )

    _apply_jobs(args)
    _apply_artifacts(args)

    if args.action == "scenarios":
        for name, sc in SCENARIOS.items():
            print(
                f"{name:>18s}: mesh={sc.mesh.name} "
                f"domains={sc.partition.domains} "
                f"processes={sc.partition.processes} "
                f"cores={sc.schedule.cores} "
                f"strategy={sc.partition.strategy}"
            )
        return 0

    overrides = {}
    for item in args.set or []:
        key, _, raw = item.partition("=")
        if not _:
            raise ValueError(f"--set expects key=value, got {item!r}")
        overrides[key] = _parse_option_value(key, raw)
    base = get_scenario(args.scenario, **overrides)

    sweep: dict[str, list] = {}
    for item in args.sweep or []:
        key, _, raw = item.partition("=")
        if not _ or not raw:
            raise ValueError(
                f"--sweep expects key=v1,v2,..., got {item!r}"
            )
        sweep[key] = [
            _parse_option_value(key, v) for v in raw.split(",")
        ]

    import dataclasses

    def option_of(sc, key: str):
        if key == "mesh":
            return sc.mesh.name
        if key == "seed":
            return sc.partition.seed
        for f in dataclasses.fields(sc):
            cfg = getattr(sc, f.name)
            if key in {g.name for g in dataclasses.fields(cfg)}:
                return getattr(cfg, key)
        return "?"

    scenarios = expand_sweep(base, sweep)
    records = run_batch(
        scenarios, n_jobs=args.jobs, through=args.through
    )
    for sc, rec in zip(scenarios, records):
        swept = " ".join(f"{k}={option_of(sc, k)}" for k in sweep)
        head = f"scenario {args.scenario}" + (f" [{swept}]" if swept else "")
        if rec.metrics is not None:
            print(
                f"{head}: makespan {rec.metrics.makespan:.1f}, "
                f"efficiency {rec.metrics.efficiency:.3f}, "
                f"cache hits {rec.cache_hits}/{len(rec.provenance)}"
            )
        else:
            print(
                f"{head}: through={args.through}, "
                f"cache hits {rec.cache_hits}/{len(rec.provenance)}"
            )
        if args.explain:
            print(rec.explain())
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from .experiments.common import run_flusim
    from .viz import render_process_gantt

    _apply_jobs(args)
    _apply_artifacts(args)
    for strategy in ("SC_OC", "MC_TL"):
        dag, trace, metrics = run_flusim(
            args.mesh,
            args.domains,
            args.processes,
            args.cores,
            strategy,
            scale=args.scale,
        )
        print(f"=== {strategy}: makespan {metrics.makespan:.0f}, "
              f"efficiency {metrics.efficiency:.2f} ===")
        print(render_process_gantt(trace, dag, width=args.width))
        print()
    return 0


def _cmd_mesh(args: argparse.Namespace) -> int:
    from .experiments.common import standard_case
    from .mesh import format_table1_row, level_statistics, save_mesh

    _apply_artifacts(args)
    mesh, tau = standard_case(args.name, scale=args.scale)
    print(format_table1_row(args.name.upper(), level_statistics(mesh, tau)))
    print(mesh.summary())
    if args.map:
        from .viz import render_level_map

        print("\ntemporal-level map (paper Fig. 3 analogue):")
        print(render_level_map(mesh, tau, width=72, height=30))
    if args.output:
        save_mesh(mesh, args.output)
        print(f"saved to {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import SUITES, compare_results, get_suite, load_baseline, save_baseline

    _apply_artifacts(args)
    if args.compare and not os.path.exists(args.compare):
        print(f"no baseline at {args.compare}", file=sys.stderr)
        return 2

    # "all" expands to the cheap default suites only; the scale suite
    # (minutes, 1M+-cell meshes) must be requested by name.
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    if len(suites) > 1 and (args.output or args.compare):
        print(
            "--output/--compare need a single --suite "
            "(use scripts/bench_compare.py for the multi-suite diff)",
            file=sys.stderr,
        )
        return 2

    sizes = ("smoke", "full") if args.size == "both" else (args.size,)
    if args.size == "paper" and suites != ["scale"]:
        print(
            "--size paper is only defined for the scale suite "
            "(repro bench --suite scale --size paper)",
            file=sys.stderr,
        )
        return 2
    rc = 0
    for name in suites:
        mod = get_suite(name)
        kwargs = dict(repeats=args.repeats, seed=args.seed)
        if name in ("partitioner", "scale", "dagsched"):
            kwargs["n_jobs"] = args.jobs
        result = mod.run_suite(sizes, **kwargs)
        print(f"== {name} ==")
        print(mod.format_report(result))
        if args.output:
            save_baseline(result, args.output)
            print(f"wrote {args.output}")
        if args.compare:
            problems = compare_results(
                load_baseline(args.compare), result, threshold=args.threshold
            )
            if problems:
                for msg in problems:
                    print(f"REGRESSION {msg}", file=sys.stderr)
                rc = 1
            else:
                print(f"no regressions vs {args.compare}")
    return rc


def _cmd_campaign(args: argparse.Namespace) -> int:
    import numpy as np

    from .experiments.common import standard_case
    from .resilience import (
        FaultPlan,
        FaultSpec,
        GuardConfig,
        find_latest_checkpoint,
    )
    from .runtime import RetryPolicy
    from .solver import blast_wave
    from .solver.driver import SimulationDriver

    _apply_artifacts(args)
    if args.iterations < 1:
        raise ValueError(f"--iterations must be >= 1, got {args.iterations}")
    mesh, _ = standard_case(args.mesh, scale=args.scale)

    guard = None
    if args.guard:
        guard = GuardConfig(
            max_drift=args.max_drift,
            max_consecutive_rollbacks=args.max_rollbacks,
        )
    retry = None
    if args.retries:
        retry = RetryPolicy(max_retries=args.retries, backoff=args.backoff)
    fault_plan = None
    specs = []
    if args.fault_transient > 0:
        specs.append(FaultSpec("transient", args.fault_transient))
    if args.fault_straggler > 0:
        specs.append(
            FaultSpec("straggler", args.fault_straggler, delay=0.002)
        )
    if args.fault_poison > 0:
        specs.append(FaultSpec("poison", args.fault_poison))
    if specs:
        fault_plan = FaultPlan(specs=specs, seed=args.fault_seed)

    executor = "threaded" if (args.threaded or fault_plan) else "serial"
    resilience = dict(
        guard=guard,
        executor=executor,
        cores_per_process=args.cores,
        fault_plan=fault_plan,
        retry=retry,
        watchdog=args.watchdog,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        debug_verify_dag=args.verify_dag,
    )

    if args.resume:
        if args.checkpoint_dir is None:
            raise ValueError("--resume needs --checkpoint-dir")
        # validate=True test-loads candidates newest-first and falls
        # back past corrupt/truncated ones with a warning.
        latest = find_latest_checkpoint(args.checkpoint_dir, validate=True)
        if latest is None:
            raise ValueError(
                f"no checkpoint found in {args.checkpoint_dir} "
                "(corrupt checkpoints are skipped with a warning)"
            )
        # 0 (the default) means "inherit the interval the checkpoint
        # was written with".
        resilience["checkpoint_every"] = args.checkpoint_every or None
        driver = SimulationDriver.from_checkpoint(mesh, latest, **resilience)
        print(f"resumed from {latest} (iteration {driver.iteration})")
    else:
        driver = SimulationDriver(
            mesh,
            blast_wave(mesh),
            num_domains=args.domains,
            num_processes=args.processes,
            strategy=args.strategy,
            seed=args.seed,
            **resilience,
        )

    result = driver.run(args.iterations)
    totals = result.state.conserved_total(mesh)
    elapsed = sum(r.elapsed for r in result.records)
    print(
        f"campaign: {args.iterations} iterations "
        f"({result.records[0].iteration}..{result.records[-1].iteration}) "
        f"on {args.mesh}, strategy {driver.strategy}, "
        f"executor {executor}"
    )
    print(
        f"  elapsed {elapsed:.3f}s, repartitions "
        f"{result.num_repartitions}, level drift "
        f"{result.level_drift_fraction(mesh.num_cells):.4f}"
    )
    print(f"  health: {result.health.summary()}")
    with np.printoptions(precision=6):
        print(f"  conserved totals: {totals}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import run_fuzz

    if args.seeds < 1:
        raise ValueError(f"--seeds must be >= 1, got {args.seeds}")

    progress = None
    if args.progress_every > 0:
        def progress(i: int, total: int) -> None:
            if i % args.progress_every == 0:
                print(f"fuzz: seed {args.start + i} ({i}/{total})")

    report = run_fuzz(args.seeds, start=args.start, progress=progress)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_serve_deadletter(args: argparse.Namespace) -> int:
    from .service import SpoolQueue

    queue = SpoolQueue(args.spool)
    sub = args.sub or "list"
    if sub == "list":
        entries = queue.deadletter_list()
        for job_id in entries:
            record = queue.deadletter_show(job_id) or {}
            print(
                f"{job_id}  attempts={record.get('attempts')}  "
                f"[{record.get('error_kind')}] {record.get('error')}"
            )
        print(f"deadletter: {len(entries)} quarantined job(s)")
        return 0
    if sub == "show":
        if not args.job_id:
            raise ValueError("serve deadletter show needs --job-id")
        record = queue.deadletter_show(args.job_id)
        if record is None:
            print(
                f"repro: error: no dead-letter entry {args.job_id}",
                file=sys.stderr,
            )
            return 1
        print(json.dumps(record, indent=2))
        return 0
    if sub == "retry":
        if not args.job_id:
            raise ValueError("serve deadletter retry needs --job-id")
        if not queue.deadletter_retry(args.job_id):
            print(
                f"repro: error: no dead-letter entry {args.job_id}",
                file=sys.stderr,
            )
            return 1
        print(
            f"deadletter: re-admitted {args.job_id} (breaker closed)"
        )
        return 0
    # purge
    purged = queue.deadletter_purge(args.job_id or None)
    for job_id in purged:
        print(f"deadletter: purged {job_id}")
    print(f"deadletter: purged {len(purged)} entr(y/ies)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServeDaemon, ServiceClient

    if args.action == "deadletter":
        return _cmd_serve_deadletter(args)

    if args.action == "run":
        from .runtime import RetryPolicy
        from .service import QueueLimits, SpoolQueue

        limits = QueueLimits.from_env()
        if args.max_pending is not None or args.max_pending_bytes is not None:
            from .pipeline.locking import parse_bytes

            limits = QueueLimits(
                max_pending=(
                    args.max_pending
                    if args.max_pending is not None
                    else limits.max_pending
                ),
                max_pending_bytes=(
                    parse_bytes(args.max_pending_bytes)
                    if args.max_pending_bytes is not None
                    else limits.max_pending_bytes
                ),
            )
        daemon = ServeDaemon(
            SpoolQueue(args.spool, limits=limits),
            store_root=args.artifacts,
            retry=RetryPolicy(
                max_retries=args.retries, backoff=args.backoff
            ),
            watchdog=args.watchdog,
            workers=args.workers,
            drain_grace=args.drain_grace,
            dag=args.dag,
            dag_batch=args.dag_batch,
        )
        n = daemon.serve_forever(
            max_jobs=args.max_jobs, idle_timeout=args.idle_timeout
        )
        if daemon.forced:
            print("serve: force-quit while draining", file=sys.stderr)
        elif daemon.draining:
            print("serve: drained cleanly")
        print(f"serve: processed {n} job(s)")
        return 1 if daemon.forced else 0

    if args.action == "status" and args.health:
        from .service import read_health

        health = read_health(args.spool)
        print(json.dumps(health, indent=2))
        return 0 if health["live"] and health["ready"] else 1

    client = ServiceClient(args.spool)
    if args.action == "submit":
        if args.scenario is None:
            raise ValueError("serve submit needs --scenario")
        options = {}
        for item in args.set or []:
            key, sep, raw = item.partition("=")
            if not sep:
                raise ValueError(f"--set expects key=value, got {item!r}")
            options[key] = _parse_option_value(key, raw)
        job_id = client.submit(
            args.scenario,
            options=options,
            through=args.through,
            block=args.block,
            timeout=args.timeout,
        )
        print(job_id)
        if not args.wait:
            return 0
        args.job_id = job_id  # fall through to the result path

    if args.action in ("submit", "result"):
        from .resilience.errors import JobFailedError

        if not args.job_id:
            raise ValueError(f"serve {args.action} needs --job-id")
        try:
            result = client.result(args.job_id, timeout=args.timeout)
        except JobFailedError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 1
        for s in result.get("stages") or []:
            print(
                f"{s['stage']:>10s}  {s['digest'][:16]}  "
                f"{(s.get('cache') or 'computed'):<8s} "
                f"{1e3 * float(s.get('wall_time') or 0.0):9.2f} ms"
            )
        dedup = result.get("dedup")
        if dedup:
            print(
                f"dedup: computed={dedup.get('computed', 0)} "
                f"store={dedup.get('store', 0)} "
                f"shared={dedup.get('shared', 0)}"
            )
        metrics = result.get("metrics")
        if metrics:
            print(
                f"makespan {metrics['makespan']:.1f}, "
                f"efficiency {metrics['efficiency']:.3f}"
            )
        if result.get("store_degraded"):
            print(
                f"warning: store degraded to memory-only "
                f"({result['store_degraded']})",
                file=sys.stderr,
            )
        return 0

    # status
    if not args.job_id:
        # Spool overview with the aggregate per-stage dedup counts —
        # how much work the daemon actually avoided, split into store
        # cache hits vs shared-prefix reuse inside merged dag plans.
        from .pipeline import STAGE_ORDER

        states = client.queue.jobs()
        parts = ", ".join(
            f"{state}={len(ids)}"
            for state, ids in sorted(states.items())
            if ids
        )
        print(f"spool {client.queue.root}: {parts or 'empty'}")
        dedup: dict[str, dict[str, int]] = {}
        for job_id in states.get("done", []):
            st = client.queue.status(job_id)
            if st is None:
                continue
            for s in st.stages or []:
                cache = s.get("cache")
                bucket = (
                    "shared"
                    if cache == "shared"
                    else "store"
                    if cache in ("memory", "disk")
                    else "computed"
                )
                d = dedup.setdefault(
                    s["stage"],
                    {"computed": 0, "store": 0, "shared": 0},
                )
                d[bucket] += 1
        if dedup:
            print("per-stage dedup over done jobs:")
            for name in STAGE_ORDER:
                d = dedup.get(name)
                if d is None:
                    continue
                print(
                    f"{name:>10s}  computed={d['computed']}  "
                    f"store={d['store']}  shared={d['shared']}"
                )
        return 0
    status = client.status(args.job_id)
    if status is None:
        print(f"repro: error: unknown job {args.job_id}", file=sys.stderr)
        return 1
    line = f"{status.job_id}  {status.state}  attempts={status.attempts}"
    if status.stages:
        line += "  stages=" + ",".join(s["stage"] for s in status.stages)
        shared = sum(
            1 for s in status.stages if s.get("cache") == "shared"
        )
        store_hits = sum(
            1
            for s in status.stages
            if s.get("cache") in ("memory", "disk")
        )
        if shared or store_hits:
            line += f"  dedup=store:{store_hits},shared:{shared}"
    if status.degradation:
        line += "  degraded=" + ";".join(status.degradation)
    if status.error:
        line += f"  error[{status.error_kind}]={status.error}"
    print(line)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .pipeline import ArtifactStore, default_cache_root

    root = args.artifacts or default_cache_root()
    store = ArtifactStore(root)
    report = store.doctor(flush=args.flush)
    print(report.summary())
    return 0 if report.healthy else 1


def _cmd_gc(args: argparse.Namespace) -> int:
    from .graph.shared import sweep_stale_segments

    removed = sweep_stale_segments(remove=not args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    if removed:
        for name in removed:
            print(f"{verb} stale segment {name}")
    print(
        f"gc: {verb} {len(removed)} stale shared-memory/mmap segment(s) "
        "(incl. hierarchy spill files)"
    )
    if args.spool is not None:
        from .service import sweep_stale_spool

        swept = sweep_stale_spool(args.spool, remove=not args.dry_run)
        for path in swept:
            print(f"{verb} stale spool litter {path}")
        print(f"gc: {verb} {len(swept)} stale spool file(s)/dir(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--debug",
        action="store_true",
        help="re-raise errors with the full traceback",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="enable the on-disk artifact store at DIR "
        "('default' = $REPRO_ARTIFACTS or ~/.cache/repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="print replica Table I")
    p.add_argument("--scale", type=int, default=None, help="mesh max_depth")
    p.set_defaults(func=_cmd_table1)

    from .experiments.registry import available

    p = sub.add_parser(
        "experiment",
        help="run one experiment harness (choices from the registry)",
    )
    p.add_argument("name", choices=available())
    p.add_argument("--scale", type=int, default=None, help="mesh max_depth")
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="partitioner worker threads (default: REPRO_N_JOBS or serial)",
    )
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "pipeline",
        help="run the typed mesh→partition→DAG→schedule pipeline "
        "with content-addressed caching",
    )
    p.add_argument(
        "action",
        choices=["run", "scenarios"],
        help="'run' a scenario (with optional sweeps) or list the "
        "registered 'scenarios'",
    )
    p.add_argument(
        "--scenario",
        default="characteristics",
        help="scenario registry name (see 'pipeline scenarios')",
    )
    p.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override one scenario option (domains=64, strategy=MC_TL, "
        "scale=7, cores=none, ...); repeatable",
    )
    p.add_argument(
        "--sweep",
        action="append",
        metavar="KEY=V1,V2,...",
        help="sweep one option over a value list (cross product when "
        "repeated); runs go through the batch runner",
    )
    p.add_argument(
        "--through",
        default="schedule",
        choices=["mesh", "levels", "partition", "taskgraph", "schedule"],
        help="stop the chain after this stage",
    )
    p.add_argument(
        "--explain",
        action="store_true",
        help="print per-stage digests, cache source and wall time",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel scenario workers for sweeps "
        "(default: REPRO_N_JOBS or serial)",
    )
    p.set_defaults(func=_cmd_pipeline)

    p = sub.add_parser("gantt", help="print Gantt charts for both strategies")
    p.add_argument("--mesh", default="cylinder")
    p.add_argument("--domains", type=int, default=32)
    p.add_argument("--processes", type=int, default=8)
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--width", type=int, default=100)
    p.add_argument("--scale", type=int, default=None)
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="partitioner worker threads (default: REPRO_N_JOBS or serial)",
    )
    p.set_defaults(func=_cmd_gantt)

    p = sub.add_parser("mesh", help="generate and inspect a replica mesh")
    p.add_argument("name", choices=["cylinder", "cube", "pprime_nozzle", "uniform"])
    p.add_argument("--scale", type=int, default=None)
    p.add_argument("--output", default=None, help="save as .npz")
    p.add_argument(
        "--map", action="store_true", help="print the ASCII τ map"
    )
    p.set_defaults(func=_cmd_mesh)

    p = sub.add_parser(
        "bench", help="run the hot-path microbenchmark suites"
    )
    p.add_argument(
        "--suite",
        choices=[
            "partitioner",
            "taskgraph",
            "flusim",
            "scale",
            "dagsched",
            "all",
        ],
        default="partitioner",
        help="which perf suite(s) to run ('all' excludes the "
        "minutes-long scale and dagsched suites; ask for them by name)",
    )
    p.add_argument(
        "--size",
        choices=["smoke", "full", "both", "paper"],
        default="full",
        help="benchmark size; 'paper' (6.4M-cell cylinder chain) is "
        "scale-suite only",
    )
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--seed", type=int, default=3)
    p.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="n_jobs for the parallel k-way benchmark leg",
    )
    p.add_argument(
        "--output", default=None, help="write results as a JSON baseline"
    )
    p.add_argument(
        "--compare",
        default=None,
        help="baseline JSON to diff against (exit 1 on regression)",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="slowdown factor that counts as a regression",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "campaign",
        help="run a multi-iteration campaign (guards, faults, checkpoints)",
    )
    p.add_argument("--mesh", default="cube")
    p.add_argument("--scale", type=int, default=None, help="mesh max_depth")
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--domains", type=int, default=8)
    p.add_argument("--processes", type=int, default=4)
    p.add_argument("--strategy", default="MC_TL")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--threaded",
        action="store_true",
        help="run on the threaded runtime (implied by fault injection)",
    )
    p.add_argument("--cores", type=int, default=2, help="threads per process")
    p.add_argument(
        "--guard",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="post-iteration physics guards with rollback",
    )
    p.add_argument(
        "--max-drift",
        type=float,
        default=1e-4,
        help="relative conserved-total drift bound per iteration",
    )
    p.add_argument(
        "--max-rollbacks",
        type=int,
        default=3,
        help="consecutive rollbacks before giving up",
    )
    p.add_argument(
        "--retries", type=int, default=3, help="per-task retry budget (0=off)"
    )
    p.add_argument(
        "--backoff", type=float, default=0.001, help="base retry backoff [s]"
    )
    p.add_argument(
        "--watchdog",
        type=float,
        default=None,
        help="per-task deadline in seconds (threaded executor)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, help="directory for checkpoints"
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="checkpoint every N iterations (needs --checkpoint-dir)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest checkpoint in --checkpoint-dir",
    )
    p.add_argument(
        "--fault-transient",
        type=float,
        default=0.0,
        help="injected transient-failure rate per task",
    )
    p.add_argument(
        "--fault-straggler",
        type=float,
        default=0.0,
        help="injected straggler rate per task",
    )
    p.add_argument(
        "--fault-poison",
        type=float,
        default=0.0,
        help="injected NaN-poisoning rate per task",
    )
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument(
        "--verify-dag",
        action="store_true",
        help="audit every generated task graph (debug; raises on "
        "invariant violations)",
    )
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "fuzz",
        help="run the adversarial fuzzing harness (contracts + "
        "differential oracle checks)",
    )
    p.add_argument(
        "--seeds", type=int, default=25, help="number of seeds to run"
    )
    p.add_argument(
        "--start", type=int, default=0, help="first seed (campaign offset)"
    )
    p.add_argument(
        "--progress-every",
        type=int,
        default=0,
        help="print a heartbeat every N seeds (0 = silent)",
    )
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="overload-safe scenario job service over a filesystem spool",
    )
    p.add_argument(
        "action",
        choices=["run", "submit", "status", "result", "deadletter"],
        help="'run' the daemon, client-side 'submit'/'status'/'result', "
        "or operate the 'deadletter' quarantine",
    )
    p.add_argument(
        "sub",
        nargs="?",
        default=None,
        choices=["list", "show", "retry", "purge"],
        help="deadletter subaction (default: list)",
    )
    p.add_argument(
        "--spool",
        required=True,
        metavar="DIR",
        help="spool directory shared by daemon and clients",
    )
    p.add_argument(
        "--scenario",
        default=None,
        help="scenario registry name (submit)",
    )
    p.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override one scenario option (submit); repeatable",
    )
    p.add_argument(
        "--through",
        default="schedule",
        choices=["mesh", "levels", "partition", "taskgraph", "schedule"],
        help="stop the chain after this stage (submit)",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="after submit, block for the result",
    )
    p.add_argument(
        "--block",
        action="store_true",
        help="submit: on a full queue, honor the retry-after hint and "
        "resubmit instead of failing",
    )
    p.add_argument(
        "--health",
        action="store_true",
        help="status: report the daemon's liveness/readiness/pressure "
        "files (exit 0 iff live and ready)",
    )
    p.add_argument(
        "--job-id",
        default=None,
        help="job id (status/result/deadletter show|retry|purge)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="max seconds to wait for a result",
    )
    p.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="daemon: stop after N jobs (default: run forever)",
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="daemon: stop after this many idle seconds",
    )
    p.add_argument(
        "--watchdog",
        type=float,
        default=300.0,
        help="daemon: per-stage progress deadline in seconds",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        help="daemon: retry budget per job (worker deaths, transients)",
    )
    p.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        help="daemon: base retry backoff in seconds",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="daemon: concurrent job children (SOFT pressure halves "
        "this, HARD pauses claiming)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        help="daemon: seconds a running job gets to finish after "
        "SIGTERM/SIGINT before it is requeued",
    )
    p.add_argument(
        "--dag",
        action="store_true",
        help="daemon: claim compatible pending jobs together and run "
        "them as one merged stage-DAG (shared prefixes execute once; "
        "--workers bounds the stage scheduler pool)",
    )
    p.add_argument(
        "--dag-batch",
        type=int,
        default=8,
        help="daemon: max jobs merged into one plan per claim round "
        "(--dag mode)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="daemon: admission control — reject submissions beyond "
        "this pending depth (default: $REPRO_SPOOL_MAX_PENDING)",
    )
    p.add_argument(
        "--max-pending-bytes",
        default=None,
        metavar="BYTES",
        help="daemon: admission control — reject submissions beyond "
        "this pending byte budget ('64M' style; default: "
        "$REPRO_SPOOL_MAX_BYTES)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "store",
        help="inspect and repair the on-disk artifact store",
    )
    p.add_argument(
        "action", choices=["doctor"], help="'doctor' inspects the store"
    )
    p.add_argument(
        "--flush",
        action="store_true",
        help="also clear stale claims, quarantined entries and tmp litter",
    )
    p.set_defaults(func=_cmd_store)

    p = sub.add_parser(
        "gc",
        help="sweep stale shared-memory segments (and, with --spool, "
        "spool litter) left by dead processes",
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="report stale litter without removing it",
    )
    p.add_argument(
        "--spool",
        default=None,
        metavar="DIR",
        help="also sweep this spool's stale tmp files and orphaned "
        "work dirs",
    )
    p.set_defaults(func=_cmd_gc)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro ... | head`
        return 0
    except (ValueError, OSError, RuntimeError) as exc:
        # RuntimeError covers the resilience hierarchy (checkpoint,
        # guard, timeout errors); --debug re-raises for a traceback.
        if args.debug:
            raise
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
