"""Small shared utilities with no domain dependencies.

Kept deliberately tiny: modules here may be imported from any layer
(pipeline, service, resilience) without creating import cycles, so
nothing in this package may import from the rest of :mod:`repro`.
"""

from .fsjson import atomic_write_json, read_json

__all__ = ["atomic_write_json", "read_json"]
