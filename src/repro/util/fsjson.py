"""Crash-safe JSON file I/O shared by the spool/daemon layers.

One writer idiom, used everywhere a JSON record crosses a process
boundary through the filesystem: write to a pid-suffixed ``*.tmp<pid>``
sibling, then ``os.replace`` into place.  A process killed between the
two calls leaves only attributable tmp litter (reclaimed by ``repro gc
--spool``), never a half-written record; readers observe either the
old file or the new one, atomically.

The reader side is equally deliberate: a missing, unreadable, corrupt
or non-object JSON file reads as ``None`` — torn concurrent state is a
normal observation in the spool protocol, not an error.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_json", "read_json"]


def atomic_write_json(
    path: Path | str,
    payload: dict[str, Any],
    *,
    indent: int | None = None,
    sort_keys: bool = False,
) -> None:
    """Atomically publish ``payload`` as JSON at ``path``.

    ``indent``/``sort_keys`` pass through to :func:`json.dumps` so
    callers keep their established on-disk byte format (the spool's
    human-auditable status records are indented and key-sorted, the
    daemon's high-frequency heartbeat files compact).
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(
        json.dumps(payload, indent=indent, sort_keys=sort_keys),
        encoding="utf-8",
    )
    os.replace(tmp, path)


def read_json(path: Path | str) -> dict[str, Any] | None:
    """Read a JSON object from ``path``; ``None`` when missing,
    unreadable, corrupt, or not a JSON object."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None
