"""Atomic campaign checkpoints (``.npz`` arrays + JSON manifest).

A checkpoint captures everything needed to continue a campaign from
iteration *k* as if it had never stopped: the conserved state and flux
accumulators, the temporal levels, the domain assignment (a resumed
campaign must *not* re-partition — the levels have evolved since the
partition was computed), the base time step and hysteresis anchor, the
driver's RNG state, and the driver configuration.

Writes are crash-safe: both files go to ``*.tmp`` first and are
``os.replace``-d into place, arrays before manifest — a manifest is
only ever visible once its arrays are complete, so
:func:`find_latest_checkpoint` can trust any manifest it sees and a
kill mid-write costs at most one checkpoint interval of work.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from .errors import CheckpointError

__all__ = [
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "find_latest_checkpoint",
]

CHECKPOINT_VERSION = 1

_PREFIX = "ckpt_"

#: Arrays stored in the ``.npz`` member, with expected ndim.
_ARRAYS = {
    "U": 2,
    "acc": 2,
    "Ustar": 2,
    "acc2": 2,
    "tau": 1,
    "domain": 1,
    "domain_process": 1,
}

_MANIFEST_KEYS = (
    "version",
    "iteration",
    "dt_min",
    "dt_ref",
    "num_cells",
    "num_domains",
    "num_processes",
    "arrays",
)


@dataclass
class Checkpoint:
    """An in-memory checkpoint (see :func:`save_checkpoint`)."""

    iteration: int
    U: np.ndarray
    acc: np.ndarray
    Ustar: np.ndarray
    acc2: np.ndarray
    tau: np.ndarray
    domain: np.ndarray
    domain_process: np.ndarray
    dt_min: float
    dt_ref: float
    num_processes: int
    rng_state: dict | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def num_domains(self) -> int:
        return len(self.domain_process)


def _base_path(directory: str | Path, iteration: int) -> Path:
    return Path(directory) / f"{_PREFIX}{iteration:08d}"


def save_checkpoint(
    directory: str | Path,
    ckpt: Checkpoint,
) -> Path:
    """Atomically write ``ckpt`` under ``directory``.

    Returns the manifest path (``ckpt_<iteration>.json``); the arrays
    live next to it in ``ckpt_<iteration>.npz``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = _base_path(directory, ckpt.iteration)
    npz_path = base.with_suffix(".npz")
    json_path = base.with_suffix(".json")

    arrays = {name: getattr(ckpt, name) for name in _ARRAYS}
    manifest = {
        "version": CHECKPOINT_VERSION,
        "iteration": int(ckpt.iteration),
        "dt_min": float(ckpt.dt_min),
        "dt_ref": float(ckpt.dt_ref),
        "num_cells": int(len(ckpt.U)),
        "num_domains": int(ckpt.num_domains),
        "num_processes": int(ckpt.num_processes),
        "arrays": npz_path.name,
        "rng_state": ckpt.rng_state,
        "meta": ckpt.meta,
    }

    tmp_npz = npz_path.with_name(npz_path.name + ".tmp")
    tmp_json = json_path.with_name(json_path.name + ".tmp")
    try:
        # np.savez appends ".npz" unless the name already ends with it;
        # write to an open file object to keep the exact tmp name.
        with open(tmp_npz, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp_npz, npz_path)
        with open(tmp_json, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_json, json_path)
    except OSError as exc:
        for tmp in (tmp_npz, tmp_json):
            try:
                tmp.unlink()
            except OSError:
                pass
        raise CheckpointError(
            f"failed to write checkpoint {base}: {exc}"
        ) from exc
    return json_path


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load and validate a checkpoint.

    ``path`` may be the manifest (``.json``), the arrays (``.npz``) or
    the common basename.  Raises :class:`CheckpointError` naming the
    file and the problem on anything truncated, foreign or
    inconsistent.
    """
    path = Path(path)
    if path.suffix == ".npz":
        path = path.with_suffix(".json")
    elif path.suffix != ".json":
        path = path.with_suffix(".json")
    if not path.exists():
        raise CheckpointError(f"no checkpoint manifest at {path}")

    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"corrupt checkpoint manifest {path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(f"corrupt checkpoint manifest {path}: not a JSON object")
    missing = [k for k in _MANIFEST_KEYS if k not in manifest]
    if missing:
        raise CheckpointError(
            f"corrupt checkpoint manifest {path}: missing keys {missing}"
        )
    if manifest["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {manifest['version']}, "
            f"this build reads version {CHECKPOINT_VERSION}"
        )

    npz_path = path.with_name(str(manifest["arrays"]))
    try:
        with np.load(npz_path, allow_pickle=False) as data:
            missing = [k for k in _ARRAYS if k not in data]
            if missing:
                raise CheckpointError(
                    f"checkpoint arrays {npz_path}: missing {missing}"
                )
            arrays = {k: data[k].copy() for k in _ARRAYS}
    except CheckpointError:
        raise
    except Exception as exc:  # BadZipFile, OSError, ValueError, ...
        raise CheckpointError(
            f"unreadable checkpoint arrays {npz_path}: {exc}"
        ) from exc

    for name, ndim in _ARRAYS.items():
        if arrays[name].ndim != ndim:
            raise CheckpointError(
                f"checkpoint {npz_path}: array {name!r} has "
                f"{arrays[name].ndim} dimensions, expected {ndim}"
            )
    n = int(manifest["num_cells"])
    for name in ("U", "acc", "Ustar", "acc2"):
        if arrays[name].shape != (n, 4):
            raise CheckpointError(
                f"checkpoint {npz_path}: array {name!r} has shape "
                f"{arrays[name].shape}, expected ({n}, 4)"
            )
    if arrays["tau"].shape != (n,):
        raise CheckpointError(
            f"checkpoint {npz_path}: array 'tau' has shape "
            f"{arrays['tau'].shape}, expected ({n},)"
        )
    if arrays["domain"].shape != (n,):
        raise CheckpointError(
            f"checkpoint {npz_path}: array 'domain' has shape "
            f"{arrays['domain'].shape}, expected ({n},)"
        )
    if len(arrays["domain_process"]) != int(manifest["num_domains"]):
        raise CheckpointError(
            f"checkpoint {npz_path}: {len(arrays['domain_process'])} "
            f"domain_process entries for {manifest['num_domains']} domains"
        )

    return Checkpoint(
        iteration=int(manifest["iteration"]),
        dt_min=float(manifest["dt_min"]),
        dt_ref=float(manifest["dt_ref"]),
        num_processes=int(manifest["num_processes"]),
        rng_state=manifest.get("rng_state"),
        meta=dict(manifest.get("meta") or {}),
        **arrays,
    )


#: Validation outcomes already established, keyed by manifest path.
#: The value is ``((json_mtime_ns, json_size, npz_mtime_ns, npz_size),
#: error-or-None)`` — a checkpoint is immutable once written (atomic
#: replace), so an unchanged stamp means the earlier test-load verdict
#: still holds and a periodic ``--resume`` poll skips the expensive
#: decompress.
_VALIDATION_CACHE: dict[str, tuple[tuple[int, int, int, int], str | None]] = {}


def _validation_stamp(path: Path) -> tuple[int, int, int, int] | None:
    """(mtime_ns, size) of manifest and arrays (``None`` if unstat-able)."""
    try:
        st_json = path.stat()
        st_npz = path.with_suffix(".npz").stat()
    except OSError:
        return None
    return (
        st_json.st_mtime_ns,
        st_json.st_size,
        st_npz.st_mtime_ns,
        st_npz.st_size,
    )


def _validate_cached(path: Path) -> str | None:
    """Test-load ``path``, memoised on the files' (mtime, size) stamp.

    Returns ``None`` for a valid checkpoint, the error text otherwise.
    """
    stamp = _validation_stamp(path)
    if stamp is not None:
        cached = _VALIDATION_CACHE.get(str(path))
        if cached is not None and cached[0] == stamp:
            return cached[1]
    try:
        load_checkpoint(path)
        error: str | None = None
    except CheckpointError as exc:
        error = str(exc)
    if stamp is not None:
        _VALIDATION_CACHE[str(path)] = (stamp, error)
    return error


def find_latest_checkpoint(
    directory: str | Path, *, validate: bool = False
) -> Path | None:
    """Manifest path of the highest-iteration checkpoint in
    ``directory`` (``None`` if there is none).

    With ``validate=True``, candidates are test-loaded in descending
    iteration order; a corrupt or truncated checkpoint (e.g. a
    mid-write kill, a disk error) is skipped with a
    :class:`RuntimeWarning` and the previous valid one is returned —
    so ``--resume`` degrades to the last good state instead of
    crashing.  Verdicts are cached per ``(path, mtime, size)``, so
    repeated calls (a supervisor polling for resumability) only pay
    the test-load when a file actually changed.
    """
    import warnings

    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates: list[tuple[int, Path]] = []
    for p in directory.glob(f"{_PREFIX}*.json"):
        stem = p.stem[len(_PREFIX):]
        if not stem.isdigit():
            continue
        candidates.append((int(stem), p))
    candidates.sort(reverse=True)
    if not validate:
        return candidates[0][1] if candidates else None
    for _, p in candidates:
        error = _validate_cached(p)
        if error is not None:
            warnings.warn(
                f"skipping corrupt checkpoint {p}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        return p
    return None
