"""Resilience layer: fault injection, physics guards, checkpoints.

FLUSEPA-class campaigns run for thousands of iterations; this package
gives the reproduction the machinery to survive what such runs
actually meet — transient task failures, stragglers/hangs, silent data
corruption, and whole-process death:

* :mod:`~repro.resilience.faults` — deterministic, seeded fault
  injection to make the rest *testable*;
* :mod:`~repro.resilience.guards` — post-iteration physics validation
  and in-memory rollback snapshots;
* :mod:`~repro.resilience.checkpoint` — atomic on-disk campaign
  checkpoints and restart;
* :mod:`~repro.resilience.errors` — the shared exception hierarchy
  (the executor's retry/watchdog machinery in
  :mod:`repro.runtime.executor` builds on it).
"""

from .checkpoint import (
    Checkpoint,
    find_latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .errors import (
    CheckpointError,
    CircuitOpenError,
    PartitionError,
    PartitionInternalError,
    PartitionQualityError,
    PhysicsGuardError,
    QueueFull,
    ResilienceError,
    TaskTimeoutError,
    TransientError,
)
from .faults import FaultPlan, FaultSpec
from .sentinel import (
    PressureSample,
    PressureState,
    ResourceSentinel,
    SentinelConfig,
)

_GUARD_NAMES = ("GuardConfig", "GuardReport", "StateSnapshot", "check_state")


def __getattr__(name: str):
    # Lazy: guards pulls in the solver stack, which depends (via the
    # partitioning strategies) on the graph layer — and the graph layer
    # imports this package for its error types.  Deferring the guards
    # import keeps the low-level graph layer free of that cycle.
    if name in _GUARD_NAMES:
        from . import guards

        return getattr(guards, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ResilienceError",
    "TransientError",
    "TaskTimeoutError",
    "PhysicsGuardError",
    "CheckpointError",
    "QueueFull",
    "CircuitOpenError",
    "PartitionError",
    "PartitionInternalError",
    "PartitionQualityError",
    "FaultSpec",
    "FaultPlan",
    "PressureState",
    "PressureSample",
    "SentinelConfig",
    "ResourceSentinel",
    "GuardConfig",
    "GuardReport",
    "StateSnapshot",
    "check_state",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "find_latest_checkpoint",
]
