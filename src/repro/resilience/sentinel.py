"""Resource pressure sentinel for the serving tier.

A :class:`ResourceSentinel` samples the signals that take a real
serving box down — resident set size, free space on the spool and
artifact volumes, machine-wide available memory, and queue depth —
and folds them into one typed :class:`PressureState`:

* ``OK`` — full service;
* ``SOFT`` — degrade: shrink worker concurrency, force the mmap CSR
  backend (zero-copy attach without /dev/shm growth);
* ``HARD`` — protect: pause claiming, shed the in-memory store tier.

Transitions are **hysteretic**: escalation is immediate (one bad
sample is enough — the box is already in trouble), but de-escalation
requires the signal to clear its threshold by a relative margin
(default 10%), so a value oscillating around a threshold does not
flap the service between modes on every sample.

Every probe is injectable, which is how the chaos suite applies
*synthetic* memory/disk pressure deterministically; the defaults read
``/proc`` and :func:`shutil.disk_usage` and are tunable through
``REPRO_SENTINEL_*`` environment variables (byte values accept
``"512M"``-style suffixes via
:func:`repro.pipeline.locking.parse_bytes`).
"""

from __future__ import annotations

import enum
import os
import shutil
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = [
    "PressureState",
    "SentinelConfig",
    "PressureSample",
    "ResourceSentinel",
]


class PressureState(enum.IntEnum):
    """Typed pressure tier; ordered so ``HARD > SOFT > OK``."""

    OK = 0
    SOFT = 1
    HARD = 2

    def __str__(self) -> str:  # "SOFT", not "PressureState.SOFT"
        return self.name


def _env_bytes(name: str, default: int | None) -> int | None:
    # Lazy import: the pipeline package (which owns parse_bytes) sits
    # above the graph layer, and the graph layer imports this package
    # for its error types — a module-level import here would cycle.
    from ..pipeline.locking import parse_bytes

    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return parse_bytes(raw)
    except ValueError as exc:
        warnings.warn(
            f"ignoring {name}: {exc}", RuntimeWarning, stacklevel=3
        )
        return default


def _env_int(name: str, default: int | None) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring {name}: not an integer ({raw!r})",
            RuntimeWarning,
            stacklevel=3,
        )
        return default


@dataclass(frozen=True)
class SentinelConfig:
    """Thresholds for each signal (``None`` disables that signal).

    High-is-bad signals (``rss``, ``queue_depth``) escalate when the
    value is **at or above** the threshold; low-is-bad signals
    (``disk_free``, ``mem_available``) escalate when the value is **at
    or below** it.  ``hysteresis`` is the relative clearance a signal
    needs beyond its threshold before the sentinel de-escalates.
    """

    rss_soft_bytes: int | None = None
    rss_hard_bytes: int | None = None
    mem_soft_bytes: int | None = None
    mem_hard_bytes: int | None = None
    disk_soft_bytes: int | None = 512 * 2**20
    disk_hard_bytes: int | None = 64 * 2**20
    queue_soft: int | None = None
    queue_hard: int | None = None
    hysteresis: float = 0.1

    @classmethod
    def from_env(cls) -> "SentinelConfig":
        """Defaults overridden by ``REPRO_SENTINEL_*`` variables."""
        base = cls()
        return cls(
            rss_soft_bytes=_env_bytes("REPRO_SENTINEL_RSS_SOFT", base.rss_soft_bytes),
            rss_hard_bytes=_env_bytes("REPRO_SENTINEL_RSS_HARD", base.rss_hard_bytes),
            mem_soft_bytes=_env_bytes("REPRO_SENTINEL_MEM_SOFT", base.mem_soft_bytes),
            mem_hard_bytes=_env_bytes("REPRO_SENTINEL_MEM_HARD", base.mem_hard_bytes),
            disk_soft_bytes=_env_bytes(
                "REPRO_SENTINEL_DISK_SOFT", base.disk_soft_bytes
            ),
            disk_hard_bytes=_env_bytes(
                "REPRO_SENTINEL_DISK_HARD", base.disk_hard_bytes
            ),
            queue_soft=_env_int("REPRO_SENTINEL_QUEUE_SOFT", base.queue_soft),
            queue_hard=_env_int("REPRO_SENTINEL_QUEUE_HARD", base.queue_hard),
        )


@dataclass
class PressureSample:
    """One sentinel reading: the folded state plus the raw signals and
    the human-readable reasons behind any non-``OK`` verdict."""

    state: PressureState
    rss_bytes: int | None = None
    mem_available_bytes: int | None = None
    disk_free_bytes: dict[str, int] = field(default_factory=dict)
    queue_depth: int | None = None
    reasons: list[str] = field(default_factory=list)
    at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "state": str(self.state),
            "rss_bytes": self.rss_bytes,
            "mem_available_bytes": self.mem_available_bytes,
            "disk_free_bytes": dict(self.disk_free_bytes),
            "queue_depth": self.queue_depth,
            "reasons": list(self.reasons),
            "at": self.at,
        }


# ----------------------------------------------------------------------
# Default probes
# ----------------------------------------------------------------------
def read_rss_bytes() -> int | None:
    """Current resident set size of this process (Linux ``/proc``)."""
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:  # portable fallback: peak RSS, close enough for thresholds
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - exotic platform
        return None


def read_mem_available_bytes() -> int | None:
    """Machine-wide ``MemAvailable`` (Linux ``/proc/meminfo``)."""
    try:
        with open("/proc/meminfo", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def read_disk_free_bytes(path: str | Path) -> int | None:
    """Free bytes on the volume holding ``path``."""
    p = Path(path)
    while not p.exists():
        parent = p.parent
        if parent == p:
            return None
        p = parent
    try:
        return shutil.disk_usage(p).free
    except OSError:
        return None


# ----------------------------------------------------------------------
class ResourceSentinel:
    """Fold resource probes into a hysteretic pressure state.

    Parameters
    ----------
    config:
        Thresholds; ``None`` reads :meth:`SentinelConfig.from_env`.
    volumes:
        Paths whose volumes are probed for free space (the spool and
        artifact roots; duplicates and ``None`` entries are dropped).
    queue_depth:
        Zero-arg callable returning the current pending depth
        (``None`` disables the queue signal).
    rss_probe / mem_probe / disk_probe:
        Injectable probes (the chaos suite's synthetic pressure).
        ``disk_probe`` takes a volume path and returns free bytes.
    """

    def __init__(
        self,
        config: SentinelConfig | None = None,
        *,
        volumes: tuple[str | Path | None, ...] = (),
        queue_depth: Callable[[], int] | None = None,
        rss_probe: Callable[[], int | None] = read_rss_bytes,
        mem_probe: Callable[[], int | None] = read_mem_available_bytes,
        disk_probe: Callable[[str | Path], int | None] = read_disk_free_bytes,
    ) -> None:
        self.config = config if config is not None else SentinelConfig.from_env()
        seen: dict[str, Path] = {}
        for v in volumes:
            if v is not None:
                seen.setdefault(str(v), Path(v))
        self.volumes = tuple(seen.values())
        self.queue_depth = queue_depth
        self.rss_probe = rss_probe
        self.mem_probe = mem_probe
        self.disk_probe = disk_probe
        self.state = PressureState.OK
        self.last_sample: PressureSample | None = None
        self.transitions: list[tuple[float, str, str]] = []

    # -- classification ------------------------------------------------
    @staticmethod
    def _high_is_bad(
        value: int | None,
        soft: int | None,
        hard: int | None,
        margin: float,
    ) -> PressureState:
        if value is None:
            return PressureState.OK
        # De-escalation margin tightens the threshold: the value must
        # clear it by ``margin`` before the signal reads as calmer.
        if hard is not None and value >= hard * (1.0 - margin):
            return PressureState.HARD
        if soft is not None and value >= soft * (1.0 - margin):
            return PressureState.SOFT
        return PressureState.OK

    @staticmethod
    def _low_is_bad(
        value: int | None,
        soft: int | None,
        hard: int | None,
        margin: float,
    ) -> PressureState:
        if value is None:
            return PressureState.OK
        if hard is not None and value <= hard * (1.0 + margin):
            return PressureState.HARD
        if soft is not None and value <= soft * (1.0 + margin):
            return PressureState.SOFT
        return PressureState.OK

    def _classify(
        self, sample: PressureSample, margin: float
    ) -> tuple[PressureState, list[str]]:
        cfg = self.config
        verdicts: list[tuple[PressureState, str]] = []
        s = self._high_is_bad(
            sample.rss_bytes, cfg.rss_soft_bytes, cfg.rss_hard_bytes, margin
        )
        if s:
            verdicts.append((s, f"rss {sample.rss_bytes} B"))
        s = self._low_is_bad(
            sample.mem_available_bytes,
            cfg.mem_soft_bytes,
            cfg.mem_hard_bytes,
            margin,
        )
        if s:
            verdicts.append(
                (s, f"mem available {sample.mem_available_bytes} B")
            )
        for vol, free in sample.disk_free_bytes.items():
            s = self._low_is_bad(
                free, cfg.disk_soft_bytes, cfg.disk_hard_bytes, margin
            )
            if s:
                verdicts.append((s, f"disk free {free} B on {vol}"))
        s = self._high_is_bad(
            sample.queue_depth, cfg.queue_soft, cfg.queue_hard, margin
        )
        if s:
            verdicts.append((s, f"queue depth {sample.queue_depth}"))
        if not verdicts:
            return PressureState.OK, []
        worst = max(v for v, _ in verdicts)
        return worst, [f"{v}: {why}" for v, why in verdicts]

    # -- sampling ------------------------------------------------------
    def sample(self) -> PressureSample:
        """Probe every signal and return the (hysteretic) verdict.

        Escalation applies immediately; de-escalation only once every
        signal clears its threshold by ``config.hysteresis``.
        """
        s = PressureSample(state=PressureState.OK, at=time.time())
        s.rss_bytes = self.rss_probe() if self.rss_probe else None
        s.mem_available_bytes = self.mem_probe() if self.mem_probe else None
        for vol in self.volumes:
            free = self.disk_probe(vol)
            if free is not None:
                s.disk_free_bytes[str(vol)] = free
        if self.queue_depth is not None:
            try:
                s.queue_depth = int(self.queue_depth())
            except Exception:  # probe failure must never take us down
                s.queue_depth = None

        raw, raw_reasons = self._classify(s, margin=0.0)
        if raw >= self.state:
            new, reasons = raw, raw_reasons
        else:
            # Candidate de-escalation: re-classify with the hysteresis
            # margin; the state only falls as far as the sticky verdict.
            sticky, sticky_reasons = self._classify(
                s, margin=self.config.hysteresis
            )
            new = min(self.state, max(raw, sticky))
            reasons = sticky_reasons if new > raw else raw_reasons
        if new != self.state:
            self.transitions.append((s.at, str(self.state), str(new)))
            warnings.warn(
                f"resource pressure {self.state} -> {new}"
                + (f" ({'; '.join(reasons)})" if reasons else ""),
                RuntimeWarning,
                stacklevel=2,
            )
            self.state = new
        s.state = self.state
        s.reasons = reasons
        self.last_sample = s
        return s
