"""Deterministic fault injection for the threaded runtime.

A :class:`FaultPlan` wraps any executor ``task_fn`` and injects, at
configurable per-phase/per-domain rates, the three hazards a
FLUSEPA-class campaign actually meets:

* **transient failures** — a :class:`TransientError` raised *before*
  the task body runs (so a retry re-executes the body exactly once and
  the physics stays bit-compatible with a fault-free run);
* **stragglers** — a sleep before the body, stressing the watchdog and
  the schedule without touching the numerics;
* **silent NaN poisoning** — a NaN written into a state array *after*
  the body, invisible to the executor and caught only by the physics
  guards.

Every decision is a pure function of ``(seed, iteration, round, task,
attempt)``, so a plan replays identically: the same campaign with the
same plan sees the same faults, and a rollback re-run (``round > 0``)
or an executor retry (``attempt > 0``) is deterministically clean when
``first_attempt_only`` / ``first_round_only`` are set (the default —
that is what makes the faults *transient*).
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .errors import TransientError

__all__ = ["FaultSpec", "FaultPlan", "FaultKinds"]

#: Recognised fault kinds.
FaultKinds = ("transient", "straggler", "poison")


@dataclass(frozen=True)
class FaultSpec:
    """One fault source.

    Parameters
    ----------
    kind:
        ``"transient"`` (raise :class:`TransientError` before the task
        body), ``"straggler"`` (sleep ``delay`` seconds before the
        body) or ``"poison"`` (write a NaN into a target state array
        after the body).
    rate:
        Per-task injection probability in ``[0, 1]``.
    delay:
        Straggler sleep in seconds.
    phases:
        If given, inject only into tasks whose temporal phase (τ) is in
        this set.
    domains:
        If given, inject only into tasks of these extraction domains.
    first_attempt_only:
        Inject only on a task's first attempt within an execution, so
        an executor retry of the same task succeeds.
    first_round_only:
        Inject only in rollback round 0 of an iteration, so a campaign
        rollback re-run is clean.
    """

    kind: str
    rate: float
    delay: float = 0.005
    phases: tuple[int, ...] | None = None
    domains: tuple[int, ...] | None = None
    first_attempt_only: bool = True
    first_round_only: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FaultKinds:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FaultKinds}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def applies_to(self, phase: int, domain: int) -> bool:
        """Whether this spec targets a task of ``(phase, domain)``."""
        if self.phases is not None and phase not in self.phases:
            return False
        if self.domains is not None and domain not in self.domains:
            return False
        return True


@dataclass
class FaultPlan:
    """A seeded, replayable set of fault sources.

    Use :meth:`wrap` to produce a faulty ``task_fn`` for the executor
    and :meth:`set_context` to advance the ``(iteration, round)``
    context between (re-)runs.  :attr:`injected` counts what was
    actually injected, for the chaos reports.
    """

    specs: Sequence[FaultSpec] = ()
    seed: int = 0
    injected: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        self._iteration = 0
        self._round = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def set_context(self, iteration: int, round_: int = 0) -> None:
        """Advance the decision context.

        ``iteration`` is the campaign iteration, ``round_`` the rollback
        re-run count of that iteration (0 = first try).
        """
        self._iteration = int(iteration)
        self._round = int(round_)

    @property
    def enabled(self) -> bool:
        """Whether any spec has a nonzero rate."""
        return any(s.rate > 0 for s in self.specs)

    def decide(
        self, task: int, attempt: int, phase: int = 0, domain: int = 0
    ) -> list[FaultSpec]:
        """Faults to inject into ``task`` at ``attempt`` — deterministic
        in ``(seed, iteration, round, task, attempt)``."""
        hits: list[FaultSpec] = []
        rng = None
        for k, spec in enumerate(self.specs):
            if spec.rate <= 0 or not spec.applies_to(phase, domain):
                continue
            if spec.first_attempt_only and attempt > 0:
                continue
            if spec.first_round_only and self._round > 0:
                continue
            if rng is None:
                rng = np.random.default_rng(
                    (self.seed, self._iteration, self._round, task, attempt)
                )
            # one draw per spec, in declaration order, so adding a spec
            # does not reshuffle the earlier ones' decisions
            if rng.random() < spec.rate:
                hits.append(spec)
        return hits

    # ------------------------------------------------------------------
    def wrap(
        self,
        task_fn: Callable[[int], None],
        *,
        phase_of: np.ndarray | None = None,
        domain_of: np.ndarray | None = None,
        poison_targets: Sequence[np.ndarray] = (),
    ) -> Callable[[int], None]:
        """Wrap ``task_fn`` with this plan's fault sources.

        ``phase_of`` / ``domain_of`` are per-task metadata arrays
        (e.g. ``dag.tasks.phase_tau`` / ``dag.tasks.domain``);
        ``poison_targets`` are the state arrays eligible for NaN
        poisoning (e.g. ``(state.acc,)``).  The wrapper counts attempts
        per task itself, so it needs no cooperation from the executor.
        """
        attempts: Counter = Counter()
        lock = self._lock
        targets = tuple(poison_targets)

        def faulty(t: int) -> None:
            with lock:
                attempt = attempts[t]
                attempts[t] += 1
            phase = int(phase_of[t]) if phase_of is not None else 0
            dom = int(domain_of[t]) if domain_of is not None else 0
            hits = self.decide(t, attempt, phase, dom)
            post: list[FaultSpec] = []
            for spec in hits:
                if spec.kind == "straggler":
                    with lock:
                        self.injected["straggler"] += 1
                    time.sleep(spec.delay)
                elif spec.kind == "transient":
                    # Raised *before* the body: a retried task has not
                    # deposited anything yet, so re-running it is safe.
                    with lock:
                        self.injected["transient"] += 1
                    raise TransientError(
                        f"injected transient failure in task {t} "
                        f"(iteration {self._iteration}, attempt {attempt})"
                    )
                else:
                    post.append(spec)
            task_fn(t)
            for spec in post:
                self._poison(t, attempt, targets)

        return faulty

    def _poison(
        self, task: int, attempt: int, targets: Sequence[np.ndarray]
    ) -> None:
        """Silently NaN one entry of a target array (deterministic)."""
        if not targets:
            return
        rng = np.random.default_rng(
            (self.seed, self._iteration, self._round, task, attempt, 0xBAD)
        )
        arr = targets[int(rng.integers(len(targets)))]
        if arr.size == 0:
            return
        idx = np.unravel_index(int(rng.integers(arr.size)), arr.shape)
        arr[idx] = np.nan
        with self._lock:
            self.injected["poison"] += 1
