"""Physics guards and in-memory rollback snapshots.

After every (sub)iteration a campaign can validate its
:class:`~repro.solver.lts.LTSState`:

* no NaN/Inf anywhere in ``U`` or the flux accumulators (the symptom
  of silent data corruption — e.g. a bit flip or an injected NaN);
* density and pressure strictly above configurable floors (the symptom
  of a CFL violation or a bad flux evaluation);
* the conserved totals (mass/energy, which the LTS scheme preserves to
  machine precision in the absence of boundary outflow) within a
  relative drift bound of a reference.

A failed check triggers rollback to the last
:class:`StateSnapshot` — an in-memory deep copy of the solver state
plus the temporal configuration it was valid for.  Restoration builds
*fresh* arrays rather than writing in place, so a zombie worker thread
abandoned by the watchdog can never scribble on the restored state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mesh.structures import Mesh
from ..solver.euler import pressure
from ..solver.lts import LTSState

__all__ = ["GuardConfig", "GuardReport", "check_state", "StateSnapshot"]


@dataclass(frozen=True)
class GuardConfig:
    """What the physics guards enforce.

    Parameters
    ----------
    min_density, min_pressure:
        Strict lower bounds on cell density/pressure.
    max_drift:
        Relative drift bound on the conserved totals versus the
        reference (``None`` disables the drift check).  Only
        ``drift_components`` are checked: momentum is exchanged with
        the boundary (pressure forces), so mass (0) and energy (3) are
        the meaningful invariants.
    max_consecutive_rollbacks:
        Consecutive failed iterations before the campaign gives up
        with a :class:`~repro.resilience.errors.PhysicsGuardError`.
    """

    min_density: float = 0.0
    min_pressure: float = 0.0
    max_drift: float | None = 1e-6
    drift_components: tuple[int, ...] = (0, 3)
    max_consecutive_rollbacks: int = 3


@dataclass
class GuardReport:
    """Outcome of one :func:`check_state` call."""

    ok: bool
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _finite_violation(name: str, arr: np.ndarray) -> str | None:
    bad = ~np.isfinite(arr)
    if bad.any():
        cells = np.unique(np.argwhere(bad)[:, 0])[:5]
        return (
            f"{name} has {int(bad.sum())} non-finite entries "
            f"(first cells: {cells.tolist()})"
        )
    return None


def check_state(
    mesh: Mesh,
    state: LTSState,
    config: GuardConfig = GuardConfig(),
    *,
    reference_total: np.ndarray | None = None,
) -> GuardReport:
    """Validate a solver state; returns a report, never raises.

    ``reference_total`` is the conserved-total vector
    (:meth:`LTSState.conserved_total`) the drift check compares
    against — typically captured with the rollback snapshot.
    """
    violations: list[str] = []
    for name, arr in (
        ("U", state.U),
        ("acc", state.acc),
        ("acc2", state.acc2),
    ):
        msg = _finite_violation(name, arr)
        if msg:
            violations.append(msg)

    # Primitive-variable floors are meaningless on non-finite data.
    if not violations:
        rho = state.U[:, 0]
        low = rho <= config.min_density
        if low.any():
            worst = int(np.argmin(rho))
            violations.append(
                f"{int(low.sum())} cells at or below density floor "
                f"{config.min_density:g} (worst: cell {worst}, "
                f"rho={rho[worst]:.3e})"
            )
        p = pressure(state.U)
        low = p <= config.min_pressure
        if low.any():
            worst = int(np.argmin(p))
            violations.append(
                f"{int(low.sum())} cells at or below pressure floor "
                f"{config.min_pressure:g} (worst: cell {worst}, "
                f"p={p[worst]:.3e})"
            )
        if config.max_drift is not None and reference_total is not None:
            total = state.conserved_total(mesh)
            for c in config.drift_components:
                ref = float(reference_total[c])
                drift = abs(float(total[c]) - ref) / max(abs(ref), 1.0)
                if drift > config.max_drift:
                    violations.append(
                        f"conserved component {c} drifted by {drift:.3e} "
                        f"(bound {config.max_drift:g}): "
                        f"{ref:.12e} -> {float(total[c]):.12e}"
                    )
    return GuardReport(ok=not violations, violations=violations)


class StateSnapshot:
    """Deep copy of the solver state + temporal configuration.

    Captured before an iteration; :meth:`make_state` rebuilds a *new*
    :class:`LTSState` (fresh arrays) so restoration is immune to
    abandoned worker threads still holding references to the old one.
    """

    __slots__ = ("U", "acc", "Ustar", "acc2", "tau", "dt_min", "iteration")

    def __init__(
        self,
        U: np.ndarray,
        acc: np.ndarray,
        Ustar: np.ndarray,
        acc2: np.ndarray,
        tau: np.ndarray,
        dt_min: float,
        iteration: int,
    ) -> None:
        self.U = U
        self.acc = acc
        self.Ustar = Ustar
        self.acc2 = acc2
        self.tau = tau
        self.dt_min = float(dt_min)
        self.iteration = int(iteration)

    @classmethod
    def capture(
        cls,
        state: LTSState,
        *,
        tau: np.ndarray,
        dt_min: float,
        iteration: int = 0,
    ) -> "StateSnapshot":
        """Deep-copy ``state`` (and its temporal config) for rollback."""
        return cls(
            U=state.U.copy(),
            acc=state.acc.copy(),
            Ustar=state.Ustar.copy(),
            acc2=state.acc2.copy(),
            tau=np.array(tau, copy=True),
            dt_min=dt_min,
            iteration=iteration,
        )

    def make_state(self) -> LTSState:
        """Rebuild a fresh :class:`LTSState` from the snapshot."""
        st = LTSState(self.U)
        st.acc[:] = self.acc
        st.Ustar[:] = self.Ustar
        st.acc2[:] = self.acc2
        return st

    def conserved_total(self, mesh: Mesh) -> np.ndarray:
        """Conserved totals of the snapshotted state."""
        return (self.U * mesh.cell_volumes[:, None]).sum(axis=0) + (
            self.acc
        ).sum(axis=0)
