"""Exception hierarchy of the resilience layer.

The executor, the physics guards, the checkpoint store and the
partitioner contracts each signal failure through a dedicated class so
callers can distinguish *retry this* (:class:`TransientError`), *this
worker is gone* (:class:`TaskTimeoutError`), *the physics went bad —
roll back* (:class:`PhysicsGuardError`), *this checkpoint is unusable*
(:class:`CheckpointError`) and *the partitioner could not honour its
output contract* (:class:`PartitionQualityError`).
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "TransientError",
    "TaskTimeoutError",
    "PhysicsGuardError",
    "CheckpointError",
    "JobFailedError",
    "QueueFull",
    "CircuitOpenError",
    "PartitionError",
    "PartitionInternalError",
    "PartitionQualityError",
]


class ResilienceError(RuntimeError):
    """Base class of all resilience-layer failures."""


class TransientError(ResilienceError):
    """A task failure that is expected to succeed on retry.

    This is the default member of
    :attr:`repro.runtime.executor.RetryPolicy.retry_on`; fault
    injection raises it for its simulated transient failures, and real
    kernels may raise it for recoverable conditions (e.g. a resource
    temporarily unavailable).
    """


class TaskTimeoutError(ResilienceError):
    """A task exceeded the executor's watchdog deadline.

    The hung worker thread cannot be reclaimed (Python threads are not
    killable), so the execution is aborted with this error instead of
    stalling forever; the campaign driver treats it as a rollback
    trigger.
    """

    def __init__(
        self, task: int, process: int, worker: int, deadline: float
    ) -> None:
        self.task = int(task)
        self.process = int(process)
        self.worker = int(worker)
        self.deadline = float(deadline)
        super().__init__(
            f"task {task} exceeded the {deadline:g}s watchdog deadline "
            f"on process {process} worker {worker}; aborting execution"
        )


class PhysicsGuardError(ResilienceError):
    """The physics guards kept failing after exhausting rollbacks.

    Carries the final :class:`~repro.resilience.guards.GuardReport`
    violations so the campaign's last diagnostic is preserved.
    """

    def __init__(self, message: str, violations: list[str] | None = None):
        self.violations = list(violations or [])
        super().__init__(message)


class CheckpointError(ResilienceError):
    """A checkpoint could not be written, found, or safely loaded."""


class JobFailedError(ResilienceError):
    """A ``repro serve`` job exhausted its retries (typed JobFailed).

    Carries the terminal diagnosis — ``job_id``, the failure ``kind``
    (``"WorkerDeath"``, ``"StageTimeout"``, an exception class name,
    ...), the attempt count and the *partial provenance*: the
    per-stage records the job streamed before dying, so a post-mortem
    sees exactly how far each attempt got.
    """

    def __init__(
        self,
        job_id: str,
        message: str,
        *,
        kind: str | None = None,
        attempts: int = 0,
        stages: list[dict] | None = None,
    ) -> None:
        self.job_id = str(job_id)
        self.kind = kind
        self.attempts = int(attempts)
        self.stages = list(stages or [])
        done = ", ".join(s.get("stage", "?") for s in self.stages)
        super().__init__(
            f"job {job_id} failed after {attempts} attempt(s)"
            + (f" [{kind}]" if kind else "")
            + f": {message}"
            + (f" (stages completed: {done})" if done else "")
        )


class QueueFull(ResilienceError):
    """The spool rejected a submission — admission control tripped.

    Carries the ``retry_after`` hint (seconds) a well-behaved client
    sleeps before resubmitting (:meth:`ServiceClient.submit` with
    ``block=True`` honors it), plus the tripped ``reason`` (``"depth"``
    or ``"bytes"``), the observed load and the configured limit.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 1.0,
        reason: str = "depth",
        observed: int = 0,
        limit: int = 0,
    ) -> None:
        self.retry_after = float(retry_after)
        self.reason = str(reason)
        self.observed = int(observed)
        self.limit = int(limit)
        super().__init__(
            f"{message} (retry after {self.retry_after:g}s)"
        )


class CircuitOpenError(ResilienceError):
    """A dead-lettered request was resubmitted while its breaker is
    open.

    The per-digest circuit breaker fast-fails resubmissions of a
    scenario that was dead-lettered (poison job: exhausted retries, or
    deterministic worker kills at one stage) until an operator closes
    it with ``repro serve deadletter retry`` (re-admit) or ``purge``
    (discard the evidence).  Carries the ``job_id`` and the dead-letter
    ``entry`` path so the error names exactly what to inspect.
    """

    def __init__(
        self, job_id: str, entry: str, *, reason: str | None = None
    ) -> None:
        self.job_id = str(job_id)
        self.entry = str(entry)
        self.reason = reason
        super().__init__(
            f"circuit open for job {job_id}: dead-lettered at {entry}"
            + (f" ({reason})" if reason else "")
            + "; close it with 'repro serve deadletter retry|purge'"
        )


class PartitionError(ResilienceError):
    """Base class of partitioner contract failures."""


class PartitionInternalError(PartitionError):
    """An internal partitioner invariant was violated.

    Replaces the bare ``assert`` statements in the hot kernels (greedy
    graph growing trial selection, incremental edge-cut tracking) so
    the safety net survives ``python -O``, which strips asserts.
    Hitting this is a bug in the partitioner, not in the caller's
    input.
    """


class PartitionQualityError(PartitionError):
    """A partition violated its output contract under ``strict=True``.

    Carries the list of contract ``violations`` (human-readable, one
    per failed check) and the ``provenance`` of the offending result so
    campaign drivers can log exactly which rung of the pipeline
    produced it.
    """

    def __init__(
        self,
        message: str,
        *,
        violations: list[str] | None = None,
        provenance: str = "primary",
    ) -> None:
        self.violations = list(violations or [])
        self.provenance = str(provenance)
        super().__init__(message)
