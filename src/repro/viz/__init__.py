"""Textual visualization: ASCII Gantt charts and stacked-bar
histograms (the paper's figures, in terminal form)."""

from .gantt import render_gantt, render_process_gantt
from .histograms import render_matrix, render_stacked_bars
from .levelmap import render_level_map

__all__ = [
    "render_gantt",
    "render_process_gantt",
    "render_stacked_bars",
    "render_matrix",
    "render_level_map",
]
