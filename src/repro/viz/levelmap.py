"""ASCII spatial maps of cell fields.

The paper's Fig. 3 color-codes a mesh slice by cell volume; the
equivalent terminal view renders any per-cell integer field (temporal
level, domain id, process id) on a character raster sampled at cell
centres.
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh

__all__ = ["render_level_map"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_level_map(
    mesh: Mesh,
    values: np.ndarray,
    *,
    width: int = 64,
    height: int = 32,
) -> str:
    """Render a per-cell integer field as an ASCII raster.

    Each raster pixel shows the value of the cell containing the
    sample point (cells being axis-aligned squares, containment is a
    bounds check on the nearest centre).
    """
    values = np.asarray(values)
    if len(values) != mesh.num_cells:
        raise ValueError("values length mismatch")
    lo = mesh.cell_centers.min(axis=0)
    hi = mesh.cell_centers.max(axis=0)
    span = np.maximum(hi - lo, 1e-300)
    half = np.sqrt(mesh.cell_volumes) / 2.0

    rows = []
    for r in range(height):
        y = hi[1] - (r + 0.5) / height * span[1]
        chars = []
        for c in range(width):
            x = lo[0] + (c + 0.5) / width * span[0]
            dx = np.abs(mesh.cell_centers[:, 0] - x)
            dy = np.abs(mesh.cell_centers[:, 1] - y)
            inside = (dx <= half) & (dy <= half)
            idx = np.flatnonzero(inside)
            if len(idx) == 0:
                chars.append(" ")
            else:
                v = int(values[idx[0]])
                chars.append(_GLYPHS[v % len(_GLYPHS)])
        rows.append("".join(chars))
    return "\n".join(rows)
