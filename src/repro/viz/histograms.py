"""Textual bar charts for the domain-characteristics figures.

Figs. 7 and 10 of the paper are stacked bar charts: operating cost per
process broken down by temporal level (a), and cumulative computation
per process broken down by subiteration (b).  These render the same
matrices as fixed-width text.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_stacked_bars", "render_matrix"]


def render_stacked_bars(
    matrix: np.ndarray,
    *,
    row_label: str = "proc",
    col_symbols: str | None = None,
    width: int = 60,
) -> str:
    """Render a ``(rows, classes)`` matrix as horizontal stacked bars.

    Every row is scaled to the global maximum row sum; segment ``c`` of
    a row is drawn with ``col_symbols[c]`` (digits by default).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rows, ncls = matrix.shape
    if col_symbols is None:
        col_symbols = "".join(str(c % 10) for c in range(ncls))
    total_max = matrix.sum(axis=1).max()
    if total_max <= 0:
        total_max = 1.0
    lines = []
    for r in range(rows):
        segs = []
        acc = 0.0
        drawn = 0
        for c in range(ncls):
            acc += matrix[r, c]
            upto = int(round(acc / total_max * width))
            segs.append(col_symbols[c] * max(0, upto - drawn))
            drawn = max(drawn, upto)
        lines.append(f"{row_label}{r:<3d} |{''.join(segs):<{width}}|")
    return "\n".join(lines)


def render_matrix(
    matrix: np.ndarray, *, row_label: str = "proc", fmt: str = "8.1f"
) -> str:
    """Render a numeric matrix with row labels (debug/report helper)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    lines = []
    for r in range(matrix.shape[0]):
        cells = " ".join(f"{v:{fmt}}" for v in matrix[r])
        lines.append(f"{row_label}{r:<3d} {cells}")
    return "\n".join(lines)
