"""ASCII Gantt rendering of execution traces.

The paper's evidence is largely visual (Figs. 5, 6, 9, 12, 13 are
Gantt charts color-coded by subiteration).  This module renders the
same charts as text: one row per process (composite view) or per
worker, time binned into columns, each cell showing the subiteration
digit of the dominant task (``.`` = idle).
"""

from __future__ import annotations

import numpy as np

from ..flusim.trace import Trace
from ..taskgraph.dag import TaskDAG

__all__ = ["render_gantt", "render_process_gantt"]

_IDLE = "."


def _bin_trace(
    trace: Trace,
    dag: TaskDAG,
    row_of_task: np.ndarray,
    num_rows: int,
    width: int,
) -> list[str]:
    span = trace.makespan
    if span <= 0:
        return [_IDLE * width] * num_rows
    # For each row and column pick the subiteration with the most
    # overlap time.
    nsub = int(dag.tasks.subiteration.max()) + 1
    overlap = np.zeros((num_rows, width, nsub), dtype=np.float64)
    col_w = span / width
    for t in range(dag.num_tasks):
        r = int(row_of_task[t])
        s, e = trace.start[t], trace.end[t]
        sub = int(dag.tasks.subiteration[t])
        c0 = int(s / col_w)
        c1 = min(int(np.ceil(e / col_w)), width)
        for c in range(c0, c1):
            lo = max(s, c * col_w)
            hi = min(e, (c + 1) * col_w)
            if hi > lo:
                overlap[r, c, sub] += hi - lo
    rows = []
    for r in range(num_rows):
        chars = []
        for c in range(width):
            tot = overlap[r, c].sum()
            if tot <= 0:
                chars.append(_IDLE)
            else:
                sub = int(np.argmax(overlap[r, c]))
                chars.append(str(sub % 10) if sub < 10 else "#")
        rows.append("".join(chars))
    return rows


def render_gantt(
    trace: Trace, dag: TaskDAG, *, width: int = 100, max_workers: int = 64
) -> str:
    """Worker-level Gantt chart (one row per (process, worker))."""
    workers = {}
    for t in range(dag.num_tasks):
        key = (int(trace.process[t]), int(trace.worker[t]))
        workers.setdefault(key, len(workers))
    keys = sorted(workers)[:max_workers]
    row_index = {k: i for i, k in enumerate(keys)}
    row_of_task = np.full(dag.num_tasks, -1, dtype=np.int64)
    for t in range(dag.num_tasks):
        key = (int(trace.process[t]), int(trace.worker[t]))
        row_of_task[t] = row_index.get(key, -1)
    keep = row_of_task >= 0
    rows = _bin_trace(
        _subset_trace(trace, keep),
        _subset_dag(dag, keep),
        row_of_task[keep],
        len(keys),
        width,
    )
    lines = [
        f"p{p:<3d}w{w:<3d} |{row}|"
        for (p, w), row in zip(keys, rows)
    ]
    return "\n".join(lines)


def render_process_gantt(trace: Trace, dag: TaskDAG, *, width: int = 100) -> str:
    """Composite-process Gantt chart (paper Fig. 6 style): a row is
    idle only when *no* core of the process is busy."""
    rows = _bin_trace(
        trace, dag, trace.process.astype(np.int64), trace.num_processes, width
    )
    return "\n".join(
        f"proc{p:<4d} |{row}|" for p, row in enumerate(rows)
    )


def _subset_trace(trace: Trace, keep: np.ndarray) -> Trace:
    return Trace(
        process=trace.process[keep],
        worker=trace.worker[keep],
        start=trace.start[keep],
        end=trace.end[keep],
        num_processes=trace.num_processes,
        cores_per_process=trace.cores_per_process,
    )


def _subset_dag(dag: TaskDAG, keep: np.ndarray):
    from ..taskgraph.task import TaskArrays

    t = dag.tasks
    tasks = TaskArrays(
        subiteration=t.subiteration[keep],
        phase_tau=t.phase_tau[keep],
        obj_type=t.obj_type[keep],
        locality=t.locality[keep],
        domain=t.domain[keep],
        process=t.process[keep],
        num_objects=t.num_objects[keep],
        cost=t.cost[keep],
    )
    return TaskDAG(tasks=tasks, edges=np.empty((0, 2), dtype=np.int64))
