"""Local-time-stepping (LTS) kernels.

The temporal-adaptive integration advances a cell of level τ by
``2**τ · dt_min`` at every one of its activations.  The scheme is kept
*conservative* with flux accumulators: a face of level ``τ_f`` is
evaluated at every subiteration ``s ≡ 0 (mod 2**τ_f)`` and deposits
``F · A · 2**τ_f · dt_min`` into both adjacent cells' accumulators; a
cell's activation simply applies (and clears) its accumulated budget.
Every face evaluation is applied to both sides exactly once, so the
invariant ``Σ_c U_c V_c + Σ_c acc_c = const`` holds *exactly* (up to
boundary fluxes) — the test suite checks it to machine precision.

These kernels are precisely the bodies of the task graph's FACE and
CELL tasks; :mod:`repro.solver.runner` times them per task.  A
straight (task-free) phase-loop driver is also provided as the
equivalence reference.

Startup transient: with updates at window *starts* (the paper's
activity pattern, Fig. 4), a cell whose faces span several levels
applies an incomplete flux window at its very first update — its
finer faces' deposits of the same subiteration arrive in later phases.
From the second window on, every update covers a complete, balanced
window (the finer-face information simply arrives with one-window
delay).  The effect is a one-time O(dt) perturbation at level
interfaces; conservation is never affected.

Two integration schemes share the accumulator machinery:

* **euler** — one (faces, cells) sweep per phase: first order in time;
* **heun** — the paper's second-order method: stage-1 faces, predictor
  cells (``U* = U + acc/V``), stage-2 faces evaluated at the predictor
  states into a second accumulator, corrector cells
  (``U += ½(acc + acc2)/V``).  On single-level meshes this is *exactly*
  classical Heun (verified to machine precision by the tests); at
  level interfaces the stage budgets carry the same one-window lag as
  the Euler scheme.  Conservation invariant:
  ``Σ U·V + ½ Σ (acc + acc2)``.
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh
from ..temporal.scheme import active_levels, num_subiterations
from .euler import FLUXES, physical_flux

__all__ = [
    "LTSState",
    "accumulate_face_fluxes",
    "apply_cell_updates",
    "predictor_update",
    "corrector_update",
    "lts_iteration",
]


class LTSState:
    """Mutable solver state for local time stepping.

    Attributes
    ----------
    U:
        ``(n, 4)`` conserved variables.
    acc:
        ``(n, 4)`` stage-1 flux accumulators (∫F(U)·A dt since each
        cell's last update).
    Ustar:
        ``(n, 4)`` Heun predictor states (stage-2 input; unused by the
        forward-Euler scheme).
    acc2:
        ``(n, 4)`` stage-2 flux accumulators (∫F(U*)·A dt).
    """

    def __init__(self, U: np.ndarray) -> None:
        self.U = np.array(U, dtype=np.float64, copy=True)
        self.acc = np.zeros_like(self.U)
        self.Ustar = self.U.copy()
        self.acc2 = np.zeros_like(self.U)

    def conserved_total(self, mesh: Mesh) -> np.ndarray:
        """``Σ_c U_c V_c + Σ_c acc_c`` — exactly conserved in the
        absence of boundary fluxes (forward-Euler scheme; the Heun
        scheme conserves ``Σ U·V + ½ Σ (acc + acc2)``, see
        :meth:`conserved_total_heun`)."""
        return (self.U * mesh.cell_volumes[:, None]).sum(axis=0) + (
            self.acc
        ).sum(axis=0)

    def conserved_total_heun(self, mesh: Mesh) -> np.ndarray:
        """``Σ_c U_c V_c + ½ Σ_c (acc_c + acc2_c)`` — the Heun scheme's
        exact invariant (each stage's deposits are eventually applied
        with weight ½)."""
        return (self.U * mesh.cell_volumes[:, None]).sum(axis=0) + 0.5 * (
            self.acc + self.acc2
        ).sum(axis=0)


def accumulate_face_fluxes(
    mesh: Mesh,
    state: LTSState,
    faces: np.ndarray,
    dt_face: float,
    *,
    flux: str = "rusanov",
    stage: int = 1,
) -> None:
    """FACE-task kernel: evaluate fluxes on ``faces`` and deposit
    ``F·A·dt_face`` into the adjacent accumulators.

    ``stage=1`` reads ``state.U`` and deposits into ``state.acc``;
    ``stage=2`` (the Heun corrector sweep) reads the predictor states
    ``state.Ustar`` and deposits into ``state.acc2``.  Boundary faces
    (second cell −1) use transmissive conditions.
    """
    if len(faces) == 0:
        return
    if stage == 1:
        src, acc = state.U, state.acc
    elif stage == 2:
        src, acc = state.Ustar, state.acc2
    else:
        raise ValueError("stage must be 1 or 2")
    flux_fn = FLUXES[flux]
    a = mesh.face_cells[faces, 0]
    b = mesh.face_cells[faces, 1]
    nx = mesh.face_normal[faces, 0]
    ny = mesh.face_normal[faces, 1]
    area = mesh.face_area[faces]
    interior = b >= 0
    UL = src[a]
    if np.all(interior):
        F = flux_fn(UL, src[b], nx, ny)
    else:
        UR = UL.copy()
        UR[interior] = src[b[interior]]
        F = np.empty_like(UL)
        if interior.any():
            F[interior] = flux_fn(
                UL[interior], UR[interior], nx[interior], ny[interior]
            )
        bnd = ~interior
        if bnd.any():
            F[bnd] = physical_flux(UL[bnd], nx[bnd], ny[bnd])
    w = F * (area * dt_face)[:, None]
    np.add.at(acc, a, -w)
    if interior.any():
        np.add.at(acc, b[interior], w[interior])


def apply_cell_updates(
    mesh: Mesh, state: LTSState, cells: np.ndarray
) -> None:
    """CELL-task kernel: apply and clear the accumulated flux budget of
    ``cells``."""
    if len(cells) == 0:
        return
    state.U[cells] += state.acc[cells] / mesh.cell_volumes[cells, None]
    state.acc[cells] = 0.0


def predictor_update(mesh: Mesh, state: LTSState, cells: np.ndarray) -> None:
    """Heun predictor: ``U* = U + acc/V`` (stage-1 budget, *not*
    cleared — the corrector reuses it)."""
    if len(cells) == 0:
        return
    state.Ustar[cells] = (
        state.U[cells] + state.acc[cells] / mesh.cell_volumes[cells, None]
    )


def corrector_update(mesh: Mesh, state: LTSState, cells: np.ndarray) -> None:
    """Heun corrector: ``U += ½ (acc + acc2)/V``; both budgets are
    cleared."""
    if len(cells) == 0:
        return
    state.U[cells] += (
        0.5
        * (state.acc[cells] + state.acc2[cells])
        / mesh.cell_volumes[cells, None]
    )
    state.acc[cells] = 0.0
    state.acc2[cells] = 0.0


def lts_iteration(
    mesh: Mesh,
    state: LTSState,
    tau: np.ndarray,
    cell_tau_faces: dict[int, np.ndarray],
    cell_tau_cells: dict[int, np.ndarray],
    dt_min: float,
    *,
    flux: str = "rusanov",
    scheme: str = "euler",
) -> None:
    """One full iteration (``2**τ_max`` subiterations) as a direct
    phase loop — the task-free reference implementation.

    ``cell_tau_faces[τ]`` / ``cell_tau_cells[τ]`` are the face/cell
    index sets of each level (see
    :func:`repro.temporal.levels.face_levels`).

    ``scheme="euler"`` runs one (face, cell) sweep per phase;
    ``scheme="heun"`` runs the paper's second-order method as four
    sweeps per phase: stage-1 faces, predictor cells, stage-2 faces
    (evaluated at the predictor states), corrector cells.
    """
    if scheme not in ("euler", "heun"):
        raise ValueError(f"unknown scheme {scheme!r}")
    tau_max = int(np.asarray(tau).max())
    empty = np.empty(0, dtype=np.int64)
    for s in range(num_subiterations(tau_max)):
        for t in active_levels(s, tau_max):
            faces = cell_tau_faces.get(t, empty)
            cells = cell_tau_cells.get(t, empty)
            dt_face = (1 << t) * dt_min
            accumulate_face_fluxes(
                mesh, state, faces, dt_face, flux=flux, stage=1
            )
            if scheme == "euler":
                apply_cell_updates(mesh, state, cells)
            else:
                predictor_update(mesh, state, cells)
                accumulate_face_fluxes(
                    mesh, state, faces, dt_face, flux=flux, stage=2
                )
                corrector_update(mesh, state, cells)
