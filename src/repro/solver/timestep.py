"""CFL-stable time steps and the temporal levels they induce.

"The maximum time step allowed for a cell depends mainly on its
volume" (paper §I).  For an explicit FV scheme the standard bound is

    Δt_c ≤ CFL · V_c / Σ_f (|u·n| + c)_f A_f ,

the sum running over the cell's faces.  Temporal levels follow as the
octave of each cell's Δt above the global minimum
(:func:`repro.temporal.levels.levels_from_timestep`).
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh
from ..temporal.levels import levels_from_timestep
from .euler import max_wave_speed

__all__ = ["stable_timesteps", "assign_temporal_levels"]


def stable_timesteps(
    mesh: Mesh, U: np.ndarray, *, cfl: float = 0.4
) -> np.ndarray:
    """Per-cell CFL-stable time step for state ``U``."""
    a = mesh.face_cells[:, 0]
    b = mesh.face_cells[:, 1]
    interior = b >= 0
    s = max_wave_speed(U)
    # Face signal speed: max of adjacent cell speeds.
    sf = s[a].copy()
    sf[interior] = np.maximum(sf[interior], s[b[interior]])
    contrib = sf * mesh.face_area
    denom = np.zeros(mesh.num_cells)
    np.add.at(denom, a, contrib)
    np.add.at(denom, b[interior], contrib[interior])
    denom = np.maximum(denom, 1e-300)
    return cfl * mesh.cell_volumes / denom


def assign_temporal_levels(
    mesh: Mesh,
    U: np.ndarray,
    *,
    cfl: float = 0.4,
    num_levels: int | None = None,
) -> tuple[np.ndarray, float]:
    """Temporal levels and the base (finest) time step for state ``U``.

    Returns ``(tau, dt_min)``: the per-cell levels and the subiteration
    time step.  A cell of level τ advances by ``2**τ · dt_min`` at each
    of its updates, which is guaranteed ≤ its own stability bound.
    """
    dt = stable_timesteps(mesh, U, cfl=cfl)
    tau = levels_from_timestep(dt, num_levels=num_levels)
    return tau, float(dt.min())
