"""2D compressible Euler equations: state conversions and numerical
fluxes.

The conserved state is ``U = [ρ, ρu, ρv, E]`` per cell.  Fluxes are
evaluated on faces with rotated one-dimensional Riemann solvers:
Rusanov (local Lax–Friedrichs, the robust default) and HLLC (sharper
contact resolution, provided as the higher-fidelity option).
All functions are fully vectorized over faces/cells.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GAMMA",
    "primitive_to_conservative",
    "conservative_to_primitive",
    "pressure",
    "sound_speed",
    "max_wave_speed",
    "physical_flux",
    "rusanov_flux",
    "hllc_flux",
    "FLUXES",
]

#: Ratio of specific heats (diatomic gas).
GAMMA = 1.4


def primitive_to_conservative(
    rho: np.ndarray, u: np.ndarray, v: np.ndarray, p: np.ndarray
) -> np.ndarray:
    """Pack primitive variables ``(ρ, u, v, p)`` into ``U`` of shape
    ``(..., 4)``."""
    E = p / (GAMMA - 1.0) + 0.5 * rho * (u * u + v * v)
    return np.stack([rho, rho * u, rho * v, E], axis=-1)


def conservative_to_primitive(
    U: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Unpack ``U`` into ``(ρ, u, v, p)``; raises on non-physical
    states (ρ ≤ 0 or p ≤ 0)."""
    rho = U[..., 0]
    if np.any(rho <= 0):
        raise FloatingPointError("non-positive density")
    u = U[..., 1] / rho
    v = U[..., 2] / rho
    p = (GAMMA - 1.0) * (U[..., 3] - 0.5 * rho * (u * u + v * v))
    if np.any(p <= 0):
        raise FloatingPointError("non-positive pressure")
    return rho, u, v, p


def pressure(U: np.ndarray) -> np.ndarray:
    """Pressure from the conserved state."""
    rho = U[..., 0]
    u = U[..., 1] / rho
    v = U[..., 2] / rho
    return (GAMMA - 1.0) * (U[..., 3] - 0.5 * rho * (u * u + v * v))


def sound_speed(U: np.ndarray) -> np.ndarray:
    """Speed of sound ``c = sqrt(γ p / ρ)``."""
    return np.sqrt(GAMMA * pressure(U) / U[..., 0])


def max_wave_speed(U: np.ndarray) -> np.ndarray:
    """``|velocity| + c`` — the fastest signal speed per state."""
    rho = U[..., 0]
    speed = np.hypot(U[..., 1], U[..., 2]) / rho
    return speed + sound_speed(U)


def physical_flux(U: np.ndarray, nx: np.ndarray, ny: np.ndarray) -> np.ndarray:
    """Euler flux ``F(U)·n`` through faces with unit normals
    ``(nx, ny)``."""
    rho, u, v, p = conservative_to_primitive(U)
    un = u * nx + v * ny
    E = U[..., 3]
    return np.stack(
        [
            rho * un,
            rho * u * un + p * nx,
            rho * v * un + p * ny,
            (E + p) * un,
        ],
        axis=-1,
    )


def rusanov_flux(
    UL: np.ndarray, UR: np.ndarray, nx: np.ndarray, ny: np.ndarray
) -> np.ndarray:
    """Rusanov (local Lax–Friedrichs) numerical flux.

    ``F = ½(F(UL) + F(UR))·n − ½ s_max (UR − UL)`` with ``s_max`` the
    largest signal speed of the two states.
    """
    FL = physical_flux(UL, nx, ny)
    FR = physical_flux(UR, nx, ny)
    smax = np.maximum(max_wave_speed(UL), max_wave_speed(UR))
    return 0.5 * (FL + FR) - 0.5 * smax[..., None] * (UR - UL)


def hllc_flux(
    UL: np.ndarray, UR: np.ndarray, nx: np.ndarray, ny: np.ndarray
) -> np.ndarray:
    """HLLC approximate Riemann solver (Toro), rotated to the face
    normal.  Resolves contact discontinuities that Rusanov smears."""
    rhoL, uL, vL, pL = conservative_to_primitive(UL)
    rhoR, uR, vR, pR = conservative_to_primitive(UR)
    # Normal/tangential projection.
    unL = uL * nx + vL * ny
    unR = uR * nx + vR * ny
    cL = np.sqrt(GAMMA * pL / rhoL)
    cR = np.sqrt(GAMMA * pR / rhoR)

    # Davis wave-speed estimates.
    sL = np.minimum(unL - cL, unR - cR)
    sR = np.maximum(unL + cL, unR + cR)
    num = pR - pL + rhoL * unL * (sL - unL) - rhoR * unR * (sR - unR)
    den = rhoL * (sL - unL) - rhoR * (sR - unR)
    sM = np.where(np.abs(den) > 1e-300, num / np.where(den == 0, 1, den), 0.0)

    FL = physical_flux(UL, nx, ny)
    FR = physical_flux(UR, nx, ny)

    def star_state(U, rho, un, p, s):
        factor = rho * (s - un) / np.where(
            np.abs(s - sM) > 1e-300, s - sM, 1e-300
        )
        E = U[..., 3]
        u_ = U[..., 1] / rho
        v_ = U[..., 2] / rho
        ut_x = u_ - un * nx
        ut_y = v_ - un * ny
        e_star = E / rho + (sM - un) * (sM + p / (rho * (s - un)))
        return factor[..., None] * np.stack(
            [
                np.ones_like(rho),
                sM * nx + ut_x,
                sM * ny + ut_y,
                e_star,
            ],
            axis=-1,
        )

    UstarL = star_state(UL, rhoL, unL, pL, sL)
    UstarR = star_state(UR, rhoR, unR, pR, sR)
    FstarL = FL + sL[..., None] * (UstarL - UL)
    FstarR = FR + sR[..., None] * (UstarR - UR)

    out = np.where(
        (sL >= 0)[..., None],
        FL,
        np.where(
            (sM >= 0)[..., None],
            FstarL,
            np.where((sR >= 0)[..., None], FstarR, FR),
        ),
    )
    return out


#: Flux-name → function map.
FLUXES = {"rusanov": rusanov_flux, "hllc": hllc_flux}
