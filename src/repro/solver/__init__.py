"""Mini-FLUSEPA: 2D compressible-Euler finite-volume solver with
temporal-adaptive local time stepping, executable through the task
graph."""

from .euler import (
    FLUXES,
    GAMMA,
    conservative_to_primitive,
    hllc_flux,
    max_wave_speed,
    physical_flux,
    pressure,
    primitive_to_conservative,
    rusanov_flux,
    sound_speed,
)
from .heun import euler_step, heun_step, integrate, residual
from .lts import (
    LTSState,
    accumulate_face_fluxes,
    apply_cell_updates,
    lts_iteration,
)
from .runner import IterationResult, TaskDistributedSolver
from .state import blast_wave, jet_flow, quiescent
from .timestep import assign_temporal_levels, stable_timesteps

__all__ = [
    "GAMMA",
    "FLUXES",
    "primitive_to_conservative",
    "conservative_to_primitive",
    "pressure",
    "sound_speed",
    "max_wave_speed",
    "physical_flux",
    "rusanov_flux",
    "hllc_flux",
    "residual",
    "euler_step",
    "heun_step",
    "integrate",
    "LTSState",
    "accumulate_face_fluxes",
    "apply_cell_updates",
    "lts_iteration",
    "TaskDistributedSolver",
    "IterationResult",
    "blast_wave",
    "jet_flow",
    "quiescent",
    "stable_timesteps",
    "assign_temporal_levels",
]
