"""Multi-iteration simulation campaigns.

FLUSEPA runs thousands of iterations; the paper's analysis rests on
the observation that "the temporal levels of the cells experience
minimal evolution across iterations — hence, optimizing the entire
computation is equivalent to optimizing an individual iteration"
(§III-A).  This driver makes that workflow — and that claim —
testable:

* runs iterations of the task-distributed solver, either serially or
  on the threaded runtime (with optional fault injection, retry and a
  hang watchdog — see :mod:`repro.resilience`);
* every ``relevel_every`` iterations, re-derives the CFL-stable levels
  from the current state and records how many cells changed level;
* re-partitions (and regenerates the task graph) when the drift
  exceeds ``repartition_threshold``;
* optionally validates the physics after every iteration and, on a
  violation, rolls back to the last in-memory snapshot — halving the
  base step on repeated failure and giving up with a diagnostic
  :class:`~repro.resilience.errors.PhysicsGuardError` after
  ``max_consecutive_rollbacks``;
* optionally writes atomic on-disk checkpoints every
  ``checkpoint_every`` iterations, from which
  :meth:`SimulationDriver.from_checkpoint` reconstructs and continues
  the campaign bit-for-bit (serial executor).

The campaign history quantifies level drift, repartitioning frequency
and — under injected faults — the recovery cost (retries, rollbacks,
wasted work) for the replica workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..mesh.structures import Mesh
from ..partitioning.decomposition import DomainDecomposition
from ..partitioning.strategies import make_decomposition
from ..resilience.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from ..resilience.errors import (
    PhysicsGuardError,
    TaskTimeoutError,
    TransientError,
)
from ..resilience.faults import FaultPlan
from ..resilience.guards import GuardConfig, StateSnapshot, check_state
from ..temporal.levels import levels_from_timestep, relevel_with_hysteresis
from .lts import LTSState
from .runner import TaskDistributedSolver
from .timestep import stable_timesteps

__all__ = [
    "IterationRecord",
    "CampaignHealth",
    "CampaignResult",
    "SimulationDriver",
]


@dataclass
class IterationRecord:
    """History entry for one iteration of a campaign."""

    iteration: int
    elapsed: float
    level_changes: int  # cells whose τ changed at the last re-leveling
    repartitioned: bool
    rollbacks: int = 0  # rollbacks consumed before this iteration stuck
    retries: int = 0  # executor task retries within this iteration
    checkpointed: bool = False


@dataclass
class CampaignHealth:
    """Aggregate resilience accounting for a campaign."""

    retries: int = 0
    rollbacks: int = 0
    checkpoints: int = 0
    wasted_seconds: float = 0.0
    guard_violations: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"retries={self.retries} rollbacks={self.rollbacks} "
            f"checkpoints={self.checkpoints} "
            f"wasted={self.wasted_seconds:.3f}s "
            f"violations={len(self.guard_violations)}"
        )


@dataclass
class CampaignResult:
    """Outcome of :meth:`SimulationDriver.run`.

    Attributes
    ----------
    records:
        One entry per *completed* iteration (rolled-back attempts are
        folded into the eventual record's ``rollbacks`` count).
    state:
        Final solver state.
    health:
        Aggregate retry/rollback/checkpoint accounting.
    """

    records: list[IterationRecord] = field(default_factory=list)
    state: LTSState | None = None
    health: CampaignHealth = field(default_factory=CampaignHealth)

    @property
    def num_repartitions(self) -> int:
        """How many times the campaign re-partitioned."""
        return sum(r.repartitioned for r in self.records)

    def level_drift_fraction(self, num_cells: int) -> float:
        """Mean fraction of cells changing level per re-leveling."""
        checks = [r.level_changes for r in self.records if r.level_changes >= 0]
        if not checks:
            return 0.0
        return float(np.mean(checks)) / num_cells


class SimulationDriver:
    """Run a multi-iteration campaign with periodic re-leveling.

    Parameters
    ----------
    mesh, U0:
        The mesh and initial conserved state.
    num_domains, num_processes, strategy:
        Decomposition parameters (re-used on every repartition).
    num_levels:
        Cap on temporal levels.
    relevel_every:
        Re-derive CFL levels every this many iterations (0 = never).
    repartition_threshold:
        Fraction of cells changing level that triggers repartitioning.
    guard:
        Optional :class:`~repro.resilience.guards.GuardConfig`; when
        set, every iteration is validated and rolled back on
        violation.
    executor:
        ``"serial"`` (deterministic, the default) or ``"threaded"``
        (the real worker-thread runtime).
    cores_per_process, fault_plan, retry, watchdog:
        Threaded-executor knobs (see
        :func:`repro.runtime.run_iteration_threaded`); ``fault_plan``
        requires the threaded executor.
    checkpoint_every, checkpoint_dir:
        Write an atomic checkpoint every N completed iterations into
        ``checkpoint_dir`` (both must be set to enable).
    debug_verify_dag:
        Audit every generated task graph with
        :func:`repro.taskgraph.verify.verify_dag` (structure + coverage
        invariants) and raise on violations.  Costs one extra pass over
        the DAG per (re)build — meant for debugging and CI, not
        production campaigns.
    """

    def __init__(
        self,
        mesh: Mesh,
        U0: np.ndarray,
        *,
        num_domains: int,
        num_processes: int,
        strategy: str = "MC_TL",
        num_levels: int | None = None,
        cfl: float = 0.4,
        relevel_every: int = 1,
        repartition_threshold: float = 0.05,
        seed: int = 0,
        flux: str = "rusanov",
        guard: GuardConfig | None = None,
        executor: str = "serial",
        cores_per_process: int = 2,
        fault_plan: FaultPlan | None = None,
        retry=None,
        watchdog: float | None = None,
        checkpoint_every: int = 0,
        checkpoint_dir: str | Path | None = None,
        debug_verify_dag: bool = False,
    ) -> None:
        self._configure(
            mesh,
            num_domains=num_domains,
            num_processes=num_processes,
            strategy=strategy,
            num_levels=num_levels,
            cfl=cfl,
            relevel_every=relevel_every,
            repartition_threshold=repartition_threshold,
            seed=seed,
            flux=flux,
            guard=guard,
            executor=executor,
            cores_per_process=cores_per_process,
            fault_plan=fault_plan,
            retry=retry,
            watchdog=watchdog,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            debug_verify_dag=debug_verify_dag,
        )
        self.state = LTSState(U0)
        self.iteration = 0
        self.rng = np.random.default_rng(seed)
        self.tau, self.dt_min = self._derive_levels()
        # Anchor the octave reference for hysteresis re-leveling: a
        # moving reference would reclassify cell populations whenever
        # the global minimum drifts (see
        # :func:`repro.temporal.levels.relevel_with_hysteresis`).
        self.dt_ref = self.dt_min
        self._rebuild(first=True)

    # ------------------------------------------------------------------
    def _configure(
        self,
        mesh: Mesh,
        *,
        num_domains: int,
        num_processes: int,
        strategy: str,
        num_levels: int | None,
        cfl: float,
        relevel_every: int,
        repartition_threshold: float,
        seed: int,
        flux: str,
        guard: GuardConfig | None,
        executor: str,
        cores_per_process: int,
        fault_plan: FaultPlan | None,
        retry,
        watchdog: float | None,
        checkpoint_every: int,
        checkpoint_dir: str | Path | None,
        debug_verify_dag: bool = False,
    ) -> None:
        if executor not in ("serial", "threaded"):
            raise ValueError(
                f"unknown executor {executor!r}; expected 'serial' or "
                "'threaded'"
            )
        if fault_plan is not None and executor != "threaded":
            raise ValueError("fault_plan requires executor='threaded'")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        self.mesh = mesh
        self.num_domains = num_domains
        self.num_processes = num_processes
        self.strategy = strategy
        self.num_levels = num_levels
        self.cfl = cfl
        self.relevel_every = relevel_every
        self.repartition_threshold = repartition_threshold
        self.seed = seed
        self.flux = flux
        self.guard = guard
        self.executor = executor
        self.cores_per_process = cores_per_process
        self.fault_plan = fault_plan
        self.retry = retry
        self.watchdog = watchdog
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.debug_verify_dag = debug_verify_dag

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        mesh: Mesh,
        path: str | Path,
        *,
        guard: GuardConfig | None = None,
        executor: str = "serial",
        cores_per_process: int = 2,
        fault_plan: FaultPlan | None = None,
        retry=None,
        watchdog: float | None = None,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | Path | None = None,
        debug_verify_dag: bool = False,
    ) -> "SimulationDriver":
        """Reconstruct a campaign from an on-disk checkpoint.

        The stored domain assignment is reused verbatim (*no*
        re-partitioning — the levels have evolved since the partition
        was computed); resilience knobs are per-session and passed
        fresh.  ``checkpoint_every``/``checkpoint_dir`` default to the
        values the checkpoint was written with.
        """
        from ..resilience.errors import CheckpointError

        ck = load_checkpoint(path)
        if len(ck.U) != mesh.num_cells:
            raise CheckpointError(
                f"checkpoint {path} has {len(ck.U)} cells but the mesh "
                f"has {mesh.num_cells}; wrong mesh?"
            )
        meta = ck.meta
        if checkpoint_every is None:
            checkpoint_every = int(meta.get("checkpoint_every", 0))
        if checkpoint_dir is None:
            checkpoint_dir = Path(path).parent if checkpoint_every else None

        drv = cls.__new__(cls)
        drv._configure(
            mesh,
            num_domains=ck.num_domains,
            num_processes=ck.num_processes,
            strategy=meta.get("strategy", "MC_TL"),
            num_levels=meta.get("num_levels"),
            cfl=float(meta.get("cfl", 0.4)),
            relevel_every=int(meta.get("relevel_every", 1)),
            repartition_threshold=float(
                meta.get("repartition_threshold", 0.05)
            ),
            seed=int(meta.get("seed", 0)),
            flux=meta.get("flux", "rusanov"),
            guard=guard,
            executor=executor,
            cores_per_process=cores_per_process,
            fault_plan=fault_plan,
            retry=retry,
            watchdog=watchdog,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            debug_verify_dag=debug_verify_dag,
        )
        st = LTSState(ck.U)
        st.acc[:] = ck.acc
        st.Ustar[:] = ck.Ustar
        st.acc2[:] = ck.acc2
        drv.state = st
        drv.iteration = ck.iteration
        drv.rng = np.random.default_rng(drv.seed)
        if ck.rng_state is not None:
            drv.rng.bit_generator.state = ck.rng_state
        drv.tau = np.asarray(ck.tau, dtype=np.int32)
        drv.dt_min = ck.dt_min
        drv.dt_ref = ck.dt_ref
        drv._last_dt = None
        drv.decomp = DomainDecomposition(
            domain=ck.domain,
            num_domains=ck.num_domains,
            domain_process=ck.domain_process,
            num_processes=ck.num_processes,
            strategy=meta.get("strategy", "?"),
        )
        drv.solver = TaskDistributedSolver(
            mesh, drv.tau, drv.decomp, drv.dt_min, flux=drv.flux
        )
        drv._verify_solver_dag()
        return drv

    def save_checkpoint(self, directory: str | Path | None = None) -> Path:
        """Write an atomic checkpoint of the current campaign position
        (``iteration`` = completed iterations); returns the manifest
        path."""
        directory = directory if directory is not None else self.checkpoint_dir
        if directory is None:
            raise ValueError("no checkpoint directory configured")
        ck = Checkpoint(
            iteration=self.iteration,
            U=self.state.U,
            acc=self.state.acc,
            Ustar=self.state.Ustar,
            acc2=self.state.acc2,
            tau=self.tau,
            domain=self.decomp.domain,
            domain_process=self.decomp.domain_process,
            dt_min=self.dt_min,
            dt_ref=self.dt_ref,
            num_processes=self.num_processes,
            rng_state=self.rng.bit_generator.state,
            meta={
                "strategy": self.strategy,
                "num_levels": self.num_levels,
                "cfl": self.cfl,
                "relevel_every": self.relevel_every,
                "repartition_threshold": self.repartition_threshold,
                "seed": self.seed,
                "flux": self.flux,
                "checkpoint_every": self.checkpoint_every,
            },
        )
        return save_checkpoint(directory, ck)

    # ------------------------------------------------------------------
    def _derive_levels(self) -> tuple[np.ndarray, float]:
        dt = stable_timesteps(self.mesh, self.state.U, cfl=self.cfl)
        self._last_dt = dt
        tau = levels_from_timestep(dt, num_levels=self.num_levels)
        dt_min = float((dt / np.exp2(tau)).min())
        return tau, dt_min

    def _rebuild(self, *, first: bool = False) -> None:
        self.decomp = make_decomposition(
            self.mesh,
            self.tau,
            self.num_domains,
            self.num_processes,
            strategy=self.strategy,
            seed=self.seed,
        )
        self.solver = TaskDistributedSolver(
            self.mesh, self.tau, self.decomp, self.dt_min, flux=self.flux
        )
        self._verify_solver_dag()
        # Pending accumulations belong to the old schedule; apply any
        # residue before switching task structures so nothing is lost.
        if not first:
            nonzero = np.flatnonzero(np.abs(self.state.acc).sum(axis=1) > 0)
            if len(nonzero):
                self.state.U[nonzero] += (
                    self.state.acc[nonzero]
                    / self.mesh.cell_volumes[nonzero, None]
                )
                self.state.acc[nonzero] = 0.0

    def _verify_solver_dag(self) -> None:
        """Audit the freshly generated task graph (debug mode).

        Runs :func:`repro.taskgraph.verify.verify_dag` with the full
        coverage checks and raises on any violation — a generator
        regression should abort the campaign, not skew its results.
        """
        if not getattr(self, "debug_verify_dag", False):
            return
        from ..taskgraph.verify import verify_dag

        verify_dag(
            self.solver.dag,
            self.mesh,
            self.tau,
            scheme=self.solver.scheme,
            strict=True,
        )

    # ------------------------------------------------------------------
    def _run_one(self) -> tuple[float, int, float]:
        """One iteration on the configured executor; returns
        ``(elapsed, retries, wasted_seconds)``."""
        if self.executor == "threaded":
            from ..runtime import run_iteration_threaded

            run = run_iteration_threaded(
                self.solver,
                self.state,
                cores_per_process=self.cores_per_process,
                fault_plan=self.fault_plan,
                retry=self.retry,
                watchdog=self.watchdog,
            )
            h = run.result.health
            if not h.ok:
                # fail_fast=False left failed/skipped tasks behind: the
                # iteration is incomplete — surface it to the guard.
                raise TransientError(
                    f"incomplete iteration: {h.summary()}"
                )
            return run.result.elapsed, h.retries, h.total_wasted
        r = self.solver.run_iteration(self.state)
        return r.elapsed, 0, 0.0

    def run(self, iterations: int) -> CampaignResult:
        """Run ``iterations`` further full iterations; returns the
        campaign history (iteration numbers are global across
        checkpoint/resume)."""
        result = CampaignResult()
        health = result.health
        guard = self.guard
        snapshot: StateSnapshot | None = None
        ref_total: np.ndarray | None = None
        if guard is not None:
            snapshot = StateSnapshot.capture(
                self.state, tau=self.tau, dt_min=self.dt_min,
                iteration=self.iteration,
            )
            ref_total = snapshot.conserved_total(self.mesh)
        rollback_round = 0
        done = 0
        while done < iterations:
            it = self.iteration
            if self.fault_plan is not None:
                self.fault_plan.set_context(it, rollback_round)
            violations: list[str] = []
            iter_retries = 0
            try:
                elapsed, iter_retries, wasted = self._run_one()
                health.retries += iter_retries
                health.wasted_seconds += wasted
            except (TransientError, TaskTimeoutError) as exc:
                if guard is None:
                    raise
                violations = [f"{type(exc).__name__}: {exc}"]
                elapsed = 0.0
            if guard is not None and not violations:
                report = check_state(
                    self.mesh, self.state, guard,
                    reference_total=ref_total,
                )
                violations = report.violations
            if violations:
                # Roll back to the last good snapshot; re-run at the
                # same dt once, then degrade by halving the base step.
                assert snapshot is not None
                health.rollbacks += 1
                rollback_round += 1
                health.guard_violations.extend(
                    f"iteration {it}: {v}" for v in violations
                )
                if rollback_round > guard.max_consecutive_rollbacks:
                    raise PhysicsGuardError(
                        f"iteration {it} failed its physics guards "
                        f"{rollback_round} consecutive times "
                        f"(dt_min={self.dt_min:.3e}); last violations: "
                        + "; ".join(violations),
                        violations=health.guard_violations,
                    )
                # Fresh arrays: a worker abandoned by the watchdog may
                # still hold references to the old state.
                self.state = snapshot.make_state()
                if rollback_round >= 2:
                    self.dt_min *= 0.5
                    self.solver.dt_min = self.dt_min
                continue
            rolled, rollback_round = rollback_round, 0
            changes = -1
            repartitioned = False
            if self.relevel_every and (it + 1) % self.relevel_every == 0:
                dt = stable_timesteps(self.mesh, self.state.U, cfl=self.cfl)
                self._last_dt = dt
                new_tau = relevel_with_hysteresis(
                    dt,
                    self.tau,
                    self.dt_ref,
                    num_levels=self.num_levels,
                )
                new_dt = float((dt / np.exp2(new_tau)).min())
                changes = int(np.sum(new_tau != self.tau))
                drift = changes / self.mesh.num_cells
                if drift > self.repartition_threshold:
                    self.tau, self.dt_min = new_tau, new_dt
                    self._rebuild()
                    repartitioned = True
                else:
                    # Keep the old levels/decomposition, but ensure the
                    # base step is still CFL-safe for them: a level-τ
                    # cell advances 2^τ·dt_min per activation.
                    safe_dt = float(
                        (self._last_dt / np.exp2(self.tau)).min()
                    )
                    if safe_dt < self.dt_min:
                        self.dt_min = safe_dt
                        self.solver.dt_min = safe_dt
            self.iteration += 1
            done += 1
            checkpointed = False
            if (
                self.checkpoint_every
                and self.iteration % self.checkpoint_every == 0
            ):
                self.save_checkpoint()
                health.checkpoints += 1
                checkpointed = True
            if guard is not None:
                snapshot = StateSnapshot.capture(
                    self.state, tau=self.tau, dt_min=self.dt_min,
                    iteration=self.iteration,
                )
                ref_total = snapshot.conserved_total(self.mesh)
            result.records.append(
                IterationRecord(
                    iteration=it,
                    elapsed=elapsed,
                    level_changes=changes,
                    repartitioned=repartitioned,
                    rollbacks=rolled,
                    retries=iter_retries,
                    checkpointed=checkpointed,
                )
            )
        result.state = self.state
        return result
