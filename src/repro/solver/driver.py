"""Multi-iteration simulation campaigns.

FLUSEPA runs thousands of iterations; the paper's analysis rests on
the observation that "the temporal levels of the cells experience
minimal evolution across iterations — hence, optimizing the entire
computation is equivalent to optimizing an individual iteration"
(§III-A).  This driver makes that workflow — and that claim —
testable:

* runs iterations of the task-distributed solver;
* every ``relevel_every`` iterations, re-derives the CFL-stable levels
  from the current state and records how many cells changed level;
* re-partitions (and regenerates the task graph) when the drift
  exceeds ``repartition_threshold``.

The campaign history quantifies level drift and repartitioning
frequency for the replica workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..mesh.structures import Mesh
from ..partitioning.strategies import make_decomposition
from ..temporal.levels import levels_from_timestep, relevel_with_hysteresis
from .lts import LTSState
from .runner import TaskDistributedSolver
from .timestep import stable_timesteps

__all__ = ["IterationRecord", "CampaignResult", "SimulationDriver"]


@dataclass
class IterationRecord:
    """History entry for one iteration of a campaign."""

    iteration: int
    elapsed: float
    level_changes: int  # cells whose τ changed at the last re-leveling
    repartitioned: bool


@dataclass
class CampaignResult:
    """Outcome of :meth:`SimulationDriver.run`.

    Attributes
    ----------
    records:
        One entry per iteration.
    state:
        Final solver state.
    """

    records: list[IterationRecord] = field(default_factory=list)
    state: LTSState | None = None

    @property
    def num_repartitions(self) -> int:
        """How many times the campaign re-partitioned."""
        return sum(r.repartitioned for r in self.records)

    def level_drift_fraction(self, num_cells: int) -> float:
        """Mean fraction of cells changing level per re-leveling."""
        checks = [r.level_changes for r in self.records if r.level_changes >= 0]
        if not checks:
            return 0.0
        return float(np.mean(checks)) / num_cells


class SimulationDriver:
    """Run a multi-iteration campaign with periodic re-leveling.

    Parameters
    ----------
    mesh, U0:
        The mesh and initial conserved state.
    num_domains, num_processes, strategy:
        Decomposition parameters (re-used on every repartition).
    num_levels:
        Cap on temporal levels.
    relevel_every:
        Re-derive CFL levels every this many iterations (0 = never).
    repartition_threshold:
        Fraction of cells changing level that triggers repartitioning.
    """

    def __init__(
        self,
        mesh: Mesh,
        U0: np.ndarray,
        *,
        num_domains: int,
        num_processes: int,
        strategy: str = "MC_TL",
        num_levels: int | None = None,
        cfl: float = 0.4,
        relevel_every: int = 1,
        repartition_threshold: float = 0.05,
        seed: int = 0,
        flux: str = "rusanov",
    ) -> None:
        self.mesh = mesh
        self.num_domains = num_domains
        self.num_processes = num_processes
        self.strategy = strategy
        self.num_levels = num_levels
        self.cfl = cfl
        self.relevel_every = relevel_every
        self.repartition_threshold = repartition_threshold
        self.seed = seed
        self.flux = flux

        self.state = LTSState(U0)
        self.tau, self.dt_min = self._derive_levels()
        # Anchor the octave reference for hysteresis re-leveling: a
        # moving reference would reclassify cell populations whenever
        # the global minimum drifts (see
        # :func:`repro.temporal.levels.relevel_with_hysteresis`).
        self.dt_ref = self.dt_min
        self._rebuild(first=True)

    # ------------------------------------------------------------------
    def _derive_levels(self) -> tuple[np.ndarray, float]:
        dt = stable_timesteps(self.mesh, self.state.U, cfl=self.cfl)
        self._last_dt = dt
        tau = levels_from_timestep(dt, num_levels=self.num_levels)
        dt_min = float((dt / np.exp2(tau)).min())
        return tau, dt_min

    def _rebuild(self, *, first: bool = False) -> None:
        self.decomp = make_decomposition(
            self.mesh,
            self.tau,
            self.num_domains,
            self.num_processes,
            strategy=self.strategy,
            seed=self.seed,
        )
        self.solver = TaskDistributedSolver(
            self.mesh, self.tau, self.decomp, self.dt_min, flux=self.flux
        )
        # Pending accumulations belong to the old schedule; apply any
        # residue before switching task structures so nothing is lost.
        if not first:
            nonzero = np.flatnonzero(np.abs(self.state.acc).sum(axis=1) > 0)
            if len(nonzero):
                self.state.U[nonzero] += (
                    self.state.acc[nonzero]
                    / self.mesh.cell_volumes[nonzero, None]
                )
                self.state.acc[nonzero] = 0.0

    # ------------------------------------------------------------------
    def run(self, iterations: int) -> CampaignResult:
        """Run ``iterations`` full iterations; returns the campaign
        history."""
        result = CampaignResult()
        for it in range(iterations):
            r = self.solver.run_iteration(self.state)
            changes = -1
            repartitioned = False
            if self.relevel_every and (it + 1) % self.relevel_every == 0:
                dt = stable_timesteps(self.mesh, self.state.U, cfl=self.cfl)
                self._last_dt = dt
                new_tau = relevel_with_hysteresis(
                    dt,
                    self.tau,
                    self.dt_ref,
                    num_levels=self.num_levels,
                )
                new_dt = float((dt / np.exp2(new_tau)).min())
                changes = int(np.sum(new_tau != self.tau))
                drift = changes / self.mesh.num_cells
                if drift > self.repartition_threshold:
                    self.tau, self.dt_min = new_tau, new_dt
                    self._rebuild()
                    repartitioned = True
                else:
                    # Keep the old levels/decomposition, but ensure the
                    # base step is still CFL-safe for them: a level-τ
                    # cell advances 2^τ·dt_min per activation.
                    safe_dt = float(
                        (self._last_dt / np.exp2(self.tau)).min()
                    )
                    if safe_dt < self.dt_min:
                        self.dt_min = safe_dt
                        self.solver.dt_min = safe_dt
            result.records.append(
                IterationRecord(
                    iteration=it,
                    elapsed=r.elapsed,
                    level_changes=changes,
                    repartitioned=repartitioned,
                )
            )
        result.state = self.state
        return result
