"""Task-distributed solver execution — the mini-FLUSEPA.

Executes the *actual* finite-volume update through the task graph: each
FACE/CELL task of Algorithm 1 runs its LTS kernel on its own object
set, in a dependency-respecting order, and is individually wall-clock
timed.  The measured durations can then be replayed on a virtual
cluster (:func:`repro.flusim.simulate` with ``durations=``) — this is
how the repo reproduces the paper's production-code experiments
(Figs. 5 and 13) without real MPI hardware: FLUSIM itself ignores
communication, so replaying true kernel timings through the same DAG
is the faithful stand-in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..mesh.structures import Mesh
from ..partitioning.decomposition import DomainDecomposition
from ..taskgraph.dag import TaskDAG
from ..taskgraph.generation import classify_objects, generate_task_graph
from ..taskgraph.task import ObjectType
from ..temporal.levels import face_levels
from .lts import (
    LTSState,
    accumulate_face_fluxes,
    apply_cell_updates,
    corrector_update,
    predictor_update,
)

__all__ = ["IterationResult", "TaskDistributedSolver"]


@dataclass
class IterationResult:
    """Outcome of one task-distributed iteration.

    Attributes
    ----------
    durations:
        ``(T,)`` measured wall-clock seconds per task.
    elapsed:
        Total serial wall-clock of the iteration.
    """

    durations: np.ndarray
    elapsed: float


class TaskDistributedSolver:
    """Runs the LTS solver through a task graph, timing every task.

    Parameters
    ----------
    mesh, tau, decomp:
        Mesh, temporal levels and domain decomposition.
    dt_min:
        Subiteration time step (a level-τ cell advances ``2**τ ·
        dt_min`` per activation); must satisfy every τ=0 cell's CFL
        bound (see :func:`repro.solver.timestep.assign_temporal_levels`).
    flux:
        Numerical flux name (``"rusanov"`` or ``"hllc"``).
    scheme:
        ``"euler"`` (first-order) or ``"heun"`` (the paper's
        second-order predictor/corrector); must match the task graph
        if one is supplied.
    """

    def __init__(
        self,
        mesh: Mesh,
        tau: np.ndarray,
        decomp: DomainDecomposition,
        dt_min: float,
        *,
        flux: str = "rusanov",
        scheme: str = "euler",
        dag: TaskDAG | None = None,
    ) -> None:
        if scheme not in ("euler", "heun"):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.mesh = mesh
        self.tau = np.asarray(tau, dtype=np.int32)
        self.decomp = decomp
        self.dt_min = float(dt_min)
        self.flux = flux
        self.scheme = scheme
        self.dag = dag if dag is not None else generate_task_graph(
            mesh, tau, decomp, scheme=scheme
        )

        # Precompute each task's object index array.
        info = classify_objects(mesh, self.tau, decomp)
        nlev = int(self.tau.max()) + 1
        ndom = decomp.num_domains

        def group_index(dom, lev, loc):
            return (dom.astype(np.int64) * nlev + lev) * 2 + loc

        cgid = group_index(
            info["cell_domain"], info["cell_level"], info["cell_locality"]
        )
        fgid = group_index(
            info["face_domain"], info["face_level"], info["face_locality"]
        )
        ngroups = ndom * nlev * 2
        self._cells_of_group = _bucketize(cgid, ngroups)
        self._faces_of_group = _bucketize(fgid, ngroups)

        t = self.dag.tasks
        tgid = (
            t.domain.astype(np.int64) * nlev + t.phase_tau
        ) * 2 + t.locality
        self._task_objects: list[np.ndarray] = []
        for i in range(t.num_tasks):
            g = int(tgid[i])
            if t.obj_type[i] == int(ObjectType.FACE):
                self._task_objects.append(self._faces_of_group[g])
            else:
                self._task_objects.append(self._cells_of_group[g])
        self._face_level = face_levels(mesh, self.tau)

    def run_iteration(self, state: LTSState) -> IterationResult:
        """Execute one full iteration (all subiterations), timing each
        task.

        Tasks run in generation order, which is a topological order of
        the DAG by construction; the numerical result is bit-identical
        to the task-free phase loop (:func:`repro.solver.lts.lts_iteration`).
        """
        t = self.dag.tasks
        durations = np.zeros(t.num_tasks, dtype=np.float64)
        heun = self.scheme == "heun"
        t_start = time.perf_counter()
        for i in range(t.num_tasks):
            objs = self._task_objects[i]
            stage = int(t.stage[i])
            t0 = time.perf_counter()
            if t.obj_type[i] == int(ObjectType.FACE):
                dt_face = float(1 << int(t.phase_tau[i])) * self.dt_min
                accumulate_face_fluxes(
                    self.mesh, state, objs, dt_face, flux=self.flux,
                    stage=stage,
                )
            elif not heun:
                apply_cell_updates(self.mesh, state, objs)
            elif stage == 1:
                predictor_update(self.mesh, state, objs)
            else:
                corrector_update(self.mesh, state, objs)
            durations[i] = time.perf_counter() - t0
        return IterationResult(
            durations=durations, elapsed=time.perf_counter() - t_start
        )

    def run(self, state: LTSState, iterations: int) -> list[IterationResult]:
        """Run several full iterations; returns one result per
        iteration."""
        return [self.run_iteration(state) for _ in range(iterations)]


def _bucketize(gid: np.ndarray, ngroups: int) -> list[np.ndarray]:
    """Split ``arange(len(gid))`` into per-group index arrays."""
    order = np.argsort(gid, kind="stable")
    sorted_gid = gid[order]
    bounds = np.searchsorted(sorted_gid, np.arange(ngroups + 1))
    return [
        order[bounds[g] : bounds[g + 1]].astype(np.int64)
        for g in range(ngroups)
    ]
