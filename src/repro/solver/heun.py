"""Reference global integrators (uniform time step).

The production solver integrates with local time stepping through the
task graph (:mod:`repro.solver.lts` / :mod:`repro.solver.runner`);
this module provides the classical *global* integrators — forward
Euler and second-order Heun — used to validate the finite-volume
machinery (convergence, conservation) and as the accuracy reference
for the local-time-stepping scheme.
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh
from .euler import FLUXES

__all__ = ["residual", "euler_step", "heun_step", "integrate"]


def residual(
    mesh: Mesh, U: np.ndarray, *, flux: str = "rusanov"
) -> np.ndarray:
    """Spatial residual ``dU/dt = −(1/V) Σ_f F·n A_f``.

    Boundary faces use transmissive (zero-gradient) conditions: the
    boundary state equals the interior state.
    """
    flux_fn = FLUXES[flux]
    a = mesh.face_cells[:, 0]
    b = mesh.face_cells[:, 1]
    interior = b >= 0
    UL = U[a]
    UR = UL.copy()
    UR[interior] = U[b[interior]]
    F = flux_fn(UL, UR, mesh.face_normal[:, 0], mesh.face_normal[:, 1])
    w = F * mesh.face_area[:, None]
    out = np.zeros_like(U)
    np.add.at(out, a, -w)
    np.add.at(out, b[interior], w[interior])
    return out / mesh.cell_volumes[:, None]


def euler_step(
    mesh: Mesh, U: np.ndarray, dt: float, *, flux: str = "rusanov"
) -> np.ndarray:
    """One forward-Euler step (first order)."""
    return U + dt * residual(mesh, U, flux=flux)


def heun_step(
    mesh: Mesh, U: np.ndarray, dt: float, *, flux: str = "rusanov"
) -> np.ndarray:
    """One Heun (SSP-RK2) step — the paper's second-order method."""
    R0 = residual(mesh, U, flux=flux)
    U1 = U + dt * R0
    R1 = residual(mesh, U1, flux=flux)
    return U + 0.5 * dt * (R0 + R1)


def integrate(
    mesh: Mesh,
    U: np.ndarray,
    t_end: float,
    *,
    cfl: float = 0.4,
    flux: str = "rusanov",
    method: str = "heun",
    max_steps: int = 100_000,
) -> tuple[np.ndarray, int]:
    """Advance to ``t_end`` with a uniform (global-minimum) time step.

    Returns ``(U, steps)``.
    """
    from .timestep import stable_timesteps

    step = heun_step if method == "heun" else euler_step
    t = 0.0
    steps = 0
    while t < t_end - 1e-15:
        dt = float(stable_timesteps(mesh, U, cfl=cfl).min())
        dt = min(dt, t_end - t)
        U = step(mesh, U, dt, flux=flux)
        t += dt
        steps += 1
        if steps >= max_steps:
            raise RuntimeError("integrate: max_steps exceeded")
    return U, steps
