"""Initial conditions for the mini-FLUSEPA solver.

Three families mirroring the paper's motivating applications
(§I: "launcher stage separation, blast wave propagation during rocket
take-off, aircraft propeller/jet noise"):

* a quiescent atmosphere (trivial steady state, used in tests);
* a **blast wave** — Gaussian pressure pulse;
* a **jet** — high-velocity stream entering a quiescent medium, the
  PPRIME-nozzle-like configuration.
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh
from .euler import primitive_to_conservative

__all__ = ["quiescent", "blast_wave", "jet_flow"]


def quiescent(
    mesh: Mesh, *, rho: float = 1.0, p: float = 1.0
) -> np.ndarray:
    """Uniform fluid at rest — an exact steady state of the scheme."""
    n = mesh.num_cells
    return primitive_to_conservative(
        np.full(n, rho),
        np.zeros(n),
        np.zeros(n),
        np.full(n, p),
    )


def blast_wave(
    mesh: Mesh,
    *,
    center: tuple[float, float] = (0.5, 0.5),
    radius: float = 0.1,
    p_ratio: float = 10.0,
    rho: float = 1.0,
    p_ambient: float = 1.0,
) -> np.ndarray:
    """Gaussian pressure pulse of amplitude ``p_ratio × p_ambient``
    and width ``radius`` — the blast-wave scenario."""
    x = mesh.cell_centers[:, 0]
    y = mesh.cell_centers[:, 1]
    r2 = (x - center[0]) ** 2 + (y - center[1]) ** 2
    p = p_ambient * (1.0 + (p_ratio - 1.0) * np.exp(-r2 / radius**2))
    n = mesh.num_cells
    return primitive_to_conservative(
        np.full(n, rho), np.zeros(n), np.zeros(n), p
    )


def jet_flow(
    mesh: Mesh,
    *,
    axis_y: float = 0.5,
    jet_half_width: float = 0.02,
    mach: float = 0.8,
    x_extent: float = 0.3,
    rho: float = 1.0,
    p_ambient: float = 1.0,
) -> np.ndarray:
    """A streamwise jet near ``y = axis_y``: velocity decays smoothly
    away from the axis and downstream of ``x_extent`` (the nozzle-jet
    scenario driving the PPRIME mesh refinement)."""
    from .euler import GAMMA

    x = mesh.cell_centers[:, 0]
    y = mesh.cell_centers[:, 1]
    c = np.sqrt(GAMMA * p_ambient / rho)
    profile = np.exp(-((y - axis_y) / jet_half_width) ** 2 / 2.0)
    stream = 0.5 * (1.0 - np.tanh((x - x_extent) / 0.1))
    u = mach * c * profile * stream
    n = mesh.num_cells
    return primitive_to_conservative(
        np.full(n, rho), u, np.zeros(n), np.full(n, p_ambient)
    )
