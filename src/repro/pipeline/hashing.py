"""Deterministic config hashing for the pipeline's artifact keys.

Stage digests must be stable across *processes* and *machines* (the
artifact store is shared by CLI invocations, benches, test runs and
campaign restarts), so they are built from SHA-256 over a canonical
JSON rendering of the stage config — never from Python's randomized
``hash()``.

A stage digest covers, in order:

* the stage name and its ``version`` counter (bump it when a stage's
  semantics change and every downstream artifact must be recomputed);
* the package version (code provenance);
* the canonical config dict;
* the digests of all upstream artifacts (so the key of a downstream
  stage transitively pins the whole prefix of the chain).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping, Sequence

__all__ = ["canonical_json", "config_digest", "stage_digest"]


def _canonical(value: Any) -> Any:
    """Reduce a config value to JSON-stable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        # repr() round-trips doubles exactly and is stable across
        # platforms; json would also do, but be explicit.
        return float(value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    raise TypeError(
        f"config value {value!r} of type {type(value).__name__} is not "
        "hashable into an artifact key"
    )


def canonical_json(value: Any) -> str:
    """Canonical JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(
        _canonical(value), sort_keys=True, separators=(",", ":")
    )


def config_digest(config: Any) -> str:
    """SHA-256 hex digest of a (dataclass) config."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()


def stage_digest(
    stage_name: str,
    stage_version: int,
    config: Any,
    upstream: Sequence[str] = (),
) -> str:
    """Content address of one stage output (see module docstring)."""
    from .. import __version__

    h = hashlib.sha256()
    h.update(f"{stage_name}:v{stage_version}:{__version__}\n".encode())
    h.update(canonical_json(config).encode())
    for up in upstream:
        h.update(b"\n")
        h.update(up.encode())
    return h.hexdigest()
