"""The five typed stages of the reproduction chain.

Each stage knows three things:

* ``compute(config, *upstream)`` — produce the domain object by
  calling the underlying subsystem (mesh generators, temporal levels,
  partitioning strategies, task-graph expansion, FLUSIM);
* ``pack(obj)`` — flatten the object into ``(arrays, meta)`` for the
  content-addressed store (``.npz`` arrays + JSON-able meta);
* ``unpack(arrays, meta, *upstream)`` — rebuild the object from a
  stored artifact.

``version`` is part of the stage's content address; bump it whenever
``compute`` semantics change so stale artifacts are never reused.

Round-trips are bit-for-bit: ``pack``/``unpack`` preserve array dtypes
and values exactly (verified by the store tests), so a cached MC_TL
partition replayed from disk is indistinguishable from a freshly
computed one.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..flusim import ClusterConfig, schedule_metrics, simulate
from ..flusim.metrics import ScheduleMetrics
from ..flusim.trace import Trace
from ..mesh import MESH_FACTORIES, build_quadtree_mesh
from ..mesh.structures import Mesh
from ..partitioning import DomainDecomposition, make_decomposition
from ..taskgraph.dag import TaskDAG
from ..taskgraph.generation import generate_task_graph
from ..taskgraph.task import TaskArrays
from ..temporal import levels_from_depth
from .jobs import resolve_executor
from .config import (
    LevelConfig,
    MeshConfig,
    PartitionConfig,
    ScheduleConfig,
    TaskGraphConfig,
)

__all__ = [
    "MESH_BUILDERS",
    "MeshStage",
    "LevelStage",
    "PartitionStage",
    "TaskGraphStage",
    "ScheduleStage",
    "STAGES",
    "STAGE_ORDER",
    "STAGE_INPUTS",
]

_MESH_FIELDS = (
    "cell_centers",
    "cell_volumes",
    "cell_depth",
    "face_cells",
    "face_area",
    "face_normal",
    "face_center",
)

_TASK_FIELDS = (
    "subiteration",
    "phase_tau",
    "obj_type",
    "locality",
    "domain",
    "process",
    "num_objects",
    "cost",
    "stage",
)


def _bench_graded_mesh(
    max_depth: int = 11, min_depth: int = 5
) -> Mesh:
    """The perf harness's strongly graded quadtree mesh — the same
    shape of input the paper's repartitioning loop sees."""

    def sizing(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return 0.0006 + 0.015 * np.hypot(x - 0.3, y - 0.4)

    return build_quadtree_mesh(
        sizing, max_depth=max_depth, min_depth=min_depth
    )


#: Name → mesh builder; the replica meshes plus the benchmark mesh.
MESH_BUILDERS: dict[str, Callable[..., Mesh]] = {
    **MESH_FACTORIES,
    "bench_graded": _bench_graded_mesh,
}


class MeshStage:
    """``MeshConfig`` → :class:`~repro.mesh.structures.Mesh`."""

    name = "mesh"
    version = 1

    @staticmethod
    def compute(config: MeshConfig) -> Mesh:
        try:
            factory = MESH_BUILDERS[config.name]
        except KeyError:
            raise ValueError(
                f"unknown mesh {config.name!r}; choose from "
                f"{sorted(MESH_BUILDERS)}"
            ) from None
        kwargs: dict[str, Any] = {}
        if config.scale is not None:
            kwargs["max_depth"] = config.scale
        if config.min_depth is not None:
            kwargs["min_depth"] = config.min_depth
        return factory(**kwargs)

    @staticmethod
    def pack(mesh: Mesh) -> tuple[dict[str, np.ndarray], dict]:
        return {f: getattr(mesh, f) for f in _MESH_FIELDS}, {}

    @staticmethod
    def unpack(arrays: dict[str, np.ndarray], meta: dict) -> Mesh:
        return Mesh(**{f: arrays[f] for f in _MESH_FIELDS})


class LevelStage:
    """``LevelConfig`` + mesh → per-cell temporal levels τ."""

    name = "levels"
    version = 1

    @staticmethod
    def compute(config: LevelConfig, mesh: Mesh) -> np.ndarray:
        return levels_from_depth(mesh, num_levels=config.num_levels)

    @staticmethod
    def pack(tau: np.ndarray) -> tuple[dict[str, np.ndarray], dict]:
        return {"tau": tau}, {}

    @staticmethod
    def unpack(
        arrays: dict[str, np.ndarray], meta: dict, mesh: Mesh
    ) -> np.ndarray:
        return arrays["tau"]


class PartitionStage:
    """``PartitionConfig`` + (mesh, τ) →
    :class:`~repro.partitioning.DomainDecomposition`."""

    name = "partition"
    version = 1

    @staticmethod
    def compute(
        config: PartitionConfig, mesh: Mesh, tau: np.ndarray
    ) -> DomainDecomposition:
        # The pool backend is resolved here (the pipeline's n_jobs
        # resolution point) and deliberately kept OUT of the content
        # address: thread and process executors produce identical
        # labels, so caching must not split on the backend.
        return make_decomposition(
            mesh,
            tau,
            config.domains,
            config.processes,
            strategy=config.strategy,
            seed=config.seed,
            imbalance_tol=config.imbalance_tol,
            n_jobs=config.n_jobs,
            executor=resolve_executor(),
        )

    @staticmethod
    def pack(
        decomp: DomainDecomposition,
    ) -> tuple[dict[str, np.ndarray], dict]:
        arrays = {
            "domain": decomp.domain,
            "domain_process": decomp.domain_process,
        }
        meta = {
            "num_domains": int(decomp.num_domains),
            "num_processes": int(decomp.num_processes),
            "strategy": decomp.strategy,
        }
        return arrays, meta

    @staticmethod
    def unpack(
        arrays: dict[str, np.ndarray],
        meta: dict,
        mesh: Mesh,
        tau: np.ndarray,
    ) -> DomainDecomposition:
        return DomainDecomposition(
            domain=arrays["domain"],
            num_domains=int(meta["num_domains"]),
            domain_process=arrays["domain_process"],
            num_processes=int(meta["num_processes"]),
            strategy=str(meta["strategy"]),
        )


class TaskGraphStage:
    """``TaskGraphConfig`` + (mesh, τ, decomposition) →
    :class:`~repro.taskgraph.dag.TaskDAG` (paper Algorithm 1)."""

    name = "taskgraph"
    # v2: vectorized generator — canonical (lexsorted) edge order
    # replaces the seed loop's per-task set order in packed artifacts.
    version = 2

    @staticmethod
    def compute(
        config: TaskGraphConfig,
        mesh: Mesh,
        tau: np.ndarray,
        decomp: DomainDecomposition,
    ) -> TaskDAG:
        return generate_task_graph(
            mesh,
            tau,
            decomp,
            cell_unit_cost=config.cell_unit_cost,
            face_unit_cost=config.face_unit_cost,
            scheme=config.scheme,
            iterations=config.iterations,
        )

    @staticmethod
    def pack(dag: TaskDAG) -> tuple[dict[str, np.ndarray], dict]:
        arrays = {f: getattr(dag.tasks, f) for f in _TASK_FIELDS}
        arrays["edges"] = dag.edges
        return arrays, {}

    @staticmethod
    def unpack(
        arrays: dict[str, np.ndarray],
        meta: dict,
        mesh: Mesh,
        tau: np.ndarray,
        decomp: DomainDecomposition,
    ) -> TaskDAG:
        tasks = TaskArrays(**{f: arrays[f] for f in _TASK_FIELDS})
        return TaskDAG(tasks=tasks, edges=arrays["edges"])


class ScheduleStage:
    """``ScheduleConfig`` + task graph → simulated
    (:class:`~repro.flusim.trace.Trace`, metrics) pair."""

    name = "schedule"
    # v2: consumes the v2 (reordered-edge) task graphs; traces are
    # engine-identical but cached entries must not mix generations.
    version = 2

    @staticmethod
    def compute(
        config: ScheduleConfig, decomp: DomainDecomposition, dag: TaskDAG
    ) -> tuple[Trace, ScheduleMetrics]:
        cluster = ClusterConfig(decomp.num_processes, config.cores)
        trace = simulate(
            dag, cluster, scheduler=config.scheduler, seed=config.seed
        )
        return trace, schedule_metrics(dag, trace)

    @staticmethod
    def pack(
        result: tuple[Trace, ScheduleMetrics],
    ) -> tuple[dict[str, np.ndarray], dict]:
        trace, metrics = result
        arrays = {
            "process": trace.process,
            "worker": trace.worker,
            "start": trace.start,
            "end": trace.end,
        }
        meta = {
            "num_processes": int(trace.num_processes),
            "cores_per_process": int(trace.cores_per_process),
            "metrics": {
                "makespan": metrics.makespan,
                "total_work": metrics.total_work,
                "efficiency": metrics.efficiency,
                "critical_path": metrics.critical_path,
                "mean_process_idle_fraction": (
                    metrics.mean_process_idle_fraction
                ),
            },
        }
        return arrays, meta

    @staticmethod
    def unpack(
        arrays: dict[str, np.ndarray],
        meta: dict,
        decomp: DomainDecomposition,
        dag: TaskDAG,
    ) -> tuple[Trace, ScheduleMetrics]:
        trace = Trace(
            process=arrays["process"],
            worker=arrays["worker"],
            start=arrays["start"],
            end=arrays["end"],
            num_processes=int(meta["num_processes"]),
            cores_per_process=int(meta["cores_per_process"]),
        )
        metrics = ScheduleMetrics(**{
            k: float(v) for k, v in meta["metrics"].items()
        })
        return trace, metrics


#: Stage name → class, in chain order.
STAGES = {
    s.name: s
    for s in (
        MeshStage,
        LevelStage,
        PartitionStage,
        TaskGraphStage,
        ScheduleStage,
    )
}
STAGE_ORDER = tuple(STAGES)

#: Stage name → upstream stage names, in ``compute``-argument order.
#: This is the single declaration of the chain's dependency structure:
#: the plan compiler (:mod:`repro.pipeline.plan`) derives its edges
#: from it, and each entry matches the positional ``*upstream``
#: signature of the stage's ``compute``/``unpack``.  Note the schedule
#: stage does **not** read the mesh or the τ field directly — which is
#: exactly what lets a merged plan run two scenarios' schedule nodes
#: as soon as their partition/taskgraph nodes land.
STAGE_INPUTS: dict[str, tuple[str, ...]] = {
    "mesh": (),
    "levels": ("mesh",),
    "partition": ("mesh", "levels"),
    "taskgraph": ("mesh", "levels", "partition"),
    "schedule": ("partition", "taskgraph"),
}
