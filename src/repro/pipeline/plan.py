"""Compile scenarios into an explicit stage-DAG (the *plan* half of
the plan/schedule split).

``compile_plan`` turns one scenario — or a batch of scenarios — into a
:class:`StagePlan`: typed :class:`StageTask` nodes keyed by the same
sha256 content addresses the artifact store uses
(:func:`~repro.pipeline.hashing.stage_digest` over stage name/version,
config and upstream digests), with edges taken from
:data:`~repro.pipeline.stages.STAGE_INPUTS`.

**Merge rule: node identity is the content address.**  Two scenarios
whose mesh configs are equal derive the same mesh digest, land on the
same node, and the shared prefix collapses at *plan time* — instead of
being rediscovered at run time through store lookups and claim locks.
Conversely, any config difference anywhere upstream changes the digest
and splits the chains from that stage on, so a merged plan can never
alias two genuinely different computations (short of a sha256
collision, which the store already trusts the address not to have).

Each node remembers the ``jobs`` (scenario indices) that need it;
downstream, the scheduler uses that both for provenance attribution
(first job computes, the rest ride as ``"shared"``) and for failure
isolation (a failed node fails exactly the jobs whose chains pass
through it, no others).

Priorities are static critical-path bottom levels over nominal stage
costs — the classic HEFT-style upward rank, cheap to compute at plan
time and enough to keep the partition-heavy spine of every chain ahead
of leaf work under a bounded worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from .config import Scenario
from .hashing import stage_digest
from .stages import STAGE_INPUTS, STAGE_ORDER, STAGES

__all__ = ["StageTask", "StagePlan", "compile_plan", "NOMINAL_COST"]

#: Nominal per-stage cost weights for the bottom-level priority.  Only
#: the *ratios* matter (partition dominates a chain's wall time, mesh
#: generation is the widely shared root); they deliberately encode the
#: chain's typical shape, not measured times, so plans stay
#: deterministic across machines.
NOMINAL_COST: dict[str, float] = {
    "mesh": 3.0,
    "levels": 1.0,
    "partition": 8.0,
    "taskgraph": 4.0,
    "schedule": 2.0,
}


@dataclass(frozen=True)
class StageTask:
    """One node of a compiled plan.

    ``key`` is the stage's sha256 content address — node identity,
    store address and provenance digest are all the same string.
    ``deps`` are upstream node keys in the stage's ``compute``-argument
    order (mirroring :data:`STAGE_INPUTS`); ``jobs`` are the indices of
    every scenario in the plan whose chain runs through this node.
    """

    key: str
    stage: str
    config: Any
    deps: tuple[str, ...]
    jobs: tuple[int, ...]

    @property
    def shared(self) -> bool:
        """Whether more than one job rides this node."""
        return len(self.jobs) > 1


@dataclass(frozen=True)
class StagePlan:
    """A batch of scenarios compiled into one merged stage-DAG."""

    scenarios: tuple[Scenario, ...]
    throughs: tuple[str, ...]
    nodes: dict[str, StageTask]
    #: Per job: stage name → node key, in chain order.
    job_stages: tuple[dict[str, str], ...]
    #: Node key → keys of the nodes that consume it.
    dependents: dict[str, tuple[str, ...]]
    #: Node key → critical-path bottom level (dispatch priority).
    priority: dict[str, float]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def num_jobs(self) -> int:
        return len(self.scenarios)

    def roots(self) -> list[str]:
        """Keys of the dependency-free nodes (the dispatch frontier)."""
        return [k for k, t in self.nodes.items() if not t.deps]

    def stage_counts(self) -> dict[str, dict[str, int]]:
        """Per stage: distinct ``nodes`` vs requested ``job_stages``.

        The difference is the plan-time dedup: ``job_stages - nodes``
        stage executions were collapsed into already-planned nodes.
        """
        out: dict[str, dict[str, int]] = {}
        for task in self.nodes.values():
            c = out.setdefault(task.stage, {"nodes": 0, "job_stages": 0})
            c["nodes"] += 1
            c["job_stages"] += len(task.jobs)
        return out

    @property
    def deduped_stages(self) -> int:
        """Total stage executions saved by prefix merging."""
        return sum(
            len(t.jobs) - 1 for t in self.nodes.values()
        )


def _validate_through(through: str) -> str:
    if through not in STAGE_ORDER:
        raise ValueError(
            f"unknown stage {through!r}; choose from {STAGE_ORDER}"
        )
    return through


def compile_plan(
    scenarios: Iterable[Scenario],
    *,
    through: str | Sequence[str] = "schedule",
) -> StagePlan:
    """Compile scenarios into one merged :class:`StagePlan`.

    ``through`` bounds each chain (a single stage name for all
    scenarios, or one per scenario).  Digests are derived exactly as
    the linear runner derives them, so a plan node's key equals the
    digest the oracle path records for the same stage — the property
    the bit-identity tests pin.

    Scenarios are taken as given: worker-count resolution
    (``Pipeline._resolved``) happens in the caller, before compiling,
    so the partition content address matches the linear path.
    """
    scenario_list = tuple(scenarios)
    if isinstance(through, str):
        throughs = (_validate_through(through),) * len(scenario_list)
    else:
        throughs = tuple(_validate_through(t) for t in through)
        if len(throughs) != len(scenario_list):
            raise ValueError(
                f"{len(scenario_list)} scenario(s) but {len(throughs)} "
                "'through' value(s)"
            )

    configs: dict[str, Any] = {}
    deps_of: dict[str, tuple[str, ...]] = {}
    stage_of: dict[str, str] = {}
    jobs_of: dict[str, list[int]] = {}
    job_stages: list[dict[str, str]] = []
    order: list[str] = []  # first-seen node order (topological)

    for j, (scenario, thr) in enumerate(zip(scenario_list, throughs)):
        stop = STAGE_ORDER.index(thr)
        digests: dict[str, str] = {}
        chain: dict[str, str] = {}
        for name in STAGE_ORDER[: stop + 1]:
            stage = STAGES[name]
            config = getattr(scenario, name)
            upstream = tuple(digests[u] for u in STAGE_INPUTS[name])
            key = stage_digest(stage.name, stage.version, config, upstream)
            digests[name] = key
            chain[name] = key
            if key not in configs:
                configs[key] = config
                deps_of[key] = upstream
                stage_of[key] = name
                jobs_of[key] = []
                order.append(key)
            jobs_of[key].append(j)
        job_stages.append(chain)

    nodes = {
        key: StageTask(
            key=key,
            stage=stage_of[key],
            config=configs[key],
            deps=deps_of[key],
            jobs=tuple(jobs_of[key]),
        )
        for key in order
    }

    dependents_mut: dict[str, list[str]] = {k: [] for k in nodes}
    for key, task in nodes.items():
        for dep in task.deps:
            dependents_mut[dep].append(key)
    dependents = {k: tuple(v) for k, v in dependents_mut.items()}

    # Bottom levels: walk first-seen order *reversed* — every node was
    # appended after its dependencies, so its dependents come later in
    # `order` and are already resolved when we reach it.
    priority: dict[str, float] = {}
    for key in reversed(order):
        task = nodes[key]
        below = max(
            (priority[d] for d in dependents[key]), default=0.0
        )
        priority[key] = NOMINAL_COST.get(task.stage, 1.0) + below

    return StagePlan(
        scenarios=scenario_list,
        throughs=throughs,
        nodes=nodes,
        job_stages=tuple(job_stages),
        dependents=dependents,
        priority=priority,
    )
