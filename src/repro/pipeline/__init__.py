"""The typed mesh→levels→partition→taskgraph→schedule pipeline.

One explicit, cached, resumable definition of the paper's workflow
chain, shared by the experiment harnesses, the CLI, the perf bench
and the campaign driver:

* typed per-stage configs and :class:`Scenario` bundles
  (:mod:`repro.pipeline.config`);
* deterministic content addressing (:mod:`repro.pipeline.hashing`);
* a content-addressed ``.npz`` + JSON-sidecar artifact store with a
  bounded in-memory LRU (:mod:`repro.pipeline.store`);
* the five stage definitions (:mod:`repro.pipeline.stages`);
* the stage-DAG plan compiler (:mod:`repro.pipeline.plan`) and the
  critical-path scheduler that executes compiled plans
  (:mod:`repro.pipeline.scheduler`);
* the runner, :class:`RunRecord` provenance and the sweep/batch
  machinery (:mod:`repro.pipeline.runner`);
* the scenario registry (:mod:`repro.pipeline.registry`).
"""

from .config import (
    NUM_LEVELS,
    LevelConfig,
    MeshConfig,
    PartitionConfig,
    Scenario,
    ScheduleConfig,
    TaskGraphConfig,
)
from .hashing import canonical_json, config_digest, stage_digest
from .jobs import resolve_n_jobs, set_default_n_jobs
from .plan import StagePlan, StageTask, compile_plan
from .registry import SCENARIOS, get_scenario, paper_configs
from .runner import (
    Pipeline,
    RunRecord,
    StageRecord,
    expand_sweep,
    run_batch,
)
from .scheduler import (
    DagScheduler,
    NodeResult,
    PlanResult,
    execute_stage,
)
from .stages import (
    MESH_BUILDERS,
    STAGE_INPUTS,
    STAGE_ORDER,
    STAGES,
    LevelStage,
    MeshStage,
    PartitionStage,
    ScheduleStage,
    TaskGraphStage,
)
from .locking import FileLock, Lease, acquire_claim
from .store import (
    ArtifactStore,
    DoctorReport,
    StoreStats,
    default_cache_root,
    default_store,
    set_default_store,
)

__all__ = [
    "NUM_LEVELS",
    "MeshConfig",
    "LevelConfig",
    "PartitionConfig",
    "TaskGraphConfig",
    "ScheduleConfig",
    "Scenario",
    "canonical_json",
    "config_digest",
    "stage_digest",
    "resolve_n_jobs",
    "set_default_n_jobs",
    "SCENARIOS",
    "get_scenario",
    "paper_configs",
    "Pipeline",
    "RunRecord",
    "StageRecord",
    "expand_sweep",
    "run_batch",
    "StagePlan",
    "StageTask",
    "compile_plan",
    "DagScheduler",
    "NodeResult",
    "PlanResult",
    "execute_stage",
    "MESH_BUILDERS",
    "STAGES",
    "STAGE_ORDER",
    "STAGE_INPUTS",
    "MeshStage",
    "LevelStage",
    "PartitionStage",
    "TaskGraphStage",
    "ScheduleStage",
    "ArtifactStore",
    "DoctorReport",
    "StoreStats",
    "FileLock",
    "Lease",
    "acquire_claim",
    "default_store",
    "set_default_store",
    "default_cache_root",
]
