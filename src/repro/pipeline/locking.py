"""Advisory cross-process file locks and atomic digest claims.

This is the concurrency substrate of the artifact store's
cross-process tier.  Two cooperating mechanisms guard each digest:

* an **advisory file lock** (``fcntl.flock`` on POSIX,
  ``msvcrt.locking`` on Windows, an ``O_EXCL`` sentinel elsewhere) on
  ``<digest>.lock``.  The kernel releases it automatically when the
  holder dies, so a crashed winner never wedges the digest;
* an **atomic claim file** ``<digest>.claim`` carrying
  ``{pid, hostname, started_at, heartbeat, token}``.  The claim is
  what survives a crash *visibly*: a waiter that finds a claim whose
  pid is dead (same host) or whose heartbeat is older than the TTL
  reclaims it with a logged takeover.

The claim-file state machine (see also the README)::

    absent ──claim won──▶ active ──publish+release──▶ absent
      ▲                    │  │
      │   reclaim (logged) │  │ holder dies / heartbeat > TTL
      └────────────────────┘  ▼
                            stale

:func:`acquire_claim` turns the two mechanisms into one verdict: the
caller either *wins* (compute, publish, release) or becomes a *reader*
(the winner published while we waited — just read the artifact).  A
winner holds a ``token`` that publication is guarded on: if the claim
was taken over while it computed (e.g. its clock is skewed and its
heartbeats look ancient to everyone else), :meth:`Lease.still_owner`
turns false and the deposed winner must *drop* its publish — that is
what makes "no digest is ever computed twice successfully" a real
invariant rather than a probabilistic one.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import threading
import time
import uuid
import warnings
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "FileLock",
    "Lease",
    "acquire_claim",
    "read_claim",
    "claim_is_stale",
    "pid_alive",
    "parse_bytes",
]

try:  # POSIX
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - Windows
    _fcntl = None
    try:
        import msvcrt as _msvcrt
    except ImportError:  # pragma: no cover - exotic platform
        _msvcrt = None


def _now() -> float:
    """Clock used for heartbeats/staleness (an indirection so chaos
    tests can skew one process's notion of time)."""
    return time.time()


# ----------------------------------------------------------------------
# Advisory file lock
# ----------------------------------------------------------------------
class FileLock:
    """An advisory, exclusive, cross-process lock on a path.

    The lock is tied to an open file descriptor, so the kernel drops
    it when the holding process exits *for any reason* — including
    SIGKILL mid-critical-section.  Within one process, two
    :class:`FileLock` instances on the same path also exclude each
    other (each holds its own descriptor).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fd: int | None = None

    @property
    def locked(self) -> bool:
        return self._fd is not None

    def try_acquire(self) -> bool:
        """Take the lock without blocking; ``False`` if held elsewhere.

        Raises ``OSError`` when the filesystem does not support
        locking at all (the store degrades to unlocked operation).
        """
        if self._fd is not None:
            return True
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if _fcntl is not None:
                _fcntl.flock(fd, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
            elif _msvcrt is not None:  # pragma: no cover - Windows
                _msvcrt.locking(fd, _msvcrt.LK_NBLCK, 1)
            else:  # pragma: no cover - exotic platform
                # O_EXCL sentinel next to the lock path; released (and
                # leak-swept by doctor) via unlink in release().
                os.close(fd)
                fd = os.open(
                    str(self.path) + ".x",
                    os.O_CREAT | os.O_EXCL | os.O_RDWR,
                    0o644,
                )
        except OSError as exc:
            os.close(fd)
            if exc.errno in (errno.EACCES, errno.EAGAIN, errno.EWOULDBLOCK):
                return False
            if _msvcrt is None and _fcntl is None and exc.errno == errno.EEXIST:
                return False  # pragma: no cover - sentinel backend
            raise
        self._fd = fd
        return True

    def acquire(self, timeout: float | None = None, poll: float = 0.05) -> bool:
        """Blocking acquire with an optional timeout (``False`` on
        expiry)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.try_acquire():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(poll)
        return True

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        try:
            if _fcntl is not None:
                _fcntl.flock(fd, _fcntl.LOCK_UN)
            elif _msvcrt is not None:  # pragma: no cover - Windows
                _msvcrt.locking(fd, _msvcrt.LK_UNLCK, 1)
        except OSError:  # pragma: no cover - defensive
            pass
        finally:
            if _fcntl is not None or _msvcrt is not None:
                os.close(fd)
            else:  # pragma: no cover - sentinel backend
                os.close(fd)
                try:
                    os.unlink(str(self.path) + ".x")
                except OSError:
                    pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


# ----------------------------------------------------------------------
# Claim files
# ----------------------------------------------------------------------
def pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live process on *this* host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    except OSError:  # pragma: no cover - defensive
        return True
    return True


def read_claim(path: str | Path) -> dict[str, Any] | None:
    """The claim record at ``path`` (``None`` if absent/unreadable)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return data if isinstance(data, dict) else None


def claim_is_stale(claim: dict[str, Any], ttl: float) -> bool:
    """Whether a claim may be taken over: its holder is a dead pid on
    this host, or its heartbeat is older than ``ttl`` seconds."""
    try:
        heartbeat = float(claim.get("heartbeat", 0.0))
    except (TypeError, ValueError):
        return True
    if _now() - heartbeat > ttl:
        return True
    host = claim.get("hostname")
    if host == socket.gethostname():
        try:
            pid = int(claim.get("pid", -1))
        except (TypeError, ValueError):
            return True
        if not pid_alive(pid):
            return True
    return False


def _write_claim(path: Path, token: str, started_at: float) -> None:
    record = {
        "pid": os.getpid(),
        "hostname": socket.gethostname(),
        "started_at": started_at,
        "heartbeat": _now(),
        "token": token,
    }
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(record), encoding="utf-8")
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
class Lease:
    """The outcome of :func:`acquire_claim` for one digest.

    ``role == "winner"``: the caller must compute, publish (guarded on
    :meth:`still_owner`) and :meth:`release`.  ``role == "reader"``:
    the winner already published; just read the artifact and
    :meth:`release` (a no-op beyond bookkeeping).
    """

    def __init__(
        self,
        *,
        role: str,
        claim_path: Path | None = None,
        lock: FileLock | None = None,
        token: str = "",
        ttl: float = 30.0,
        reclaimed: bool = False,
        deposed_holder: bool = False,
        unguarded: bool = False,
    ) -> None:
        self.role = role
        self.claim_path = claim_path
        self.lock = lock
        self.token = token
        self.ttl = ttl
        #: True when this winner took over a stale claim (crash cleanup).
        self.reclaimed = reclaimed
        #: True when this winner overwrote a live-but-stale holder's
        #: claim rather than winning the free lock.
        self.deposed_holder = deposed_holder
        #: True when the wait timed out and the caller computes without
        #: mutual exclusion (duplicate work possible; publish still
        #: token-guarded).
        self.unguarded = unguarded
        self._released = False
        self._hb_stop: threading.Event | None = None
        self._hb_thread: threading.Thread | None = None
        if role == "winner" and claim_path is not None:
            self._start_heartbeat()

    # -- heartbeat -----------------------------------------------------
    def _start_heartbeat(self) -> None:
        interval = max(self.ttl / 4.0, 0.05)
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    claim = read_claim(self.claim_path)  # type: ignore[arg-type]
                    if claim is None or claim.get("token") != self.token:
                        return  # deposed; stop advertising
                    claim["heartbeat"] = _now()
                    tmp = self.claim_path.with_name(  # type: ignore[union-attr]
                        self.claim_path.name + f".tmp{os.getpid()}"
                    )
                    tmp.write_text(json.dumps(claim), encoding="utf-8")
                    os.replace(tmp, self.claim_path)
                except OSError:  # pragma: no cover - defensive
                    return

        self._hb_stop = stop
        self._hb_thread = threading.Thread(
            target=beat, daemon=True, name="repro-claim-heartbeat"
        )
        self._hb_thread.start()

    # -- ownership -----------------------------------------------------
    def still_owner(self) -> bool:
        """Whether this winner's claim is still in force (publish
        guard: a deposed winner must drop its publish)."""
        if self.role != "winner":
            return False
        if self.claim_path is None:
            return True  # lockless store: nothing to be deposed from
        claim = read_claim(self.claim_path)
        return claim is not None and claim.get("token") == self.token

    def release(self) -> None:
        """Retire the lease (idempotent): stop the heartbeat, remove
        our claim file, free the lock."""
        if self._released:
            return
        self._released = True
        if self._hb_stop is not None:
            self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=1.0)
        if (
            self.role == "winner"
            and self.claim_path is not None
            and self.still_owner()
        ):
            try:
                self.claim_path.unlink()
            except OSError:
                pass
        if self.lock is not None:
            self.lock.release()

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


def acquire_claim(
    base: Path,
    *,
    published: Callable[[], bool],
    ttl: float = 30.0,
    timeout: float = 600.0,
    poll: float = 0.05,
) -> Lease:
    """Win or wait out the claim for one digest.

    ``base`` is the artifact base path (``<root>/<stage>/<digest>``);
    the lock and claim live at ``base + ".lock"`` / ``base + ".claim"``.
    ``published()`` tells the wait loop whether the winner's artifact
    has landed.

    Returns a winner lease (compute + publish + release), or a reader
    lease as soon as ``published()`` turns true.  Stale claims — dead
    pid on this host, or heartbeat older than ``ttl`` — are reclaimed
    with a logged takeover.  If ``timeout`` expires while a live
    holder is still computing, the caller proceeds *unguarded* (warned;
    duplicate compute is then possible but publication stays
    token-guarded, so at most one publish lands).
    """
    lock_path = base.with_name(base.name + ".lock")
    claim_path = base.with_name(base.name + ".claim")
    base.parent.mkdir(parents=True, exist_ok=True)
    token = uuid.uuid4().hex
    lock = FileLock(lock_path)
    deadline = time.monotonic() + timeout
    waiting_since: float | None = None

    while True:
        if published():
            lock.release()
            return Lease(role="reader", ttl=ttl)
        if lock.try_acquire():
            # The lock is ours.  A leftover claim means the previous
            # holder died between claiming and releasing.
            reclaimed = False
            old = read_claim(claim_path)
            if old is not None and old.get("token") != token:
                reclaimed = True
                warnings.warn(
                    f"reclaiming stale claim on {base.name[:12]} "
                    f"(holder pid {old.get('pid')} on "
                    f"{old.get('hostname')} is gone)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            _write_claim(claim_path, token, started_at=_now())
            return Lease(
                role="winner",
                claim_path=claim_path,
                lock=lock,
                token=token,
                ttl=ttl,
                reclaimed=reclaimed,
            )
        # Lock held by a live process: wait, watching for staleness.
        if waiting_since is None:
            waiting_since = time.monotonic()
        old = read_claim(claim_path)
        if old is not None and claim_is_stale(old, ttl):
            # Live holder with an expired heartbeat (skewed clock or a
            # hung heartbeat thread): depose it by overwriting the
            # claim.  We cannot take its flock, so this winner runs
            # without one — the token guard keeps publication single.
            warnings.warn(
                f"taking over stale claim on {base.name[:12]} "
                f"(pid {old.get('pid')}: heartbeat "
                f"{_now() - float(old.get('heartbeat', 0.0)):.1f}s old, "
                f"ttl {ttl:g}s)",
                RuntimeWarning,
                stacklevel=2,
            )
            _write_claim(claim_path, token, started_at=_now())
            return Lease(
                role="winner",
                claim_path=claim_path,
                lock=None,
                token=token,
                ttl=ttl,
                reclaimed=True,
                deposed_holder=True,
            )
        if time.monotonic() >= deadline:
            warnings.warn(
                f"timed out after {timeout:g}s waiting for the claim on "
                f"{base.name[:12]}; computing without mutual exclusion",
                RuntimeWarning,
                stacklevel=2,
            )
            return Lease(role="winner", ttl=ttl, unguarded=True)
        time.sleep(poll)


# ----------------------------------------------------------------------
def parse_bytes(value: str | int | None) -> int | None:
    """Parse a byte budget like ``"512M"``, ``"2G"``, ``"100000"``.

    Returns ``None`` for ``None``/empty; raises ``ValueError`` on
    garbage.  Suffixes are binary (K=2**10, M=2**20, G=2**30, T=2**40).
    """
    if value is None:
        return None
    if isinstance(value, int):
        return value if value > 0 else None
    text = value.strip()
    if not text:
        return None
    scale = 1
    suffixes = {"K": 2**10, "M": 2**20, "G": 2**30, "T": 2**40}
    if text[-1].upper() in suffixes:
        scale = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        n = int(float(text) * scale)
    except ValueError:
        raise ValueError(
            f"unparsable byte budget {value!r} (expected e.g. '512M', "
            "'2G' or a plain byte count)"
        ) from None
    return n if n > 0 else None
