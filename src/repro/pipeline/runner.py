"""The pipeline runner: execute a :class:`Scenario` chain with
content-addressed reuse of every prefix.

Execution goes through the stage-DAG layer: ``Pipeline.run`` compiles
a one-scenario :class:`~repro.pipeline.plan.StagePlan` and hands it to
the :class:`~repro.pipeline.scheduler.DagScheduler`; ``run_batch``
compiles *one merged plan* over the whole batch, so scenarios sharing
a mesh/levels prefix execute each shared stage exactly once and the
riders record it as ``"shared"`` provenance (distinct from a store
cache hit — see ``RunRecord.explain``).

``Pipeline.run_linear`` keeps the original straight-line chain as the
oracle path (same pattern as ``graph/reference.py``): both paths call
the same :func:`~repro.pipeline.scheduler.execute_stage` store
protocol, and the equivalence tests pin bit-identical artifacts and
digests between them.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from ..flusim.metrics import ScheduleMetrics
from ..flusim.trace import Trace
from ..mesh.structures import Mesh
from ..partitioning import DomainDecomposition
from ..taskgraph.dag import TaskDAG
from .config import Scenario
from .jobs import resolve_n_jobs
from .plan import StagePlan, compile_plan
from .scheduler import DagScheduler, PlanResult, execute_stage
from .stages import STAGE_ORDER
from .store import ArtifactStore, default_store

__all__ = [
    "StageRecord",
    "RunRecord",
    "Pipeline",
    "run_batch",
    "expand_sweep",
]


@dataclass(frozen=True)
class StageRecord:
    """Provenance of one stage execution within a run."""

    stage: str
    digest: str
    #: "memory" | "disk" (store hits), "shared" (another job in the
    #: same merged plan computed this node), or None (computed fresh).
    cache: str | None
    wall_time: float

    @property
    def hit(self) -> bool:
        """Whether the stage was served without computing it here."""
        return self.cache is not None


@dataclass
class RunRecord:
    """Typed result of one pipeline run.

    Replaces the anonymous ``(dag, trace, metrics)`` tuples the
    experiment harnesses used to pass around; iterating a record
    still yields exactly that triple, so legacy unpacking keeps
    working.
    """

    scenario: Scenario
    mesh: Mesh
    tau: np.ndarray
    decomp: DomainDecomposition | None = None
    dag: TaskDAG | None = None
    trace: Trace | None = None
    metrics: ScheduleMetrics | None = None
    provenance: dict[str, StageRecord] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Any]:
        yield self.dag
        yield self.trace
        yield self.metrics

    @property
    def cache_hits(self) -> int:
        """Number of stages served without computing (store + shared)."""
        return sum(1 for r in self.provenance.values() if r.hit)

    @property
    def store_hits(self) -> int:
        """Stages served from the artifact store (memory or disk)."""
        return sum(
            1
            for r in self.provenance.values()
            if r.cache in ("memory", "disk")
        )

    @property
    def shared_hits(self) -> int:
        """Stages reused from another job in the same merged plan."""
        return sum(
            1 for r in self.provenance.values() if r.cache == "shared"
        )

    @property
    def all_cached(self) -> bool:
        """Whether every executed stage was a cache hit."""
        return bool(self.provenance) and all(
            r.hit for r in self.provenance.values()
        )

    def explain(self) -> str:
        """Human-readable per-stage provenance table.

        Sources: ``computed`` (ran here), ``memory``/``disk`` (store
        cache hits), ``shared`` (another scenario in the same merged
        plan computed the node — plan-time dedup, no store lookup).
        """
        lines = []
        for name in STAGE_ORDER:
            rec = self.provenance.get(name)
            if rec is None:
                continue
            source = rec.cache or "computed"
            lines.append(
                f"{name:>10s}  {rec.digest[:16]}  {source:<8s} "
                f"{1e3 * rec.wall_time:9.2f} ms"
            )
        if self.shared_hits:
            lines.append(
                f"{'':>10s}  ({self.store_hits} store hit(s), "
                f"{self.shared_hits} shared-prefix reuse(s))"
            )
        return "\n".join(lines)


class Pipeline:
    """Executes scenario chains against an artifact store.

    Parameters
    ----------
    store:
        The artifact store (defaults to the process-wide store —
        memory-only unless ``REPRO_ARTIFACTS`` / ``--artifacts``
        enabled the disk layer).
    n_jobs:
        Partitioner worker count; resolved *once* here
        (explicit → process default → ``REPRO_N_JOBS`` → serial) and
        threaded through to the strategies via
        ``PartitionConfig.n_jobs``, which also makes it part of the
        partition artifact's content address (parallel recursive
        bisection is worker-count dependent).
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        *,
        n_jobs: int | None = None,
    ) -> None:
        self.store = store if store is not None else default_store()
        self.n_jobs = resolve_n_jobs(n_jobs)

    # ------------------------------------------------------------------
    def _resolved(self, scenario: Scenario) -> Scenario:
        """Thread the resolved worker count into the partition config
        (only when the scenario didn't pin one explicitly)."""
        if scenario.partition.n_jobs != 1 or self.n_jobs == 1:
            return scenario
        return scenario.replace(
            partition=dataclasses.replace(
                scenario.partition, n_jobs=self.n_jobs
            )
        )

    def _run_stage(
        self,
        record: RunRecord,
        name: str,
        config: Any,
        upstream_digests: Sequence[str],
        upstream_objects: Sequence[Any],
    ) -> tuple[Any, str]:
        t0 = time.perf_counter()
        obj, digest, cache, _ = execute_stage(
            self.store, name, config, upstream_digests, upstream_objects
        )
        record.provenance[name] = StageRecord(
            stage=name,
            digest=digest,
            cache=cache,
            wall_time=time.perf_counter() - t0,
        )
        return obj, digest

    # ------------------------------------------------------------------
    def run(
        self, scenario: Scenario, *, through: str = "schedule"
    ) -> RunRecord:
        """Execute the chain up to and including stage ``through``
        (``"mesh"``, ``"levels"``, ``"partition"``, ``"taskgraph"``
        or ``"schedule"``)."""
        if through not in STAGE_ORDER:
            raise ValueError(
                f"unknown stage {through!r}; choose from {STAGE_ORDER}"
            )
        scenario = self._resolved(scenario)
        plan = compile_plan([scenario], through=through)
        result = DagScheduler(self.store, max_workers=1).execute(plan)
        return _record_from_plan(plan, result, 0)

    def run_linear(
        self, scenario: Scenario, *, through: str = "schedule"
    ) -> RunRecord:
        """The original straight-line chain, kept as the oracle the
        DAG path is tested bit-identical against."""
        if through not in STAGE_ORDER:
            raise ValueError(
                f"unknown stage {through!r}; choose from {STAGE_ORDER}"
            )
        scenario = self._resolved(scenario)
        stop = STAGE_ORDER.index(through)
        record = RunRecord(scenario=scenario, mesh=None, tau=None)  # type: ignore[arg-type]

        mesh, d_mesh = self._run_stage(
            record, "mesh", scenario.mesh, (), ()
        )
        record.mesh = mesh
        if stop >= 1:
            tau, d_tau = self._run_stage(
                record, "levels", scenario.levels, (d_mesh,), (mesh,)
            )
            record.tau = tau
        if stop >= 2:
            decomp, d_part = self._run_stage(
                record,
                "partition",
                scenario.partition,
                (d_mesh, d_tau),
                (mesh, tau),
            )
            record.decomp = decomp
        if stop >= 3:
            dag, d_dag = self._run_stage(
                record,
                "taskgraph",
                scenario.taskgraph,
                (d_mesh, d_tau, d_part),
                (mesh, tau, decomp),
            )
            record.dag = dag
        if stop >= 4:
            (trace, metrics), _ = self._run_stage(
                record,
                "schedule",
                scenario.schedule,
                (d_part, d_dag),
                (decomp, dag),
            )
            record.trace = trace
            record.metrics = metrics
        return record

    def case(self, scenario: Scenario) -> tuple[Mesh, np.ndarray]:
        """Shorthand: ``(mesh, tau)`` for a scenario prefix."""
        rec = self.run(scenario, through="levels")
        return rec.mesh, rec.tau


# ---------------------------------------------------------------------
_FIELD_OF_STAGE = {
    "mesh": "mesh",
    "levels": "tau",
    "partition": "decomp",
    "taskgraph": "dag",
}


def _record_from_plan(
    plan: StagePlan, result: PlanResult, job: int
) -> RunRecord:
    """Assemble one job's :class:`RunRecord` from an executed plan.

    Raises the job's causal exception if any node along its chain
    failed or was skipped — matching the linear path, where the stage
    exception propagated out of ``run``.
    """
    state = result.job_state(job)
    if state != "done":
        error = result.job_error(job)
        if error is not None:
            raise error
        raise RuntimeError(
            f"plan execution {state} before job {job} completed"
        )
    record = RunRecord(
        scenario=plan.scenarios[job], mesh=None, tau=None  # type: ignore[arg-type]
    )
    for name, key in plan.job_stages[job].items():
        node = result.nodes[key]
        cache = result.job_cache(job, key)
        record.provenance[name] = StageRecord(
            stage=name,
            digest=key,
            cache=cache,
            # A shared node's wall time belongs to the job that ran
            # it; riders got the object for free.
            wall_time=0.0 if cache == "shared" else node.wall_time,
        )
        obj = result.objects[key]
        if name == "schedule":
            record.trace, record.metrics = obj
        else:
            setattr(record, _FIELD_OF_STAGE[name], obj)
    return record


def expand_sweep(
    scenario: Scenario, sweep: dict[str, Sequence[Any]]
) -> list[Scenario]:
    """The cross product of leaf-option sweeps over a base scenario.

    ``sweep`` maps option names (any leaf field of a stage config,
    plus ``mesh``/``seed``) to value lists, e.g.
    ``{"domains": [32, 64, 128], "strategy": ["SC_OC", "MC_TL"]}``.
    """
    scenarios = [scenario]
    for key, values in sweep.items():
        scenarios = [
            sc.with_options(**{key: v}) for sc in scenarios for v in values
        ]
    return scenarios


def run_batch(
    scenarios: Sequence[Scenario],
    *,
    store: ArtifactStore | None = None,
    n_jobs: int | None = None,
    through: str = "schedule",
) -> list[RunRecord]:
    """Run a batch of scenarios as **one merged stage-DAG**.

    Chains sharing a prefix (same mesh/levels configs, say, differing
    only in partition seed) collapse onto shared plan nodes: each
    shared stage executes exactly once, and the scenarios that didn't
    run it record ``"shared"`` provenance.  The resolved worker count
    bounds the scheduler's pool; each inner partitioning call stays
    serial so a sweep's cache keys match the single-scenario runs
    users launch interactively.  Fully cached scenarios short-circuit
    to store lookups, exactly as before.
    """
    store = store if store is not None else default_store()
    if not scenarios:
        return []
    jobs = resolve_n_jobs(n_jobs)
    plan = compile_plan(scenarios, through=through)
    scheduler = DagScheduler(
        store, max_workers=min(jobs, len(scenarios))
    )
    result = scheduler.execute(plan)
    return [
        _record_from_plan(plan, result, j)
        for j in range(len(scenarios))
    ]
