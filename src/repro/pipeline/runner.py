"""The pipeline runner: execute a :class:`Scenario` chain with
content-addressed reuse of every prefix.

``Pipeline.run`` walks the five stages in order.  For each stage it
derives the content address (config + upstream digests), consults the
store (memory LRU, then disk), and only computes on a genuine miss —
so a second invocation with an unchanged config is served from cache
for every stage, observable in ``RunRecord.provenance`` and via the
CLI's ``repro pipeline run --explain``.

``run_batch`` executes independent pipeline instances (e.g. a
``--sweep domains=32,64,128``) through the same thread-pool machinery
the parallel partitioner uses, with cache-hit short-circuiting: a
scenario whose chain is fully cached costs only the lookups.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

from ..flusim.metrics import ScheduleMetrics
from ..flusim.trace import Trace
from ..mesh.structures import Mesh
from ..partitioning import DomainDecomposition
from ..taskgraph.dag import TaskDAG
from .config import Scenario
from .hashing import canonical_json, stage_digest
from .jobs import resolve_n_jobs
from .stages import STAGE_ORDER, STAGES
from .store import ArtifactStore, default_store

__all__ = [
    "StageRecord",
    "RunRecord",
    "Pipeline",
    "run_batch",
    "expand_sweep",
]


@dataclass(frozen=True)
class StageRecord:
    """Provenance of one stage execution within a run."""

    stage: str
    digest: str
    cache: str | None  # "memory" | "disk" | None (computed fresh)
    wall_time: float

    @property
    def hit(self) -> bool:
        """Whether the stage was served from cache."""
        return self.cache is not None


@dataclass
class RunRecord:
    """Typed result of one pipeline run.

    Replaces the anonymous ``(dag, trace, metrics)`` tuples the
    experiment harnesses used to pass around; iterating a record
    still yields exactly that triple, so legacy unpacking keeps
    working.
    """

    scenario: Scenario
    mesh: Mesh
    tau: np.ndarray
    decomp: DomainDecomposition | None = None
    dag: TaskDAG | None = None
    trace: Trace | None = None
    metrics: ScheduleMetrics | None = None
    provenance: dict[str, StageRecord] = field(default_factory=dict)

    def __iter__(self) -> Iterator[Any]:
        yield self.dag
        yield self.trace
        yield self.metrics

    @property
    def cache_hits(self) -> int:
        """Number of stages served from cache."""
        return sum(1 for r in self.provenance.values() if r.hit)

    @property
    def all_cached(self) -> bool:
        """Whether every executed stage was a cache hit."""
        return bool(self.provenance) and all(
            r.hit for r in self.provenance.values()
        )

    def explain(self) -> str:
        """Human-readable per-stage provenance table."""
        lines = []
        for name in STAGE_ORDER:
            rec = self.provenance.get(name)
            if rec is None:
                continue
            source = rec.cache or "computed"
            lines.append(
                f"{name:>10s}  {rec.digest[:16]}  {source:<8s} "
                f"{1e3 * rec.wall_time:9.2f} ms"
            )
        return "\n".join(lines)


class Pipeline:
    """Executes scenario chains against an artifact store.

    Parameters
    ----------
    store:
        The artifact store (defaults to the process-wide store —
        memory-only unless ``REPRO_ARTIFACTS`` / ``--artifacts``
        enabled the disk layer).
    n_jobs:
        Partitioner worker count; resolved *once* here
        (explicit → process default → ``REPRO_N_JOBS`` → serial) and
        threaded through to the strategies via
        ``PartitionConfig.n_jobs``, which also makes it part of the
        partition artifact's content address (parallel recursive
        bisection is worker-count dependent).
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        *,
        n_jobs: int | None = None,
    ) -> None:
        self.store = store if store is not None else default_store()
        self.n_jobs = resolve_n_jobs(n_jobs)

    # ------------------------------------------------------------------
    def _resolved(self, scenario: Scenario) -> Scenario:
        """Thread the resolved worker count into the partition config
        (only when the scenario didn't pin one explicitly)."""
        if scenario.partition.n_jobs != 1 or self.n_jobs == 1:
            return scenario
        return scenario.replace(
            partition=dataclasses.replace(
                scenario.partition, n_jobs=self.n_jobs
            )
        )

    def _run_stage(
        self,
        record: RunRecord,
        name: str,
        config: Any,
        upstream_digests: Sequence[str],
        upstream_objects: Sequence[Any],
    ) -> tuple[Any, str]:
        stage = STAGES[name]
        digest = stage_digest(
            stage.name, stage.version, config, upstream_digests
        )
        t0 = time.perf_counter()
        obj = self.store.memory_get(digest)
        cache: str | None = None
        if obj is not None:
            cache = "memory"
            self.store.stats.memory_hits += 1
        else:
            payload = self.store.disk_read(stage.name, digest)
            if payload is not None:
                meta = payload.sidecar.get("meta") or {}
                obj = stage.unpack(payload.arrays, meta, *upstream_objects)
                cache = "disk"
                self.store.stats.disk_hits += 1
            else:
                # Cross-process coordination: on a shared miss exactly
                # one worker wins the claim and computes; the others
                # block on the claim and read the published artifact.
                # Up to two reader rounds absorb a winner whose publish
                # turned out corrupt (quarantined on read).
                for _ in range(3):
                    lease = self.store.claim(stage.name, digest)
                    if lease is not None and lease.role == "reader":
                        lease.release()
                        payload = self.store.disk_read(stage.name, digest)
                        if payload is not None:
                            meta = payload.sidecar.get("meta") or {}
                            obj = stage.unpack(
                                payload.arrays, meta, *upstream_objects
                            )
                            cache = "disk"
                            self.store.stats.disk_hits += 1
                            break
                        continue  # published entry unreadable; re-claim
                    try:
                        self.store.stats.misses += 1
                        obj = stage.compute(config, *upstream_objects)
                        wall = time.perf_counter() - t0
                        arrays, meta = stage.pack(obj)
                        self.store.disk_write(
                            stage.name,
                            digest,
                            arrays,
                            sidecar={
                                "config": canonical_json(config),
                                "upstream": list(upstream_digests),
                                "stage_version": stage.version,
                                "wall_time": wall,
                                "created": time.time(),
                                "meta": meta,
                            },
                            lease=lease,
                        )
                    finally:
                        if lease is not None:
                            lease.release()
                    break
                if obj is None:
                    # Pathological: every published copy we were told
                    # to read was corrupt.  Compute locally, uncached.
                    self.store.stats.misses += 1
                    obj = stage.compute(config, *upstream_objects)
            self.store.memory_put(digest, obj)
        record.provenance[name] = StageRecord(
            stage=name,
            digest=digest,
            cache=cache,
            wall_time=time.perf_counter() - t0,
        )
        return obj, digest

    # ------------------------------------------------------------------
    def run(
        self, scenario: Scenario, *, through: str = "schedule"
    ) -> RunRecord:
        """Execute the chain up to and including stage ``through``
        (``"mesh"``, ``"levels"``, ``"partition"``, ``"taskgraph"``
        or ``"schedule"``)."""
        if through not in STAGE_ORDER:
            raise ValueError(
                f"unknown stage {through!r}; choose from {STAGE_ORDER}"
            )
        scenario = self._resolved(scenario)
        stop = STAGE_ORDER.index(through)
        record = RunRecord(scenario=scenario, mesh=None, tau=None)  # type: ignore[arg-type]

        mesh, d_mesh = self._run_stage(
            record, "mesh", scenario.mesh, (), ()
        )
        record.mesh = mesh
        if stop >= 1:
            tau, d_tau = self._run_stage(
                record, "levels", scenario.levels, (d_mesh,), (mesh,)
            )
            record.tau = tau
        if stop >= 2:
            decomp, d_part = self._run_stage(
                record,
                "partition",
                scenario.partition,
                (d_mesh, d_tau),
                (mesh, tau),
            )
            record.decomp = decomp
        if stop >= 3:
            dag, d_dag = self._run_stage(
                record,
                "taskgraph",
                scenario.taskgraph,
                (d_mesh, d_tau, d_part),
                (mesh, tau, decomp),
            )
            record.dag = dag
        if stop >= 4:
            (trace, metrics), _ = self._run_stage(
                record,
                "schedule",
                scenario.schedule,
                (d_part, d_dag),
                (decomp, dag),
            )
            record.trace = trace
            record.metrics = metrics
        return record

    def case(self, scenario: Scenario) -> tuple[Mesh, np.ndarray]:
        """Shorthand: ``(mesh, tau)`` for a scenario prefix."""
        rec = self.run(scenario, through="levels")
        return rec.mesh, rec.tau


# ---------------------------------------------------------------------
def expand_sweep(
    scenario: Scenario, sweep: dict[str, Sequence[Any]]
) -> list[Scenario]:
    """The cross product of leaf-option sweeps over a base scenario.

    ``sweep`` maps option names (any leaf field of a stage config,
    plus ``mesh``/``seed``) to value lists, e.g.
    ``{"domains": [32, 64, 128], "strategy": ["SC_OC", "MC_TL"]}``.
    """
    scenarios = [scenario]
    for key, values in sweep.items():
        scenarios = [
            sc.with_options(**{key: v}) for sc in scenarios for v in values
        ]
    return scenarios


def run_batch(
    scenarios: Sequence[Scenario],
    *,
    store: ArtifactStore | None = None,
    n_jobs: int | None = None,
    through: str = "schedule",
) -> list[RunRecord]:
    """Run independent pipeline instances, in parallel when asked.

    The resolved worker count drives the *outer* scenario pool; each
    inner partitioning call stays serial so a sweep's cache keys match
    the single-scenario runs users launch interactively.  Fully cached
    scenarios short-circuit to store lookups.
    """
    store = store if store is not None else default_store()
    jobs = resolve_n_jobs(n_jobs)
    pipe = Pipeline(store, n_jobs=1)
    if jobs == 1 or len(scenarios) <= 1:
        return [pipe.run(sc, through=through) for sc in scenarios]
    with ThreadPoolExecutor(
        max_workers=min(jobs, len(scenarios))
    ) as pool:
        return list(
            pool.map(lambda sc: pipe.run(sc, through=through), scenarios)
        )
