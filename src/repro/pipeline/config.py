"""Typed per-stage configuration for the reproduction pipeline.

The paper's workflow is one fixed chain — build mesh, assign temporal
levels, partition, generate the task graph, simulate the schedule.
Each link gets a frozen dataclass config; a :class:`Scenario` bundles
the five configs and is the unit the runner, the scenario registry,
the batch runner and the artifact store all speak.

Every field of every config participates in the stage's content
address (see :mod:`repro.pipeline.hashing`) — including
``PartitionConfig.n_jobs``, because the parallel recursive bisection
explores seeds per subproblem and its output genuinely depends on the
worker count.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = [
    "NUM_LEVELS",
    "MeshConfig",
    "LevelConfig",
    "PartitionConfig",
    "TaskGraphConfig",
    "ScheduleConfig",
    "Scenario",
]

#: Temporal level count per replica mesh (paper Table I).
NUM_LEVELS = {"cylinder": 4, "cube": 4, "pprime_nozzle": 3}


@dataclass(frozen=True)
class MeshConfig:
    """Mesh generation: a named builder plus its sizing knobs.

    ``name`` keys into :data:`repro.pipeline.stages.MESH_BUILDERS`
    (the replica meshes plus the perf harness's graded benchmark
    mesh).  ``scale`` overrides the builder's default ``max_depth``;
    ``min_depth`` is honoured by the builders that take one.
    """

    name: str
    scale: int | None = None
    min_depth: int | None = None


@dataclass(frozen=True)
class LevelConfig:
    """Temporal-level assignment (τ from quadtree depth, clipped to
    ``num_levels`` — ``None`` keeps the full depth range)."""

    num_levels: int | None = None


@dataclass(frozen=True)
class PartitionConfig:
    """Domain decomposition: strategy, sizes and partitioner knobs."""

    domains: int
    processes: int
    strategy: str = "SC_OC"
    seed: int = 0
    imbalance_tol: float = 1.05
    n_jobs: int = 1


@dataclass(frozen=True)
class TaskGraphConfig:
    """Task-graph expansion (paper Algorithm 1)."""

    scheme: str = "euler"
    iterations: int = 1
    cell_unit_cost: float = 1.0
    face_unit_cost: float = 1.0


@dataclass(frozen=True)
class ScheduleConfig:
    """FLUSIM simulation of the task graph on the virtual cluster
    (``cores=None`` emulates the unbounded-cores experiment)."""

    cores: int | None = 1
    scheduler: str = "eager"
    seed: int = 0


@dataclass(frozen=True)
class Scenario:
    """One full mesh→partition→DAG→schedule chain configuration."""

    mesh: MeshConfig
    levels: LevelConfig = field(default_factory=LevelConfig)
    partition: PartitionConfig = field(
        default_factory=lambda: PartitionConfig(domains=1, processes=1)
    )
    taskgraph: TaskGraphConfig = field(default_factory=TaskGraphConfig)
    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)

    @classmethod
    def standard(
        cls,
        mesh: str,
        domains: int,
        processes: int,
        cores: int | None,
        strategy: str = "SC_OC",
        *,
        scale: int | None = None,
        seed: int = 0,
        scheduler: str = "eager",
        scheme: str = "euler",
        iterations: int = 1,
        imbalance_tol: float = 1.05,
        n_jobs: int = 1,
    ) -> "Scenario":
        """Scenario on a named replica mesh with the paper's level
        caps (Table I) applied automatically."""
        return cls(
            mesh=MeshConfig(name=mesh, scale=scale),
            levels=LevelConfig(num_levels=NUM_LEVELS.get(mesh)),
            partition=PartitionConfig(
                domains=domains,
                processes=processes,
                strategy=strategy,
                seed=seed,
                imbalance_tol=imbalance_tol,
                n_jobs=n_jobs,
            ),
            taskgraph=TaskGraphConfig(scheme=scheme, iterations=iterations),
            schedule=ScheduleConfig(
                cores=cores, scheduler=scheduler, seed=seed
            ),
        )

    def replace(self, **stage_overrides: object) -> "Scenario":
        """A copy with whole stage configs replaced (e.g.
        ``sc.replace(partition=new_pc)``)."""
        return dataclasses.replace(self, **stage_overrides)

    def with_options(self, **options: object) -> "Scenario":
        """A copy with *leaf* options changed, routed to the stage
        that owns each field (e.g. ``domains=64, scheduler="sjf"``).

        ``seed`` updates both the partition and the schedule seeds,
        matching the single-seed convention of the experiment
        harnesses; ``mesh`` renames the mesh builder.
        """
        updates: dict[str, dict[str, object]] = {}
        for key, value in options.items():
            if key == "seed":
                updates.setdefault("partition", {})["seed"] = value
                updates.setdefault("schedule", {})["seed"] = value
                continue
            if key == "mesh":
                updates.setdefault("mesh", {})["name"] = value
                # Follow the replica meshes' level caps (Table I), as
                # Scenario.standard would.
                updates.setdefault("levels", {})["num_levels"] = (
                    NUM_LEVELS.get(str(value))
                )
                continue
            for stage_field in dataclasses.fields(self):
                cfg = getattr(self, stage_field.name)
                if key in {f.name for f in dataclasses.fields(cfg)}:
                    updates.setdefault(stage_field.name, {})[key] = value
                    break
            else:
                raise ValueError(
                    f"unknown scenario option {key!r}; no pipeline "
                    "stage config has such a field"
                )
        out = self
        for stage_name, kwargs in updates.items():
            out = dataclasses.replace(
                out,
                **{
                    stage_name: dataclasses.replace(
                        getattr(out, stage_name), **kwargs
                    )
                },
            )
        return out
