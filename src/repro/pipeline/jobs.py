"""Single resolution point for the partitioner worker count.

Historically ``REPRO_N_JOBS`` was consulted independently by the
experiment harness, the CLI and the graph partitioner; this module is
now the one place the knob is resolved.  The resolved integer is then
*threaded* through the pipeline into the strategies, so downstream
layers never re-read the environment.

Resolution order: an explicit value (e.g. the CLI's ``--jobs``), then
the process-wide default installed with :func:`set_default_n_jobs`,
then the ``REPRO_N_JOBS`` environment variable, then serial.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["resolve_n_jobs", "set_default_n_jobs"]

#: Process-wide default installed by the CLI; ``None`` falls through
#: to the ``REPRO_N_JOBS`` environment variable.
_default_n_jobs: int | None = None


def set_default_n_jobs(n: int | None) -> None:
    """Install a process-wide worker-count default (``None`` reverts
    to ``REPRO_N_JOBS`` / serial)."""
    global _default_n_jobs
    _default_n_jobs = n


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve the effective partitioner worker count (>= 1).

    ``-1`` means one worker per CPU; an unparsable ``REPRO_N_JOBS``
    warns and falls back to serial rather than killing a campaign.
    """
    if n_jobs is None:
        n_jobs = _default_n_jobs
    if n_jobs is None:
        env = os.environ.get("REPRO_N_JOBS", "")
        if not env.strip():
            return 1
        try:
            n_jobs = int(env)
        except ValueError:
            warnings.warn(
                f"invalid REPRO_N_JOBS value {env!r} (expected an "
                "integer); falling back to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, n_jobs)
