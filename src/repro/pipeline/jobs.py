"""Single resolution point for the partitioner parallelism knobs.

Historically ``REPRO_N_JOBS`` was consulted independently by the
experiment harness, the CLI and the graph partitioner; this module is
now the one place the knobs are resolved.  The resolved values are
then *threaded* through the pipeline into the strategies, so
downstream layers never re-read the environment.

Resolution order for the worker count: an explicit value (e.g. the
CLI's ``--jobs``), then the process-wide default installed with
:func:`set_default_n_jobs`, then the ``REPRO_N_JOBS`` environment
variable, then serial.  The pool backend (:func:`resolve_executor`)
follows the same pattern with ``REPRO_EXECUTOR``; its ``"auto"``
default lets the partitioner pick threads for small graphs and
shared-memory processes (:class:`~repro.graph.shared.SharedCSR`) at
scale.

The stage-DAG layer resolves its worker counts here too: a
:class:`~repro.pipeline.scheduler.DagScheduler` built without an
explicit ``max_workers`` sizes its pool through
:func:`resolve_n_jobs`, so one knob governs both the partitioner's
inner parallelism and the scheduler's node-level concurrency.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["resolve_n_jobs", "set_default_n_jobs", "resolve_executor"]

#: Valid pool-backend names, as understood by
#: :func:`repro.graph.partition.recursive_bisection`.
_EXECUTORS = ("auto", "thread", "process")

#: Process-wide default installed by the CLI; ``None`` falls through
#: to the ``REPRO_N_JOBS`` environment variable.
_default_n_jobs: int | None = None


def set_default_n_jobs(n: int | None) -> None:
    """Install a process-wide worker-count default (``None`` reverts
    to ``REPRO_N_JOBS`` / serial)."""
    global _default_n_jobs
    _default_n_jobs = n


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve the effective partitioner worker count (>= 1).

    ``-1`` means one worker per CPU; an unparsable ``REPRO_N_JOBS``
    warns and falls back to serial rather than killing a campaign.
    """
    if n_jobs is None:
        n_jobs = _default_n_jobs
    if n_jobs is None:
        env = os.environ.get("REPRO_N_JOBS", "")
        if not env.strip():
            return 1
        try:
            n_jobs = int(env)
        except ValueError:
            warnings.warn(
                f"invalid REPRO_N_JOBS value {env!r} (expected an "
                "integer); falling back to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, n_jobs)


def resolve_executor(executor: str | None = None) -> str:
    """Resolve the parallel pool backend: ``"auto"``, ``"thread"`` or
    ``"process"``.

    An explicit value wins; otherwise the ``REPRO_EXECUTOR``
    environment variable is consulted; the default is ``"auto"``
    (threads below the partitioner's scale threshold, shared-memory
    processes above it).  An invalid value warns and falls back to
    ``"auto"`` rather than killing a campaign.
    """
    if executor is None:
        executor = os.environ.get("REPRO_EXECUTOR", "").strip() or "auto"
    executor = executor.lower()
    if executor not in _EXECUTORS:
        warnings.warn(
            f"invalid executor value {executor!r} (expected one of "
            f"{_EXECUTORS}); falling back to 'auto'",
            RuntimeWarning,
            stacklevel=2,
        )
        return "auto"
    return executor
