"""Scenario registry — the named cluster/domain configurations of the
paper's experiments, as full pipeline scenarios.

This replaces the old ``PAPER_CONFIGS`` dict-of-dicts scatter: each
entry is a typed :class:`~repro.pipeline.config.Scenario` the runner
can execute directly, and the legacy view is derived from it (see
:func:`paper_configs`).
"""

from __future__ import annotations

from .config import Scenario

__all__ = ["SCENARIOS", "get_scenario", "paper_configs"]

#: Named scenarios (paper experiment configurations).
SCENARIOS: dict[str, Scenario] = {
    # Fig 5/12/13: nozzle on 6 processes of 4 cores, 12 domains.
    "nozzle_validation": Scenario.standard(
        "pprime_nozzle", domains=12, processes=6, cores=4
    ),
    # Fig 6: 64 domains on 64 processes, unbounded cores.
    "unbounded": Scenario.standard(
        "cylinder", domains=64, processes=64, cores=None
    ),
    # Fig 7/10: 16 processes of 32 cores, 16 domains.
    "characteristics": Scenario.standard(
        "cylinder", domains=16, processes=16, cores=32
    ),
    # Fig 9: 128 domains on 16 processes of 32 cores (the figure runs
    # it on both CYLINDER and CUBE; cylinder is the registry default).
    "speedup": Scenario.standard(
        "cylinder", domains=128, processes=16, cores=32
    ),
    # The perf harness's graded benchmark mesh (mesh/levels prefix
    # only; partition sizes are whatever the bench leg asks for).
    "bench_graded": Scenario.standard(
        "bench_graded", domains=8, processes=8, cores=1, scale=11
    ).with_options(min_depth=5),
}

#: Scenarios whose legacy ``PAPER_CONFIGS`` entry omitted the mesh
#: (the experiment sweeps meshes itself).
_LEGACY_MESH_SWEPT = frozenset({"speedup"})

#: Entries that predate the pipeline and must keep their exact legacy
#: ``PAPER_CONFIGS`` shape.
_LEGACY_NAMES = (
    "nozzle_validation",
    "unbounded",
    "characteristics",
    "speedup",
)


def get_scenario(name: str, **options: object) -> Scenario:
    """A registered scenario, optionally with leaf options overridden
    (``domains=64``, ``strategy="MC_TL"``, ``scale=7``, ...)."""
    try:
        sc = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return sc.with_options(**options) if options else sc


def paper_configs() -> dict[str, dict]:
    """The legacy ``PAPER_CONFIGS`` view, derived from the registry."""
    out: dict[str, dict] = {}
    for name in _LEGACY_NAMES:
        sc = SCENARIOS[name]
        cfg: dict = {}
        if name not in _LEGACY_MESH_SWEPT:
            cfg["mesh"] = sc.mesh.name
        cfg.update(
            domains=sc.partition.domains,
            processes=sc.partition.processes,
            cores=sc.schedule.cores,
        )
        out[name] = cfg
    return out
