"""Content-addressed artifact store for pipeline stage outputs.

Layout (one directory per stage under the root)::

    <root>/mesh/<digest>.npz        arrays
    <root>/mesh/<digest>.json       sidecar: config, provenance
    <root>/partition/<digest>.npz
    ...

The digest is the stage's content address
(:func:`repro.pipeline.hashing.stage_digest`): stage name + stage
version + package version + canonical config + upstream digests.  Any
prefix of the chain computed once is therefore reused across
experiments, CLI invocations, benches and campaign restarts.

Writes are crash-safe with the same idiom as
:mod:`repro.resilience.checkpoint`: both files go to ``*.tmp`` first
and are ``os.replace``-d into place, arrays before sidecar, so a
sidecar is only ever visible once its arrays are complete.

Reads are *self-healing*: a truncated ``.npz``, an unparsable sidecar,
or a sidecar whose recorded digest/arrays manifest disagrees with the
files on disk is treated as a miss (with a :class:`RuntimeWarning`) —
the stage recomputes and overwrites the corrupt entry.

On top of the disk layer sits a small **bounded** in-process LRU of
deserialized objects (``memory_items`` entries, default 64) — the
replacement for the unbounded ``functools.lru_cache`` maps the
experiment harness used to grow during long sweeps.  A store with
``root=None`` is memory-only, which is the default for in-process use
(tests, library callers); the CLI and the batch runner enable the disk
layer via ``--artifacts`` / ``REPRO_ARTIFACTS``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "default_store",
    "set_default_store",
    "default_cache_root",
]

SIDECAR_VERSION = 1

#: Default on-disk root when the disk layer is enabled without an
#: explicit directory.
DEFAULT_CACHE_DIR = "~/.cache/repro"


def default_cache_root() -> Path:
    """The default on-disk root (``$REPRO_ARTIFACTS`` or
    ``~/.cache/repro``)."""
    env = os.environ.get("REPRO_ARTIFACTS", "").strip()
    return Path(env if env else DEFAULT_CACHE_DIR).expanduser()


@dataclass
class StoreStats:
    """Hit/miss counters (also surfaced per stage in provenance)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    corrupt: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


@dataclass
class _DiskPayload:
    """What the disk layer hands back on a hit."""

    arrays: dict[str, np.ndarray]
    sidecar: dict[str, Any]


class ArtifactStore:
    """Two-level (memory LRU over optional disk) artifact cache.

    Parameters
    ----------
    root:
        Directory of the disk layer; ``None`` disables it (memory-only
        store).
    memory_items:
        Bound of the in-process object LRU (>= 0; 0 disables it).
        The default (64) comfortably covers the paper's sweeps while
        keeping long campaigns from holding every mesh alive.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        memory_items: int = 64,
    ) -> None:
        self.root = Path(root).expanduser() if root is not None else None
        if memory_items < 0:
            raise ValueError("memory_items must be >= 0")
        self.memory_items = memory_items
        self.stats = StoreStats()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    # -- memory layer --------------------------------------------------
    def memory_get(self, digest: str) -> Any | None:
        """The cached object for ``digest`` (moves it to MRU)."""
        with self._lock:
            try:
                obj = self._memory.pop(digest)
            except KeyError:
                return None
            self._memory[digest] = obj
            return obj

    def memory_put(self, digest: str, obj: Any) -> None:
        """Insert/refresh an object, evicting LRU entries past the
        bound."""
        if self.memory_items == 0:
            return
        with self._lock:
            self._memory.pop(digest, None)
            self._memory[digest] = obj
            while len(self._memory) > self.memory_items:
                self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        """Drop the in-process object cache (the disk layer stays)."""
        with self._lock:
            self._memory.clear()

    # -- disk layer ----------------------------------------------------
    @property
    def disk_enabled(self) -> bool:
        return self.root is not None

    def _paths(self, stage: str, digest: str) -> tuple[Path, Path]:
        base = self.root / stage / digest  # type: ignore[operator]
        return base.with_suffix(".npz"), base.with_suffix(".json")

    def disk_read(self, stage: str, digest: str) -> _DiskPayload | None:
        """Load an artifact from disk; ``None`` on miss *or* on any
        corruption (which is warned about and then treated as a miss,
        so the caller recomputes and overwrites)."""
        if self.root is None:
            return None
        npz_path, json_path = self._paths(stage, digest)
        if not json_path.exists():
            return None
        try:
            sidecar = json.loads(json_path.read_text(encoding="utf-8"))
            if not isinstance(sidecar, dict):
                raise ValueError("sidecar is not a JSON object")
            if sidecar.get("digest") != digest:
                raise ValueError(
                    f"sidecar records digest {sidecar.get('digest')!r}"
                )
            if sidecar.get("stage") != stage:
                raise ValueError(
                    f"sidecar records stage {sidecar.get('stage')!r}"
                )
            expected = sidecar.get("arrays")
            if not isinstance(expected, list):
                raise ValueError("sidecar has no arrays manifest")
            with np.load(npz_path, allow_pickle=False) as data:
                missing = [k for k in expected if k not in data]
                if missing:
                    raise ValueError(f"arrays missing {missing}")
                arrays = {k: data[k].copy() for k in expected}
        except Exception as exc:  # BadZipFile, OSError, ValueError, ...
            self.stats.corrupt += 1
            warnings.warn(
                f"corrupt artifact {stage}/{digest[:12]} "
                f"({type(exc).__name__}: {exc}); recomputing",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return _DiskPayload(arrays=arrays, sidecar=sidecar)

    def disk_write(
        self,
        stage: str,
        digest: str,
        arrays: dict[str, np.ndarray],
        sidecar: dict[str, Any],
    ) -> Path | None:
        """Atomically persist an artifact; returns the sidecar path
        (``None`` when the disk layer is disabled).

        A failed write is not worth killing the producing run for —
        it warns and the result simply stays uncached.
        """
        if self.root is None:
            return None
        npz_path, json_path = self._paths(stage, digest)
        npz_path.parent.mkdir(parents=True, exist_ok=True)
        record = dict(sidecar)
        record.setdefault("sidecar_version", SIDECAR_VERSION)
        record["stage"] = stage
        record["digest"] = digest
        record["arrays"] = sorted(arrays)
        tmp_npz = npz_path.with_name(npz_path.name + ".tmp")
        tmp_json = json_path.with_name(json_path.name + ".tmp")
        try:
            with open(tmp_npz, "wb") as fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp_npz, npz_path)
            with open(tmp_json, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=1, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_json, json_path)
        except OSError as exc:
            for tmp in (tmp_npz, tmp_json):
                try:
                    tmp.unlink()
                except OSError:
                    pass
            warnings.warn(
                f"failed to persist artifact {stage}/{digest[:12]}: "
                f"{exc}; continuing uncached",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return json_path

    def sidecar(self, stage: str, digest: str) -> dict[str, Any] | None:
        """The provenance sidecar of a stored artifact, if readable."""
        if self.root is None:
            return None
        _, json_path = self._paths(stage, digest)
        try:
            data = json.loads(json_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None


# ---------------------------------------------------------------------
#: Process-wide store shared by the experiment wrappers and the CLI.
_default_store: ArtifactStore | None = None
_default_lock = threading.Lock()


def default_store() -> ArtifactStore:
    """The process-wide store.

    Memory-only by default; the disk layer switches on when
    ``REPRO_ARTIFACTS`` names a directory (the CLI's ``--artifacts``
    installs a disk-backed store explicitly via
    :func:`set_default_store`).
    """
    global _default_store
    with _default_lock:
        if _default_store is None:
            env = os.environ.get("REPRO_ARTIFACTS", "").strip()
            _default_store = ArtifactStore(root=env or None)
        return _default_store


def set_default_store(store: ArtifactStore | None) -> None:
    """Install (or with ``None`` reset) the process-wide store."""
    global _default_store
    with _default_lock:
        _default_store = store
