"""Content-addressed artifact store for pipeline stage outputs.

Layout (one directory per stage under the root)::

    <root>/mesh/<digest>.npz        arrays
    <root>/mesh/<digest>.json       sidecar: config, provenance
    <root>/mesh/<digest>.lock       advisory compute lock (crumb file)
    <root>/mesh/<digest>.claim      active compute claim (transient)
    <root>/partition/<digest>.npz
    <root>/.quarantine/             corrupt entries, moved aside
    ...

The digest is the stage's content address
(:func:`repro.pipeline.hashing.stage_digest`): stage name + stage
version + package version + canonical config + upstream digests.  Any
prefix of the chain computed once is therefore reused across
experiments, CLI invocations, benches and campaign restarts.

Writes are crash-safe with the same idiom as
:mod:`repro.resilience.checkpoint`: both files go to ``*.tmp`` first
and are ``os.replace``-d into place, arrays before sidecar, so a
sidecar is only ever visible once its arrays are complete.

Reads are *self-healing*: a truncated ``.npz``, an unparsable sidecar,
or a sidecar whose recorded digest/arrays manifest disagrees with the
files on disk is treated as a miss (with a :class:`RuntimeWarning`).
The corrupt entry is **quarantined** into ``<root>/.quarantine/``
rather than silently overwritten, so a flaky disk leaves evidence;
``repro store doctor`` inspects and flushes the quarantine.

Cross-process tier
------------------
A store whose disk layer is enabled coordinates concurrent workers
through per-digest advisory locks and atomic claim files
(:mod:`repro.pipeline.locking`): on a shared miss, exactly one worker
wins the claim and computes; the others block (with a timeout) and
read the published artifact.  Stale claims — dead pids, heartbeats
older than ``claim_ttl`` — are reclaimed with a logged takeover, and
publication is token-guarded so a deposed winner's late publish is
dropped instead of double-counting the digest.

The disk layer also enforces an optional **byte budget**
(``REPRO_ARTIFACTS_BUDGET``, e.g. ``"512M"``): after each write, the
least-recently-used artifacts are evicted (sidecar mtime is bumped on
every disk hit) until the store fits.  Eviction takes each victim's
digest lock first, so it never rips an artifact out from under an
active claim.

Degradation: a disk-full / permission / read-only-filesystem error
does not fail the producing run — the store logs one warning, drops
to memory-only operation for the rest of the process, and keeps
serving (``stats.degraded`` records the reason).

On top of the disk layer sits a small **bounded** in-process LRU of
deserialized objects (``memory_items`` entries, default 64).  A store
with ``root=None`` is memory-only, which is the default for in-process
use (tests, library callers); the CLI and the batch runner enable the
disk layer via ``--artifacts`` / ``REPRO_ARTIFACTS``.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from .locking import (
    FileLock,
    Lease,
    acquire_claim,
    claim_is_stale,
    parse_bytes,
    read_claim,
)

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "DoctorReport",
    "default_store",
    "set_default_store",
    "default_cache_root",
]

SIDECAR_VERSION = 1

#: Default on-disk root when the disk layer is enabled without an
#: explicit directory.
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: Directory (under the root) corrupt entries are moved into.
QUARANTINE_DIR = ".quarantine"

#: OSError errnos that flip the store to memory-only instead of
#: failing the producing run.
_DEGRADE_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EDQUOT, errno.EACCES, errno.EPERM, errno.EROFS}
)


def default_cache_root() -> Path:
    """The default on-disk root (``$REPRO_ARTIFACTS`` or
    ``~/.cache/repro``)."""
    env = os.environ.get("REPRO_ARTIFACTS", "").strip()
    return Path(env if env else DEFAULT_CACHE_DIR).expanduser()


@dataclass
class StoreStats:
    """Hit/miss counters (also surfaced per stage in provenance)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    corrupt: int = 0
    #: Cross-process tier counters.
    claims_won: int = 0
    claims_waited: int = 0
    claims_reclaimed: int = 0
    publishes_dropped: int = 0
    evicted: int = 0
    quarantined: int = 0
    #: Non-empty once the disk layer degraded to memory-only.
    degraded: str = ""

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


@dataclass
class _DiskPayload:
    """What the disk layer hands back on a hit."""

    arrays: dict[str, np.ndarray]
    sidecar: dict[str, Any]


@dataclass
class DoctorReport:
    """What ``ArtifactStore.doctor`` found on disk (see ``repro store
    doctor``)."""

    root: Path
    entries: int = 0
    total_bytes: int = 0
    per_stage: dict[str, tuple[int, int]] = field(default_factory=dict)
    quarantined: list[str] = field(default_factory=list)
    stale_claims: list[str] = field(default_factory=list)
    active_claims: list[str] = field(default_factory=list)
    tmp_files: list[str] = field(default_factory=list)
    budget_bytes: int | None = None
    flushed: int = 0

    @property
    def healthy(self) -> bool:
        return not (self.quarantined or self.stale_claims or self.tmp_files)

    def summary(self) -> str:
        lines = [
            f"artifact store at {self.root}",
            f"  entries: {self.entries} ({self.total_bytes / 2**20:.1f} MiB"
            + (
                f" of {self.budget_bytes / 2**20:.1f} MiB budget)"
                if self.budget_bytes
                else ")"
            ),
        ]
        for stage, (n, b) in sorted(self.per_stage.items()):
            lines.append(f"    {stage:>10s}: {n} artifacts, {b / 2**20:.1f} MiB")
        lines.append(f"  active claims: {len(self.active_claims)}")
        for c in self.active_claims:
            lines.append(f"    {c}")
        lines.append(f"  stale claims: {len(self.stale_claims)}")
        for c in self.stale_claims:
            lines.append(f"    {c}")
        lines.append(f"  quarantined: {len(self.quarantined)}")
        for q in self.quarantined:
            lines.append(f"    {q}")
        lines.append(f"  leftover tmp files: {len(self.tmp_files)}")
        if self.flushed:
            lines.append(f"  flushed: {self.flushed} files removed")
        lines.append("  status: " + ("healthy" if self.healthy else "needs attention"))
        return "\n".join(lines)


class ArtifactStore:
    """Two-level (memory LRU over optional disk) artifact cache.

    Parameters
    ----------
    root:
        Directory of the disk layer; ``None`` disables it (memory-only
        store).
    memory_items:
        Bound of the in-process object LRU (>= 0; 0 disables it).
        The default (64) comfortably covers the paper's sweeps while
        keeping long campaigns from holding every mesh alive.
    locking:
        Enable the cross-process claim tier (default on; only
        meaningful with a disk layer).  ``REPRO_STORE_LOCKING=0``
        disables it globally.
    lock_timeout:
        How long a loser blocks on another worker's claim before
        computing unguarded (``REPRO_STORE_LOCK_TIMEOUT``, default
        600 s).
    claim_ttl:
        Heartbeat age beyond which a claim counts as stale and is
        reclaimed (``REPRO_STORE_CLAIM_TTL``, default 30 s).
    budget_bytes:
        Disk byte budget for LRU eviction; ``None`` reads
        ``REPRO_ARTIFACTS_BUDGET`` (unset = unbounded).  Accepts
        ``"512M"``-style strings.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        memory_items: int = 64,
        locking: bool | None = None,
        lock_timeout: float | None = None,
        claim_ttl: float | None = None,
        budget_bytes: int | str | None = None,
    ) -> None:
        self.root = Path(root).expanduser() if root is not None else None
        if memory_items < 0:
            raise ValueError("memory_items must be >= 0")
        self.memory_items = memory_items
        if locking is None:
            locking = os.environ.get("REPRO_STORE_LOCKING", "1").strip() not in (
                "0",
                "off",
                "false",
            )
        self.locking = bool(locking)
        self.lock_timeout = (
            float(lock_timeout)
            if lock_timeout is not None
            else _env_float("REPRO_STORE_LOCK_TIMEOUT", 600.0)
        )
        self.claim_ttl = (
            float(claim_ttl)
            if claim_ttl is not None
            else _env_float("REPRO_STORE_CLAIM_TTL", 30.0)
        )
        if budget_bytes is None:
            env = os.environ.get("REPRO_ARTIFACTS_BUDGET", "").strip()
            try:
                self.budget_bytes = parse_bytes(env or None)
            except ValueError as exc:
                warnings.warn(
                    f"ignoring REPRO_ARTIFACTS_BUDGET: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.budget_bytes = None
        else:
            self.budget_bytes = parse_bytes(budget_bytes)
        self.stats = StoreStats()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._disk_fault: str | None = None

    # -- memory layer --------------------------------------------------
    def memory_get(self, digest: str) -> Any | None:
        """The cached object for ``digest`` (moves it to MRU)."""
        with self._lock:
            try:
                obj = self._memory.pop(digest)
            except KeyError:
                return None
            self._memory[digest] = obj
            return obj

    def memory_put(self, digest: str, obj: Any) -> None:
        """Insert/refresh an object, evicting LRU entries past the
        bound."""
        if self.memory_items == 0:
            return
        with self._lock:
            self._memory.pop(digest, None)
            self._memory[digest] = obj
            while len(self._memory) > self.memory_items:
                self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        """Drop the in-process object cache (the disk layer stays)."""
        with self._lock:
            self._memory.clear()

    # -- disk layer ----------------------------------------------------
    @property
    def disk_enabled(self) -> bool:
        return self.root is not None and self._disk_fault is None

    def _degrade(self, exc: OSError, what: str) -> None:
        """Drop the disk layer to memory-only after an environmental
        failure (disk full, permissions, read-only fs)."""
        reason = f"{what}: {exc}"
        self._disk_fault = reason
        self.stats.degraded = reason
        warnings.warn(
            f"artifact store disk layer degraded to memory-only "
            f"({reason}); jobs continue uncached on disk",
            RuntimeWarning,
            stacklevel=3,
        )

    def _maybe_degrade(self, exc: OSError, what: str) -> None:
        if exc.errno in _DEGRADE_ERRNOS:
            self._degrade(exc, what)

    def _paths(self, stage: str, digest: str) -> tuple[Path, Path]:
        base = self.root / stage / digest  # type: ignore[operator]
        return base.with_suffix(".npz"), base.with_suffix(".json")

    def _quarantine(
        self, stage: str, digest: str, npz_path: Path, json_path: Path, reason: str
    ) -> None:
        """Move a corrupt entry aside (evidence for ``store doctor``)
        instead of leaving it to be silently overwritten."""
        qdir = self.root / QUARANTINE_DIR  # type: ignore[operator]
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            moved = False
            for p in (npz_path, json_path):
                target = qdir / f"{stage}__{p.name}"
                try:
                    os.replace(p, target)
                    moved = True
                except FileNotFoundError:
                    continue
            if moved:
                note = qdir / f"{stage}__{digest}.reason.json"
                note.write_text(
                    json.dumps(
                        {
                            "stage": stage,
                            "digest": digest,
                            "reason": reason,
                            "quarantined_at": time.time(),
                            "by_pid": os.getpid(),
                        }
                    ),
                    encoding="utf-8",
                )
                self.stats.quarantined += 1
        except OSError as exc:
            self._maybe_degrade(exc, "quarantine")

    def disk_read(self, stage: str, digest: str) -> _DiskPayload | None:
        """Load an artifact from disk; ``None`` on miss *or* on any
        corruption (which is warned about, quarantined, and then
        treated as a miss, so the caller recomputes)."""
        if not self.disk_enabled:
            return None
        npz_path, json_path = self._paths(stage, digest)
        if not json_path.exists():
            return None
        try:
            sidecar = json.loads(json_path.read_text(encoding="utf-8"))
            if not isinstance(sidecar, dict):
                raise ValueError("sidecar is not a JSON object")
            if sidecar.get("digest") != digest:
                raise ValueError(
                    f"sidecar records digest {sidecar.get('digest')!r}"
                )
            if sidecar.get("stage") != stage:
                raise ValueError(
                    f"sidecar records stage {sidecar.get('stage')!r}"
                )
            expected = sidecar.get("arrays")
            if not isinstance(expected, list):
                raise ValueError("sidecar has no arrays manifest")
            with np.load(npz_path, allow_pickle=False) as data:
                missing = [k for k in expected if k not in data]
                if missing:
                    raise ValueError(f"arrays missing {missing}")
                arrays = {k: data[k].copy() for k in expected}
        except Exception as exc:  # BadZipFile, OSError, ValueError, ...
            self.stats.corrupt += 1
            reason = f"{type(exc).__name__}: {exc}"
            warnings.warn(
                f"corrupt artifact {stage}/{digest[:12]} "
                f"({reason}); quarantining and recomputing",
                RuntimeWarning,
                stacklevel=3,
            )
            self._quarantine(stage, digest, npz_path, json_path, reason)
            return None
        # Bump recency for LRU eviction (atime is unreliable; use the
        # sidecar's mtime as the clock).  Best-effort only.
        try:
            os.utime(json_path)
        except OSError:
            pass
        return _DiskPayload(arrays=arrays, sidecar=sidecar)

    def disk_write(
        self,
        stage: str,
        digest: str,
        arrays: dict[str, np.ndarray],
        sidecar: dict[str, Any],
        *,
        lease: Lease | None = None,
    ) -> Path | None:
        """Atomically persist an artifact; returns the sidecar path
        (``None`` when the disk layer is disabled or the publish was
        dropped).

        With a ``lease``, publication is guarded: a winner whose claim
        was taken over while it computed (stale heartbeat takeover)
        drops the publish — the takeover's result is the one that
        lands, keeping "at most one successful publish per digest".

        A failed write is not worth killing the producing run for —
        it warns and the result simply stays uncached; environmental
        errors (disk full, permissions) degrade the store to
        memory-only.
        """
        if not self.disk_enabled:
            return None
        if lease is not None and not lease.still_owner():
            self.stats.publishes_dropped += 1
            warnings.warn(
                f"dropping publish of {stage}/{digest[:12]}: the claim "
                "was taken over while computing (stale heartbeat); the "
                "takeover's result wins",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        npz_path, json_path = self._paths(stage, digest)
        record = dict(sidecar)
        record.setdefault("sidecar_version", SIDECAR_VERSION)
        record["stage"] = stage
        record["digest"] = digest
        record["arrays"] = sorted(arrays)
        tmp_npz = npz_path.with_name(npz_path.name + f".tmp{os.getpid()}")
        tmp_json = json_path.with_name(json_path.name + f".tmp{os.getpid()}")
        try:
            npz_path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp_npz, "wb") as fh:
                np.savez_compressed(fh, **arrays)
            os.replace(tmp_npz, npz_path)
            with open(tmp_json, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=1, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_json, json_path)
        except OSError as exc:
            for tmp in (tmp_npz, tmp_json):
                try:
                    tmp.unlink()
                except OSError:
                    pass
            self._maybe_degrade(exc, "write")
            if self._disk_fault is None:
                warnings.warn(
                    f"failed to persist artifact {stage}/{digest[:12]}: "
                    f"{exc}; continuing uncached",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None
        if self.budget_bytes is not None:
            self._evict_lru(protect={digest})
        return json_path

    def sidecar(self, stage: str, digest: str) -> dict[str, Any] | None:
        """The provenance sidecar of a stored artifact, if readable."""
        if self.root is None:
            return None
        _, json_path = self._paths(stage, digest)
        try:
            data = json.loads(json_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return data if isinstance(data, dict) else None

    # -- cross-process claims ------------------------------------------
    def claim(self, stage: str, digest: str) -> Lease | None:
        """Coordinate a miss across processes.

        ``None`` when there is nothing to coordinate (no disk layer or
        locking disabled): the caller just computes.  Otherwise a
        :class:`~repro.pipeline.locking.Lease` — ``winner`` computes
        and publishes (pass the lease to :meth:`disk_write`), then
        releases; ``reader`` re-reads the artifact the winner
        published.
        """
        if not self.disk_enabled or not self.locking:
            return None
        _, json_path = self._paths(stage, digest)
        base = self.root / stage / digest  # type: ignore[operator]
        try:
            lease = acquire_claim(
                base,
                published=json_path.exists,
                ttl=self.claim_ttl,
                timeout=self.lock_timeout,
            )
        except OSError as exc:
            # Filesystem without locking support, or an environmental
            # failure: fall back to uncoordinated operation.
            self._maybe_degrade(exc, "claim")
            if self._disk_fault is None:
                warnings.warn(
                    f"cannot lock {stage}/{digest[:12]} ({exc}); "
                    "computing without cross-process coordination",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self.locking = False
            return None
        if lease.role == "winner":
            self.stats.claims_won += 1
            if lease.reclaimed:
                self.stats.claims_reclaimed += 1
        else:
            self.stats.claims_waited += 1
        return lease

    # -- disk LRU eviction ---------------------------------------------
    def _disk_entries(self) -> list[tuple[float, int, str, str]]:
        """All complete artifacts as ``(mtime, bytes, stage, digest)``."""
        out: list[tuple[float, int, str, str]] = []
        root = self.root
        if root is None or not root.is_dir():
            return out
        for stage_dir in root.iterdir():
            if not stage_dir.is_dir() or stage_dir.name.startswith("."):
                continue
            for json_path in stage_dir.glob("*.json"):
                digest = json_path.stem
                npz_path = json_path.with_suffix(".npz")
                try:
                    st = json_path.stat()
                    size = st.st_size + (
                        npz_path.stat().st_size if npz_path.exists() else 0
                    )
                except OSError:
                    continue
                out.append((st.st_mtime, size, stage_dir.name, digest))
        return out

    def _evict_lru(self, protect: set[str] | None = None) -> int:
        """Evict least-recently-used artifacts until the store fits the
        byte budget.  Each victim's digest lock is taken first (and an
        active claim skips it), so eviction never races a compute.

        Returns the number of artifacts evicted.
        """
        if self.budget_bytes is None or self.root is None:
            return 0
        protect = protect or set()
        # One evictor at a time per store root; someone else already at
        # it means the budget is being enforced — skip.
        evict_gate = FileLock(self.root / ".evict.lock")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            if not evict_gate.try_acquire():
                return 0
        except OSError as exc:
            self._maybe_degrade(exc, "evict")
            return 0
        evicted = 0
        try:
            entries = self._disk_entries()
            total = sum(size for _, size, _, _ in entries)
            if total <= self.budget_bytes:
                return 0
            entries.sort()  # oldest mtime first
            for _, size, stage, digest in entries:
                if total <= self.budget_bytes:
                    break
                if digest in protect:
                    continue
                base = self.root / stage / digest
                lock = FileLock(base.with_name(base.name + ".lock"))
                try:
                    if not lock.try_acquire():
                        continue  # actively claimed; not LRU after all
                except OSError:
                    continue
                try:
                    claim = read_claim(base.with_name(base.name + ".claim"))
                    if claim is not None and not claim_is_stale(
                        claim, self.claim_ttl
                    ):
                        continue
                    for p in (
                        base.with_suffix(".npz"),
                        base.with_suffix(".json"),
                    ):
                        try:
                            p.unlink()
                        except OSError:
                            pass
                    total -= size
                    evicted += 1
                    self.stats.evicted += 1
                finally:
                    lock.release()
        finally:
            evict_gate.release()
        return evicted

    # -- doctor --------------------------------------------------------
    def doctor(self, *, flush: bool = False) -> DoctorReport:
        """Inspect the disk layer: entry counts and sizes, quarantined
        corpses, stale vs active claims, leftover tmp files.

        With ``flush=True``, quarantined files, stale claim files and
        tmp leftovers are removed (artifacts themselves are never
        touched).
        """
        root = self.root if self.root is not None else default_cache_root()
        report = DoctorReport(root=root, budget_bytes=self.budget_bytes)
        if not root.is_dir():
            return report
        for mtime, size, stage, digest in self._disk_entries():
            report.entries += 1
            report.total_bytes += size
            n, b = report.per_stage.get(stage, (0, 0))
            report.per_stage[stage] = (n + 1, b + size)
        for stage_dir in root.iterdir():
            if not stage_dir.is_dir() or stage_dir.name == QUARANTINE_DIR:
                continue
            for claim_path in stage_dir.glob("*.claim"):
                claim = read_claim(claim_path)
                label = (
                    f"{stage_dir.name}/{claim_path.stem[:12]} "
                    f"(pid {claim and claim.get('pid')}, host "
                    f"{claim and claim.get('hostname')})"
                )
                if claim is None or claim_is_stale(claim, self.claim_ttl):
                    report.stale_claims.append(label)
                    if flush:
                        try:
                            claim_path.unlink()
                            report.flushed += 1
                        except OSError:
                            pass
                else:
                    report.active_claims.append(label)
            for tmp in stage_dir.glob("*.tmp*"):
                report.tmp_files.append(f"{stage_dir.name}/{tmp.name}")
                if flush:
                    try:
                        tmp.unlink()
                        report.flushed += 1
                    except OSError:
                        pass
        qdir = root / QUARANTINE_DIR
        if qdir.is_dir():
            for p in sorted(qdir.iterdir()):
                report.quarantined.append(p.name)
                if flush:
                    try:
                        p.unlink()
                        report.flushed += 1
                    except OSError:
                        pass
        return report


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"invalid {name} value {raw!r}; using {default:g}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default


# ---------------------------------------------------------------------
#: Process-wide store shared by the experiment wrappers and the CLI.
_default_store: ArtifactStore | None = None
_default_lock = threading.Lock()


def default_store() -> ArtifactStore:
    """The process-wide store.

    Memory-only by default; the disk layer switches on when
    ``REPRO_ARTIFACTS`` names a directory (the CLI's ``--artifacts``
    installs a disk-backed store explicitly via
    :func:`set_default_store`).
    """
    global _default_store
    with _default_lock:
        if _default_store is None:
            env = os.environ.get("REPRO_ARTIFACTS", "").strip()
            _default_store = ArtifactStore(root=env or None)
        return _default_store


def set_default_store(store: ArtifactStore | None) -> None:
    """Install (or with ``None`` reset) the process-wide store."""
    global _default_store
    with _default_lock:
        _default_store = store
