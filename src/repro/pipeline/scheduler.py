"""Execute a compiled :class:`~repro.pipeline.plan.StagePlan` (the
*schedule* half of the plan/schedule split).

:func:`execute_stage` is the single store protocol for running one
stage — memory LRU, disk read, cross-process claim, compute-and-publish
— factored out of the old ``Pipeline._run_stage`` body verbatim.  Both
the linear oracle path and the DAG scheduler call it, which is what
makes "bit-identical to the linear path" true by construction rather
than by test luck.

:class:`DagScheduler` walks a plan in dependency order with
critical-path-first dispatch (the plan's precomputed bottom levels)
over a bounded worker pool.  Each node moves through
pending → ready → running → done/failed; a failed node marks its
transitive dependents ``skipped``, so in a merged multi-job plan a
failure in one job's unshared suffix cannot touch jobs whose chains
avoid that node — failure isolation falls out of the graph structure.

``max_workers == 1`` runs a serial inline loop (no thread pool): this
is the path ``Pipeline.run`` takes for a single scenario, so the
refactor adds no threading overhead or ordering nondeterminism to the
interactive case.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .hashing import canonical_json, stage_digest
from .jobs import resolve_n_jobs
from .plan import StagePlan, StageTask
from .stages import STAGE_ORDER
from .store import ArtifactStore, default_store

__all__ = ["execute_stage", "NodeResult", "PlanResult", "DagScheduler"]


def execute_stage(
    store: ArtifactStore,
    name: str,
    config: Any,
    upstream_digests: Sequence[str],
    upstream_objects: Sequence[Any],
    *,
    digest: str | None = None,
) -> tuple[Any, str, str | None, float]:
    """Run one stage through the full store protocol.

    Returns ``(obj, digest, cache, wall_time)`` where ``cache`` is
    ``"memory"``, ``"disk"`` or ``None`` (computed fresh).  ``digest``
    may be passed when the caller already derived the content address
    (plan nodes carry it); it is re-derived otherwise.
    """
    from .stages import STAGES

    stage = STAGES[name]
    if digest is None:
        digest = stage_digest(
            stage.name, stage.version, config, upstream_digests
        )
    t0 = time.perf_counter()
    obj = store.memory_get(digest)
    cache: str | None = None
    if obj is not None:
        cache = "memory"
        store.stats.memory_hits += 1
    else:
        payload = store.disk_read(stage.name, digest)
        if payload is not None:
            meta = payload.sidecar.get("meta") or {}
            obj = stage.unpack(payload.arrays, meta, *upstream_objects)
            cache = "disk"
            store.stats.disk_hits += 1
        else:
            # Cross-process coordination: on a shared miss exactly
            # one worker wins the claim and computes; the others
            # block on the claim and read the published artifact.
            # Up to two reader rounds absorb a winner whose publish
            # turned out corrupt (quarantined on read).
            for _ in range(3):
                lease = store.claim(stage.name, digest)
                if lease is not None and lease.role == "reader":
                    lease.release()
                    payload = store.disk_read(stage.name, digest)
                    if payload is not None:
                        meta = payload.sidecar.get("meta") or {}
                        obj = stage.unpack(
                            payload.arrays, meta, *upstream_objects
                        )
                        cache = "disk"
                        store.stats.disk_hits += 1
                        break
                    continue  # published entry unreadable; re-claim
                try:
                    store.stats.misses += 1
                    obj = stage.compute(config, *upstream_objects)
                    wall = time.perf_counter() - t0
                    arrays, meta = stage.pack(obj)
                    store.disk_write(
                        stage.name,
                        digest,
                        arrays,
                        sidecar={
                            "config": canonical_json(config),
                            "upstream": list(upstream_digests),
                            "stage_version": stage.version,
                            "wall_time": wall,
                            "created": time.time(),
                            "meta": meta,
                        },
                        lease=lease,
                    )
                finally:
                    if lease is not None:
                        lease.release()
                break
            if obj is None:
                # Pathological: every published copy we were told
                # to read was corrupt.  Compute locally, uncached.
                store.stats.misses += 1
                obj = stage.compute(config, *upstream_objects)
        store.memory_put(digest, obj)
    return obj, digest, cache, time.perf_counter() - t0


@dataclass
class NodeResult:
    """Terminal state of one plan node after scheduling."""

    key: str
    stage: str
    #: "done" | "failed" | "skipped" (upstream failed) |
    #: "cancelled" (scheduler stopped before reaching it)
    state: str
    cache: str | None = None  # "memory" | "disk" | None, when done
    wall_time: float = 0.0
    error: BaseException | None = None
    jobs: tuple[int, ...] = ()


@dataclass
class PlanResult:
    """Everything the scheduler knows after executing a plan."""

    plan: StagePlan
    nodes: dict[str, NodeResult] = field(default_factory=dict)
    objects: dict[str, Any] = field(default_factory=dict)

    # -- per-job views -------------------------------------------------
    def job_state(self, job: int) -> str:
        """``"done"`` | ``"failed"`` | ``"cancelled"`` for one job."""
        state = "done"
        for key in self.plan.job_stages[job].values():
            node = self.nodes.get(key)
            if node is None or node.state == "cancelled":
                return "cancelled"
            if node.state == "failed":
                return "failed"
            if node.state == "skipped":
                state = "failed"
        return state

    def job_error(self, job: int) -> BaseException | None:
        """The causal exception for a failed job (the first failed or
        skipped node along its chain)."""
        for key in self.plan.job_stages[job].values():
            node = self.nodes.get(key)
            if node is not None and node.error is not None:
                return node.error
        return None

    def job_cache(self, job: int, key: str) -> str | None:
        """Provenance of node ``key`` *as seen by* ``job``.

        The job that computes a shared node reports the node's real
        store provenance; every other job riding it reports
        ``"shared"`` — prefix reuse inside the merged plan, distinct
        from a store hit.
        """
        node = self.nodes[key]
        if node.cache is not None:
            return node.cache
        return None if job == min(node.jobs, default=job) else "shared"

    # -- aggregates ----------------------------------------------------
    def stage_counters(self) -> dict[str, dict[str, int]]:
        """Per-stage execution accounting.

        ``job_stages`` is what N independent runs would have executed;
        ``nodes`` is what the merged plan scheduled; ``computed`` /
        ``memory`` / ``disk`` split how the scheduled nodes were
        served; ``shared`` counts the job-stage executions the merge
        elided entirely.
        """
        out: dict[str, dict[str, int]] = {}
        for name in STAGE_ORDER:
            out[name] = {
                "nodes": 0,
                "job_stages": 0,
                "computed": 0,
                "memory": 0,
                "disk": 0,
                "shared": 0,
            }
        for node in self.nodes.values():
            c = out[node.stage]
            c["nodes"] += 1
            c["job_stages"] += len(node.jobs)
            c["shared"] += max(0, len(node.jobs) - 1)
            if node.state != "done":
                continue
            if node.cache is None:
                c["computed"] += 1
            else:
                c[node.cache] += 1
        return {k: v for k, v in out.items() if v["nodes"]}

    @property
    def failed(self) -> bool:
        return any(n.state == "failed" for n in self.nodes.values())


class DagScheduler:
    """Dependency-ordered, critical-path-first plan executor.

    Parameters
    ----------
    store:
        Artifact store shared by every node (defaults to the
        process-wide store).
    max_workers:
        Bound on concurrently running nodes; resolved through the
        pipeline's standard ``n_jobs`` chain.  ``1`` executes inline.
    on_node:
        Optional callback invoked (from the scheduler's completion
        thread) with each terminal :class:`NodeResult` whose state is
        ``done`` or ``failed`` — the daemon's stage-level progress
        stream.  Exceptions from it are swallowed: observability must
        not kill the run.
    should_stop:
        Optional predicate polled before each dispatch; returning True
        cancels all not-yet-running nodes (drain support).
    """

    def __init__(
        self,
        store: ArtifactStore | None = None,
        *,
        max_workers: int | None = None,
        on_node: Callable[[NodeResult], None] | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> None:
        self.store = store if store is not None else default_store()
        self.max_workers = max(1, resolve_n_jobs(max_workers))
        self.on_node = on_node
        self.should_stop = should_stop

    # ------------------------------------------------------------------
    def _notify(self, result: NodeResult) -> None:
        if self.on_node is None:
            return
        try:
            self.on_node(result)
        except Exception:
            pass

    def _run_node(
        self, task: StageTask, objects: dict[str, Any]
    ) -> NodeResult:
        upstream = tuple(objects[d] for d in task.deps)
        try:
            obj, _, cache, wall = execute_stage(
                self.store,
                task.stage,
                task.config,
                task.deps,
                upstream,
                digest=task.key,
            )
        except BaseException as exc:  # noqa: BLE001 — recorded, not raised
            return NodeResult(
                key=task.key,
                stage=task.stage,
                state="failed",
                error=exc,
                jobs=task.jobs,
            )
        objects[task.key] = obj
        return NodeResult(
            key=task.key,
            stage=task.stage,
            state="done",
            cache=cache,
            wall_time=wall,
            jobs=task.jobs,
        )

    def _skip_dependents(
        self, plan: StagePlan, result: PlanResult, key: str
    ) -> None:
        """Mark every transitive dependent of a failed node skipped."""
        cause = result.nodes[key].error
        frontier = list(plan.dependents[key])
        while frontier:
            k = frontier.pop()
            if k in result.nodes:
                continue
            task = plan.nodes[k]
            result.nodes[k] = NodeResult(
                key=k,
                stage=task.stage,
                state="skipped",
                error=cause,
                jobs=task.jobs,
            )
            frontier.extend(plan.dependents[k])

    # ------------------------------------------------------------------
    def execute(self, plan: StagePlan) -> PlanResult:
        """Run every node of ``plan``; never raises for node failures
        (inspect the returned :class:`PlanResult`)."""
        result = PlanResult(plan=plan)
        objects = result.objects
        remaining_deps = {
            key: sum(1 for d in task.deps if d not in objects)
            for key, task in plan.nodes.items()
        }
        # Heap entries (-priority, -fanout, key): critical path first,
        # then widest sharing, then digest order — fully deterministic.
        ready: list[tuple[float, int, str]] = [
            (-plan.priority[k], -len(plan.nodes[k].jobs), k)
            for k, n in remaining_deps.items()
            if n == 0
        ]
        heapq.heapify(ready)

        def settle(node: NodeResult) -> None:
            result.nodes[node.key] = node
            if node.state == "done":
                for dep_key in plan.dependents[node.key]:
                    remaining_deps[dep_key] -= 1
                    if remaining_deps[dep_key] == 0:
                        heapq.heappush(
                            ready,
                            (
                                -plan.priority[dep_key],
                                -len(plan.nodes[dep_key].jobs),
                                dep_key,
                            ),
                        )
            else:
                self._skip_dependents(plan, result, node.key)
            self._notify(node)

        stopped = False
        if self.max_workers == 1:
            while ready:
                if self.should_stop is not None and self.should_stop():
                    stopped = True
                    break
                _, _, key = heapq.heappop(ready)
                settle(self._run_node(plan.nodes[key], objects))
        else:
            inflight: dict[Future[NodeResult], str] = {}
            with ThreadPoolExecutor(
                max_workers=self.max_workers
            ) as pool:
                while ready or inflight:
                    while ready and len(inflight) < self.max_workers:
                        if (
                            self.should_stop is not None
                            and self.should_stop()
                        ):
                            stopped = True
                            ready.clear()
                            break
                        _, _, key = heapq.heappop(ready)
                        fut = pool.submit(
                            self._run_node, plan.nodes[key], objects
                        )
                        inflight[fut] = key
                    if not inflight:
                        break
                    done, _ = wait(
                        inflight, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        inflight.pop(fut)
                        settle(fut.result())

        for key, task in plan.nodes.items():
            if key not in result.nodes:
                result.nodes[key] = NodeResult(
                    key=key,
                    stage=task.stage,
                    state="cancelled",
                    jobs=task.jobs,
                )
        if stopped:
            return result
        return result
