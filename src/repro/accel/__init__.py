"""Optional compiled kernel tier (Numba).

The three hottest scalar loops of the chain — FM gain updates, the HEM
greedy-tail matcher and the FLUSIM batched successor release — are
written as *pure nopython-compatible Python* in
:mod:`repro.accel.kernels`.  When Numba is installed they are wrapped
with ``numba.njit(cache=True)``; otherwise the very same functions run
interpreted.  Either way the kernels compute bit-identical results to
the always-on NumPy/list reference paths, so:

* without Numba nothing changes — the reference paths stay the
  default and the test suite can still exercise the kernel *logic*
  (interpreted) via ``compiled=True``;
* with Numba, setting ``REPRO_COMPILED=1`` switches the hot loops to
  the compiled tier; equivalence is enforced by differential tests
  and the fuzz harness.

Gating
------
``kernels_active(compiled)`` decides per call site:

* an explicit ``compiled=True/False`` argument always wins (``True``
  runs the kernels even without Numba — interpreted, slow, but
  bit-identical: this is what the equivalence tests use);
* else ``REPRO_COMPILED=1`` activates the tier *when Numba is
  importable* (silently stays on the reference path otherwise);
* ``REPRO_COMPILED=force`` activates the tier unconditionally.

Install Numba via the packaging extra: ``pip install repro[compiled]``.
"""

from __future__ import annotations

import os
from functools import cache

__all__ = ["is_available", "kernels_active", "jit_status", "maybe_jit"]


@cache
def is_available() -> bool:
    """True when Numba can be imported."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def kernels_active(compiled: bool | None = None) -> bool:
    """Resolve whether a call site should run the kernel tier."""
    if compiled is not None:
        return bool(compiled)
    env = os.environ.get("REPRO_COMPILED", "").strip().lower()
    if env == "force":
        return True
    if env in ("1", "true", "yes", "on"):
        return is_available()
    return False


def jit_status() -> str:
    """Provenance tag: ``"numba"`` when kernels are compiled,
    ``"interpreted"`` otherwise."""
    return "numba" if is_available() else "interpreted"


def maybe_jit(fn):
    """``numba.njit(cache=True)``-wrap ``fn`` when Numba is present;
    return ``fn`` unchanged otherwise (interpreted tier)."""
    if is_available():
        import numba

        return numba.njit(cache=True)(fn)
    return fn
