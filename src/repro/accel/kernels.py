"""Nopython-compatible kernels for the compiled tier.

Every function here is plain scalar Python over NumPy arrays — no
object-mode constructs — so it runs identically interpreted (no Numba)
or ``njit``-compiled.  Each kernel mirrors, operation for operation,
the float arithmetic of its reference path:

* :func:`fm_unit_pass` — one FM pass of the unit-edge-weight /
  one-hot-constraint fast path of :func:`repro.graph.refine.fm_refine`
  (gain buckets as array-backed FIFO linked lists, lazy deletion,
  hill-climb bookkeeping and tail rollback included);
* :func:`hem_tail_match` — the greedy tail matcher of
  :func:`repro.graph.coarsen.heavy_edge_matching` (candidates arrive
  pre-permuted so RNG consumption is unchanged);
* :func:`flusim_release` — the sequential per-edge successor release
  of the FLUSIM batched engine (releasing a duplicate edge at its
  last occurrence, exactly like the vectorized dedup-keep-last);
* :func:`contract_merge` — the parallel-edge merge of
  :func:`repro.graph.coarsen.contract`: a two-pass stable counting
  sort by ``(cdst, csrc)`` reproduces ``np.argsort(key,
  kind="stable")`` permutation for permutation, and the sequential
  run-sum then matches the reference ``np.bincount`` accumulation
  order exactly;
* :func:`fm_degrees` — the internal/external degree recomputation of
  :func:`repro.graph.refine._degrees`, accumulating per-vertex in CSR
  edge order — the same sequential order ``np.bincount`` uses.
"""

from __future__ import annotations

import numpy as np

from . import maybe_jit

__all__ = [
    "fm_unit_pass",
    "hem_tail_match",
    "flusim_release",
    "contract_merge",
    "fm_degrees",
]


@maybe_jit
def fm_unit_pass(
    xadj,
    adjncy,
    part,
    col,
    wcol,
    ideg,
    edeg,
    pw,
    inv,
    bverts,
    maxdeg,
    tol,
    cur_cut,
    budget,
    early_stop,
    locked,
    moves,
    touched,
    bhead,
    btail,
    nxt,
    slot_val,
):
    """One bucket-queue FM pass over a feasible one-hot bisection.

    Mutates ``part/ideg/edeg/pw/locked`` in place (rollback included);
    fills ``moves``/``touched`` prefixes.  ``bhead``/``btail`` must
    arrive filled with -1; ``nxt``/``slot_val`` are the FIFO node pool
    (capacity >= len(bverts) + len(adjncy)).

    Returns ``(cur_cut, n_moves, n_touched, best_prefix)``.
    """
    off = maxdeg
    gmax = -1
    nslots = 0
    for bi in range(bverts.shape[0]):
        v = bverts[bi]
        gi = int(edeg[v] - ideg[v]) + off
        slot_val[nslots] = v
        nxt[nslots] = -1
        if btail[gi] >= 0:
            nxt[btail[gi]] = nslots
        else:
            bhead[gi] = nslots
        btail[gi] = nslots
        nslots += 1
        if gi > gmax:
            gmax = gi

    best_cut = cur_cut
    n_moves = 0
    n_touched = 0
    best_prefix = 0
    while budget > 0:
        while gmax >= 0 and bhead[gmax] < 0:
            gmax -= 1
        if gmax < 0:
            break
        s0 = bhead[gmax]
        v = slot_val[s0]
        bhead[gmax] = nxt[s0]
        if nxt[s0] < 0:
            btail[gmax] = -1
        gain = edeg[v] - ideg[v]
        # Lazy deletion: stale gain, locked, or interior vertex.
        if locked[v] == 1 or gain + off != gmax or edeg[v] <= 0.0:
            continue
        src_p = part[v]
        dst_p = 1 - src_p
        c = col[v]
        w = wcol[v]
        # One-hot admissibility: only constraint c changes; the pass
        # starts feasible, so checking the two new ratios is exact.
        if (pw[src_p, c] - w) * inv[src_p, c] > tol or (
            pw[dst_p, c] + w
        ) * inv[dst_p, c] > tol:
            continue
        locked[v] = 1
        part[v] = dst_p
        pw[src_p, c] -= w
        pw[dst_p, c] += w
        cur_cut -= gain
        tmp = ideg[v]
        ideg[v] = edeg[v]
        edeg[v] = tmp
        moves[n_moves] = v
        n_moves += 1
        budget -= 1
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            touched[n_touched] = u
            n_touched += 1
            if part[u] == dst_p:
                ideg[u] += 1.0
                edeg[u] -= 1.0
            else:
                ideg[u] -= 1.0
                edeg[u] += 1.0
            if locked[u] == 0 and edeg[u] > 0.0:
                gi = int(edeg[u] - ideg[u]) + off
                slot_val[nslots] = u
                nxt[nslots] = -1
                if btail[gi] >= 0:
                    nxt[btail[gi]] = nslots
                else:
                    bhead[gi] = nslots
                btail[gi] = nslots
                nslots += 1
                if gi > gmax:
                    gmax = gi
        # Every reachable state is feasible, so "better" reduces to a
        # strict cut improvement (matches the reference's logic with
        # feasible_now == feasible_best == True).
        if cur_cut < best_cut - 1e-12:
            best_cut = cur_cut
            best_prefix = n_moves
        elif n_moves - best_prefix > early_stop:
            break

    # Roll back the tail beyond the best prefix.
    for mi in range(n_moves - 1, best_prefix - 1, -1):
        v = moves[mi]
        src_p = part[v]
        dst_p = 1 - src_p
        part[v] = dst_p
        c = col[v]
        w = wcol[v]
        pw[src_p, c] -= w
        pw[dst_p, c] += w
        cur_cut -= edeg[v] - ideg[v]
        tmp = ideg[v]
        ideg[v] = edeg[v]
        edeg[v] = tmp
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if part[u] == dst_p:
                ideg[u] += 1.0
                edeg[u] -= 1.0
            else:
                ideg[u] -= 1.0
                edeg[u] += 1.0
    return cur_cut, n_moves, n_touched, best_prefix


@maybe_jit
def hem_tail_match(xadj, adjncy, adjwgt, vwgt, match, cand_perm, multi):
    """Greedy heavy-edge tail matching over pre-permuted candidates.

    ``vwgt`` must be float64 (the caller upcasts narrowed graphs, as
    the reference does).  Mutates ``match`` in place.
    """
    ncon = vwgt.shape[1]
    for ci in range(cand_perm.shape[0]):
        v = cand_perm[ci]
        if match[v] != v:
            continue
        best = -1
        best_w = -np.inf
        best_spread = np.inf
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if match[u] != u or u == v:
                continue
            w = float(adjwgt[idx])
            if multi:
                if w > best_w + 1e-12:
                    cmax = -np.inf
                    cmin = np.inf
                    for cc in range(ncon):
                        s = vwgt[v, cc] + vwgt[u, cc]
                        if s > cmax:
                            cmax = s
                        if s < cmin:
                            cmin = s
                    best = u
                    best_w = w
                    best_spread = cmax - cmin
                elif w > best_w - 1e-12:
                    cmax = -np.inf
                    cmin = np.inf
                    for cc in range(ncon):
                        s = vwgt[v, cc] + vwgt[u, cc]
                        if s > cmax:
                            cmax = s
                        if s < cmin:
                            cmin = s
                    spread = cmax - cmin
                    if spread < best_spread:
                        best = u
                        best_w = w
                        best_spread = spread
            else:
                if w > best_w:
                    best = u
                    best_w = w
        if best >= 0:
            match[v] = best
            match[best] = v
    return 0


@maybe_jit
def contract_merge(csrc, cdst, w, nc, gsrc, gdst, gw, deg):
    """Merge the mapped coarse edge list ``(csrc, cdst, w)``.

    Sorts the edges with a two-pass stable counting sort — by ``cdst``
    first, then by ``csrc`` — which yields exactly the permutation of
    ``np.argsort(csrc * nc + cdst, kind="stable")``, then sums each
    parallel-edge run sequentially in sorted order (the same float64
    accumulation order as the reference ``np.bincount`` over group
    ids).  Fills prefixes of ``gsrc``/``gdst``/``gw`` (capacity >=
    ``len(csrc)``), adds per-source merged-edge counts into ``deg``
    (length ``nc``, zero-initialized) and returns the merged count.

    ``w`` must be float64 (the caller upcasts narrowed graphs, exactly
    as ``np.bincount`` would).
    """
    m = csrc.shape[0]
    # Pass 1: stable counting sort by destination.
    cnt = np.zeros(nc + 1, dtype=np.int64)
    for i in range(m):
        cnt[cdst[i] + 1] += 1
    for c in range(nc):
        cnt[c + 1] += cnt[c]
    order1 = np.empty(m, dtype=np.int64)
    for i in range(m):
        d = cdst[i]
        order1[cnt[d]] = i
        cnt[d] += 1
    # Pass 2: stable counting sort by source over the pass-1 order.
    cnt2 = np.zeros(nc + 1, dtype=np.int64)
    for i in range(m):
        cnt2[csrc[i] + 1] += 1
    for c in range(nc):
        cnt2[c + 1] += cnt2[c]
    order = np.empty(m, dtype=np.int64)
    for k in range(m):
        i = order1[k]
        s = csrc[i]
        order[cnt2[s]] = i
        cnt2[s] += 1
    # Run-sum of parallel edges in sorted order.
    ng = 0
    prev_s = np.int64(-1)
    prev_d = np.int64(-1)
    for k in range(m):
        i = order[k]
        s = csrc[i]
        d = cdst[i]
        if ng > 0 and s == prev_s and d == prev_d:
            gw[ng - 1] += w[i]
        else:
            gsrc[ng] = s
            gdst[ng] = d
            gw[ng] = w[i]
            deg[s] += 1
            ng += 1
            prev_s = s
            prev_d = d
    return ng


@maybe_jit
def fm_degrees(xadj, adjncy, adjwgt, part, ideg, edeg):
    """Internal/external degrees of every vertex w.r.t. a bisection.

    Accumulates into zero-initialized float64 ``ideg``/``edeg`` in CSR
    edge order — the same sequential order as the reference
    ``np.bincount`` over the edge list, so the sums are bit-identical.
    ``adjwgt`` must be float64 (the caller upcasts, as bincount does).
    """
    n = xadj.shape[0] - 1
    for v in range(n):
        pv = part[v]
        for idx in range(xadj[v], xadj[v + 1]):
            if part[adjncy[idx]] == pv:
                ideg[v] += adjwgt[idx]
            else:
                edeg[v] += adjwgt[idx]
    return 0


@maybe_jit
def flusim_release(indeg, succ, out):
    """Sequential in-degree decrement over one successor slice.

    Appends every task whose in-degree reaches zero to ``out`` (at its
    *last* duplicate occurrence — identical to the batched engine's
    dedup-keep-last).  Returns the released count.
    """
    cnt = 0
    for si in range(succ.shape[0]):
        u = succ[si]
        indeg[u] -= 1
        if indeg[u] == 0:
            out[cnt] = u
            cnt += 1
    return cnt
