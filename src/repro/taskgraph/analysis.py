"""Task-graph analytics used by the experiments.

Computes the per-process/per-subiteration workload matrices behind
Figs. 7 and 10 of the paper, and summary histograms of task
composition.
"""

from __future__ import annotations

import numpy as np

from ..partitioning.decomposition import DomainDecomposition
from ..temporal.levels import operating_costs
from .dag import TaskDAG

__all__ = [
    "work_by_process_level",
    "work_by_process_subiteration",
    "task_count_by_subiteration",
    "cells_by_domain_level",
]


def work_by_process_level(dag: TaskDAG, num_processes: int) -> np.ndarray:
    """Work (summed task cost) per (process, phase level).

    This is Fig. 7a / Fig. 10a: the operating-cost composition of each
    process's workload, broken down by temporal level.
    """
    t = dag.tasks
    nlev = int(t.phase_tau.max()) + 1 if t.num_tasks else 1
    out = np.zeros((num_processes, nlev), dtype=np.float64)
    np.add.at(out, (t.process, t.phase_tau), t.cost)
    return out


def work_by_process_subiteration(
    dag: TaskDAG, num_processes: int
) -> np.ndarray:
    """Work per (process, subiteration) — Fig. 7b / Fig. 10b.

    With SC_OC some processes concentrate nearly all their work in the
    first subiteration; MC_TL spreads every row evenly.
    """
    t = dag.tasks
    nsub = int(t.subiteration.max()) + 1 if t.num_tasks else 1
    out = np.zeros((num_processes, nsub), dtype=np.float64)
    np.add.at(out, (t.process, t.subiteration), t.cost)
    return out


def task_count_by_subiteration(dag: TaskDAG) -> np.ndarray:
    """Number of tasks per subiteration."""
    t = dag.tasks
    nsub = int(t.subiteration.max()) + 1 if t.num_tasks else 0
    return np.bincount(t.subiteration, minlength=nsub)


def cells_by_domain_level(
    tau: np.ndarray, decomp: DomainDecomposition
) -> np.ndarray:
    """Cell counts per (domain, temporal level).

    The quantity MC_TL balances directly; for SC_OC only the
    cost-weighted row sums are balanced.
    """
    tau = np.asarray(tau, dtype=np.int64)
    nlev = int(tau.max()) + 1
    out = np.zeros((decomp.num_domains, nlev), dtype=np.int64)
    np.add.at(out, (decomp.domain, tau), 1)
    return out


def operating_cost_by_process_level(
    tau: np.ndarray, decomp: DomainDecomposition
) -> np.ndarray:
    """Operating cost per (process, temporal level) — the exact
    quantity plotted in the paper's Fig. 7a (cell-based, independent of
    task costs)."""
    tau = np.asarray(tau, dtype=np.int64)
    nlev = int(tau.max()) + 1
    cost = operating_costs(tau)
    out = np.zeros((decomp.num_processes, nlev), dtype=np.float64)
    np.add.at(out, (decomp.cell_process, tau), cost)
    return out
