"""Task DAG container and graph algorithms.

Holds the task table plus the dependency structure in CSR form (both
directions), and provides the DAG analytics the experiments need:
topological order, critical path, width profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .task import TaskArrays

__all__ = ["TaskDAG", "canonical_edges"]


def canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Canonical form of an edge array: unique ``(pred, succ)`` rows in
    lexicographic order.  Two generators that emit the same dependency
    *set* in different orders produce equal canonical arrays — the
    comparison contract between the vectorized generator and the seed
    oracle in :mod:`repro.taskgraph.reference`."""
    edges = np.ascontiguousarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(edges) == 0:
        return edges
    return np.unique(edges, axis=0)


def _csr_from_pairs(
    n: int, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    xadj = np.zeros(n + 1, dtype=np.int64)
    np.add.at(xadj[1:], src, 1)
    np.cumsum(xadj, out=xadj)
    return xadj, dst


@dataclass
class TaskDAG:
    """A task graph: tasks plus dependency edges.

    ``edges`` is a ``(E, 2)`` array of ``(predecessor, successor)``
    pairs.  Successor/predecessor CSR adjacency is built lazily.
    """

    tasks: TaskArrays
    edges: np.ndarray
    _succ: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )
    _pred: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.edges = np.ascontiguousarray(self.edges, dtype=np.int64).reshape(
            -1, 2
        )

    @property
    def num_tasks(self) -> int:
        """Number of tasks."""
        return self.tasks.num_tasks

    @property
    def num_edges(self) -> int:
        """Number of dependency edges."""
        return len(self.edges)

    # ------------------------------------------------------------------
    def successors_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency predecessor → successors."""
        if self._succ is None:
            self._succ = _csr_from_pairs(
                self.num_tasks, self.edges[:, 0], self.edges[:, 1]
            )
        return self._succ

    def predecessors_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency successor → predecessors."""
        if self._pred is None:
            self._pred = _csr_from_pairs(
                self.num_tasks, self.edges[:, 1], self.edges[:, 0]
            )
        return self._pred

    def in_degrees(self) -> np.ndarray:
        """Number of predecessors per task."""
        deg = np.zeros(self.num_tasks, dtype=np.int64)
        if len(self.edges):
            np.add.at(deg, self.edges[:, 1], 1)
        return deg

    # ------------------------------------------------------------------
    def topological_order(self) -> np.ndarray:
        """A topological order (Kahn); raises on cycles."""
        n = self.num_tasks
        indeg = self.in_degrees()
        sx, sa = self.successors_csr()
        out = np.empty(n, dtype=np.int64)
        head = 0
        tail = 0
        ready = np.flatnonzero(indeg == 0)
        out[: len(ready)] = ready
        tail = len(ready)
        while head < tail:
            v = out[head]
            head += 1
            for u in sa[sx[v] : sx[v + 1]]:
                indeg[u] -= 1
                if indeg[u] == 0:
                    out[tail] = u
                    tail += 1
        if tail != n:
            raise ValueError("task graph contains a cycle")
        return out

    def critical_path(self) -> tuple[float, np.ndarray]:
        """Critical-path length and per-task *bottom levels*.

        The bottom level of a task is the longest cost-weighted path
        from the task (inclusive) to any sink — the classic HEFT
        upward-rank priority.  The critical-path length is the maximum
        bottom level, a lower bound on any schedule's makespan.
        """
        order = self.topological_order()
        sx, sa = self.successors_csr()
        cost = self.tasks.cost
        bl = cost.astype(np.float64).copy()
        for v in order[::-1]:
            s = sa[sx[v] : sx[v + 1]]
            if len(s):
                bl[v] = cost[v] + bl[s].max()
        return (float(bl.max()) if len(bl) else 0.0), bl

    def width_profile(self) -> np.ndarray:
        """Number of tasks per DAG depth level (parallelism profile)."""
        order = self.topological_order()
        px, pa = self.predecessors_csr()
        depth = np.zeros(self.num_tasks, dtype=np.int64)
        for v in order:
            p = pa[px[v] : px[v + 1]]
            if len(p):
                depth[v] = depth[p].max() + 1
        return np.bincount(depth) if len(depth) else np.zeros(0, dtype=np.int64)

    def validate(self) -> None:
        """Raise on malformed edges or cycles."""
        if len(self.edges):
            if self.edges.min() < 0 or self.edges.max() >= self.num_tasks:
                raise ValueError("edge endpoint out of range")
            if np.any(self.edges[:, 0] == self.edges[:, 1]):
                raise ValueError("self-dependency")
        self.topological_order()

    def canonical_edges(self) -> np.ndarray:
        """The edge set in canonical form (see
        :func:`canonical_edges`)."""
        return canonical_edges(self.edges)

    def total_work(self) -> float:
        """Sum of all task costs (invariant across partitionings —
        'the total amount of work is independent of partitioning
        strategy', paper §VI)."""
        return float(self.tasks.cost.sum())
