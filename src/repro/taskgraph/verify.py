"""Task-graph invariant checker.

:func:`verify_dag` audits a generated :class:`~repro.taskgraph.dag.TaskDAG`
against the structural invariants that Algorithm 1 guarantees by
construction — so a regression in the generator (or a corrupted DAG
after checkpoint restore) is caught *before* it silently skews every
downstream experiment:

* **structure** — edge endpoints in range, no self-dependencies, every
  edge points forward in generation order (``pred < succ``), which also
  proves acyclicity; dependency subiterations never decrease along an
  edge.
* **coverage** (needs ``mesh``/``tau``/``decomp``) — every cell and
  face of an active temporal level is processed *exactly once* per
  (subiteration, phase) sweep: the per-phase ``num_objects`` sums must
  equal the level-class population counts, once per sweep for the Euler
  scheme and twice (predictor + corrector / stage-1 + stage-2 faces)
  for Heun.

The checker returns a list of human-readable violations (empty when the
DAG is sound) and raises :class:`ValueError` under ``strict=True`` —
the driver wires it behind a ``debug_verify_dag`` flag.
"""

from __future__ import annotations

import numpy as np

from ..temporal.levels import face_levels
from ..temporal.scheme import active_levels, num_subiterations
from .dag import TaskDAG, canonical_edges
from .task import ObjectType

__all__ = ["verify_dag", "dag_differences"]

#: Task-array fields compared by :func:`dag_differences`.
_TASK_FIELDS = (
    "subiteration",
    "phase_tau",
    "obj_type",
    "locality",
    "domain",
    "process",
    "num_objects",
    "cost",
    "stage",
)


def dag_differences(got: TaskDAG, want: TaskDAG) -> list[str]:
    """Compare two task DAGs under the fast-vs-reference contract.

    Task arrays must be **bit-identical** (same dtype, same values,
    same order) and the dependency sets equal after canonicalization
    (:func:`~repro.taskgraph.dag.canonical_edges` — edge *order* is
    implementation-defined).  Returns human-readable differences;
    empty means the DAGs are equivalent.
    """
    out: list[str] = []
    if got.num_tasks != want.num_tasks:
        out.append(f"task count {got.num_tasks} != {want.num_tasks}")
        return out
    for f in _TASK_FIELDS:
        a = getattr(got.tasks, f)
        b = getattr(want.tasks, f)
        if a.dtype != b.dtype:
            out.append(f"tasks.{f} dtype {a.dtype} != {b.dtype}")
        elif not np.array_equal(a, b):
            bad = int(np.flatnonzero(a != b)[0])
            out.append(
                f"tasks.{f} differs first at task {bad}: "
                f"{a[bad]!r} != {b[bad]!r}"
            )
    ea, eb = canonical_edges(got.edges), canonical_edges(want.edges)
    if ea.shape != eb.shape:
        out.append(
            f"canonical edge count {len(ea)} != {len(eb)}"
        )
    elif not np.array_equal(ea, eb):
        bad = int(np.flatnonzero(np.any(ea != eb, axis=1))[0])
        out.append(
            f"canonical edges differ first at row {bad}: "
            f"{ea[bad].tolist()} != {eb[bad].tolist()}"
        )
    return out

#: Sweeps per (subiteration, phase) for each scheme: Euler runs one
#: face and one cell sweep; Heun runs stage-1/stage-2 faces and
#: predictor/corrector cells.
_SWEEPS = {"euler": 1, "heun": 2}


def _structural_violations(dag: TaskDAG) -> list[str]:
    out: list[str] = []
    n = dag.num_tasks
    edges = dag.edges
    if len(edges) == 0:
        return out
    if edges.min() < 0 or edges.max() >= n:
        out.append(
            f"edge endpoints out of range [0, {n}): "
            f"min={edges.min()}, max={edges.max()}"
        )
        return out  # the remaining vectorized checks would misindex
    self_dep = np.flatnonzero(edges[:, 0] == edges[:, 1])
    if len(self_dep):
        out.append(f"{len(self_dep)} self-dependency edge(s)")
    backward = np.flatnonzero(edges[:, 0] >= edges[:, 1])
    if len(backward):
        out.append(
            f"{len(backward)} edge(s) violate generation order "
            "(pred >= succ); DAG may be cyclic"
        )
        try:
            dag.topological_order()
        except ValueError:
            out.append("task graph contains a cycle")
    sub = dag.tasks.subiteration
    decreasing = np.flatnonzero(sub[edges[:, 0]] > sub[edges[:, 1]])
    if len(decreasing):
        out.append(
            f"{len(decreasing)} edge(s) have a predecessor in a later "
            "subiteration than the successor"
        )
    return out


def _coverage_violations(
    dag: TaskDAG,
    mesh,
    tau: np.ndarray,
    *,
    scheme: str,
    iterations: int,
) -> list[str]:
    out: list[str] = []
    tau = np.asarray(tau, dtype=np.int64)
    tau_max = int(tau.max()) if len(tau) else 0
    nlev = tau_max + 1
    nsub = num_subiterations(tau_max)
    sweeps = _SWEEPS[scheme]

    cell_pop = np.bincount(tau, minlength=nlev)
    face_pop = np.bincount(
        face_levels(mesh, tau).astype(np.int64), minlength=nlev
    )

    t = dag.tasks
    is_cell = t.obj_type == int(ObjectType.CELL)
    # Per (subiteration, phase, kind) object totals in one vectorized
    # pass: dense key = ((sub * nlev) + phase) * 2 + kind.
    key = (
        t.subiteration.astype(np.int64) * nlev + t.phase_tau
    ) * 2 + is_cell
    total_sub = iterations * nsub
    totals = np.bincount(
        key, weights=t.num_objects.astype(np.float64),
        minlength=total_sub * nlev * 2,
    )

    expected_sub = set(range(total_sub))
    seen_sub = set(np.unique(t.subiteration).tolist())
    if seen_sub - expected_sub:
        out.append(
            f"tasks reference unexpected subiteration(s) "
            f"{sorted(seen_sub - expected_sub)} (expected [0, {total_sub}))"
        )

    for s in range(total_sub):
        for lvl in active_levels(s % nsub, tau_max):
            for kind, pop, name in (
                (1, cell_pop[lvl], "cell"),
                (0, face_pop[lvl], "face"),
            ):
                got = totals[(s * nlev + lvl) * 2 + kind]
                want = float(pop * sweeps)
                if got != want:
                    out.append(
                        f"subiteration {s} phase τ={lvl}: {name} objects "
                        f"processed {got:g} time(s), expected {want:g} "
                        f"({pop} object(s) × {sweeps} sweep(s))"
                    )
        # Inactive levels must produce no tasks at all.
        active = set(active_levels(s % nsub, tau_max))
        for lvl in range(nlev):
            if lvl in active:
                continue
            row = totals[(s * nlev + lvl) * 2 : (s * nlev + lvl) * 2 + 2]
            if row.any():
                out.append(
                    f"subiteration {s} has tasks for inactive phase τ={lvl}"
                )
    return out


def verify_dag(
    dag: TaskDAG,
    mesh=None,
    tau: np.ndarray | None = None,
    *,
    scheme: str = "euler",
    iterations: int = 1,
    strict: bool = False,
) -> list[str]:
    """Check a task DAG against the generator's invariants.

    Parameters
    ----------
    dag:
        The task graph to audit.
    mesh, tau:
        When both are given, the exactly-once coverage checks run in
        addition to the structural ones (they need the cell/face
        populations per temporal level).
    scheme, iterations:
        Must match the :func:`~repro.taskgraph.generation.generate_task_graph`
        call that produced ``dag``.
    strict:
        Raise :class:`ValueError` listing the violations instead of
        returning them.

    Returns
    -------
    List of human-readable violations; empty when every invariant
    holds.
    """
    if scheme not in _SWEEPS:
        raise ValueError(f"unknown scheme {scheme!r}")
    violations = _structural_violations(dag)
    if mesh is not None and tau is not None:
        violations += _coverage_violations(
            dag, mesh, tau, scheme=scheme, iterations=iterations
        )
    if violations and strict:
        raise ValueError(
            "task DAG violates generator invariants: "
            + "; ".join(violations)
        )
    return violations
