"""Task-graph generation (Algorithm 1), DAG structure and analytics."""

from .analysis import (
    cells_by_domain_level,
    task_count_by_subiteration,
    work_by_process_level,
    work_by_process_subiteration,
)
from .dag import TaskDAG
from .generation import classify_objects, generate_task_graph
from .task import Locality, ObjectType, TaskArrays, TaskView
from .verify import verify_dag

__all__ = [
    "verify_dag",
    "TaskDAG",
    "TaskArrays",
    "TaskView",
    "ObjectType",
    "Locality",
    "generate_task_graph",
    "classify_objects",
    "work_by_process_level",
    "work_by_process_subiteration",
    "task_count_by_subiteration",
    "cells_by_domain_level",
]
