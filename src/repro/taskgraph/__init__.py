"""Task-graph generation (Algorithm 1), DAG structure and analytics."""

from .analysis import (
    cells_by_domain_level,
    task_count_by_subiteration,
    work_by_process_level,
    work_by_process_subiteration,
)
from .dag import TaskDAG, canonical_edges
from .generation import classify_objects, generate_task_graph
from .reference import generate_task_graph_ref
from .task import Locality, ObjectType, TaskArrays, TaskView
from .verify import dag_differences, verify_dag

__all__ = [
    "verify_dag",
    "dag_differences",
    "canonical_edges",
    "generate_task_graph_ref",
    "TaskDAG",
    "TaskArrays",
    "TaskView",
    "ObjectType",
    "Locality",
    "generate_task_graph",
    "classify_objects",
    "work_by_process_level",
    "work_by_process_subiteration",
    "task_count_by_subiteration",
    "cells_by_domain_level",
]
