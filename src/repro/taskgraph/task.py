"""Task records of the solver's task graph.

A task processes all *objects* (cells or faces) of one temporal level
within one domain, split by locality (internal vs external) — exactly
the granularity of the paper's Algorithm 1.  Task metadata is stored as
parallel NumPy arrays in :class:`TaskArrays` for the simulator's hot
loops, with a thin record view for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

__all__ = ["ObjectType", "Locality", "TaskArrays", "TaskView"]


class ObjectType(IntEnum):
    """What a task processes: flux faces or cell updates."""

    FACE = 0
    CELL = 1


class Locality(IntEnum):
    """Internal objects touch only the owning domain; external objects
    border another domain (their tasks feed inter-process
    communication)."""

    INTERNAL = 0
    EXTERNAL = 1


@dataclass
class TaskArrays:
    """Structure-of-arrays task table.

    All arrays share the task index.  ``cost`` is in abstract work
    units (≈ object count × unit cost); the simulator turns it into
    time.  ``stage`` distinguishes the Heun scheme's two sweeps
    (1 = stage-1 faces / predictor cells, 2 = stage-2 faces /
    corrector cells); forward-Euler task graphs use stage 1
    throughout.
    """

    subiteration: np.ndarray  # (T,) int32
    phase_tau: np.ndarray  # (T,) int32 — the τ of the task's phase
    obj_type: np.ndarray  # (T,) int8  — ObjectType
    locality: np.ndarray  # (T,) int8  — Locality
    domain: np.ndarray  # (T,) int32
    process: np.ndarray  # (T,) int32 — owning MPI process
    num_objects: np.ndarray  # (T,) int64
    cost: np.ndarray  # (T,) float64
    stage: np.ndarray | None = None  # (T,) int8 — integration stage

    def __post_init__(self) -> None:
        if self.stage is None:
            self.stage = np.ones(len(self.cost), dtype=np.int8)

    @property
    def num_tasks(self) -> int:
        """Number of tasks."""
        return len(self.cost)

    def view(self, t: int) -> "TaskView":
        """Record view of task ``t``."""
        return TaskView(
            index=t,
            subiteration=int(self.subiteration[t]),
            phase_tau=int(self.phase_tau[t]),
            obj_type=ObjectType(int(self.obj_type[t])),
            locality=Locality(int(self.locality[t])),
            domain=int(self.domain[t]),
            process=int(self.process[t]),
            num_objects=int(self.num_objects[t]),
            cost=float(self.cost[t]),
            stage=int(self.stage[t]),
        )


@dataclass(frozen=True)
class TaskView:
    """One task as a readable record (see :class:`TaskArrays`)."""

    index: int
    subiteration: int
    phase_tau: int
    obj_type: ObjectType
    locality: Locality
    domain: int
    process: int
    num_objects: int
    cost: float
    stage: int = 1

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"T{self.index}[s={self.subiteration} τ={self.phase_tau} "
            f"{self.obj_type.name}{self.stage}/{self.locality.name} "
            f"d={self.domain} p={self.process} n={self.num_objects}]"
        )
