"""Seed (pre-vectorization) task-graph generation, kept as an oracle.

The vectorized :func:`repro.taskgraph.generation.generate_task_graph`
replaced this module's nested Python loops (per-domain appends inside
every phase of every subiteration).  The original generation loop is
kept here verbatim for two purposes:

* **differential oracle** — tests and the fuzz harness assert the fast
  path produces *bit-identical* task arrays and the same canonical
  edge set on the same inputs (the proven pattern from
  :mod:`repro.graph.reference`);
* **perf tracking** — the benchmark harness
  (:mod:`repro.perf.taskgraph`) times fast vs. reference on the same
  inputs and records the speedup in ``BENCH_taskgraph.json``.

This function is *not* used by the library at runtime.  The shared
object classification and group-relation setup (already vectorized in
the seed) is imported from :mod:`repro.taskgraph.generation`; only the
generation loop lives here.
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh
from ..partitioning.decomposition import DomainDecomposition
from ..temporal.scheme import active_levels, num_subiterations
from .dag import TaskDAG
from .generation import _group_ids, _group_relations, classify_objects
from .task import Locality, ObjectType, TaskArrays

__all__ = ["generate_task_graph_ref"]


def generate_task_graph_ref(
    mesh: Mesh,
    tau: np.ndarray,
    decomp: DomainDecomposition,
    *,
    cell_unit_cost: float = 1.0,
    face_unit_cost: float = 1.0,
    level_cost_factor: np.ndarray | None = None,
    scheme: str = "euler",
    iterations: int = 1,
) -> TaskDAG:
    """Seed implementation of Algorithm 1 (see
    :func:`repro.taskgraph.generation.generate_task_graph` for the
    parameter documentation)."""
    if scheme not in ("euler", "heun"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    tau = np.asarray(tau, dtype=np.int32)
    info = classify_objects(mesh, tau, decomp)
    ndom = decomp.num_domains
    tau_max = int(tau.max()) if len(tau) else 0
    nlev = tau_max + 1
    if level_cost_factor is None:
        level_cost_factor = np.ones(nlev, dtype=np.float64)
    level_cost_factor = np.asarray(level_cost_factor, dtype=np.float64)
    if len(level_cost_factor) < nlev:
        raise ValueError("level_cost_factor too short")

    # --- group tables --------------------------------------------------
    cgid = _group_ids(
        info["cell_domain"], info["cell_level"], info["cell_locality"], ndom, nlev
    )
    fgid = _group_ids(
        info["face_domain"], info["face_level"], info["face_locality"], ndom, nlev
    )
    ngroups = ndom * nlev * 2
    cell_counts = np.bincount(cgid, minlength=ngroups).astype(np.int64)
    face_counts = np.bincount(fgid, minlength=ngroups).astype(np.int64)

    # --- group relations ------------------------------------------------
    f2c_x, f2c_a, c2f_x, c2f_a = _group_relations(
        mesh, fgid, cgid, ngroups
    )

    # --- generation loop --------------------------------------------------
    nsub = num_subiterations(tau_max)
    dp = decomp.domain_process

    t_sub: list[int] = []
    t_tau: list[int] = []
    t_type: list[int] = []
    t_loc: list[int] = []
    t_dom: list[int] = []
    t_proc: list[int] = []
    t_nobj: list[int] = []
    t_cost: list[float] = []
    t_stage: list[int] = []
    e_src: list[int] = []
    e_dst: list[int] = []

    # Last-writer tables.  Euler uses (last_cell, last_face1); Heun
    # additionally tracks stage-2 faces and predictor cell writes.
    last_cell = np.full(ngroups, -1, dtype=np.int64)  # corrector / update
    last_face1 = np.full(ngroups, -1, dtype=np.int64)
    last_face2 = np.full(ngroups, -1, dtype=np.int64)
    last_pred = np.full(ngroups, -1, dtype=np.int64)

    def add_task(s, tph, typ, loc, d, nobj, cost, stage) -> int:
        tid = len(t_cost)
        t_sub.append(s)
        t_tau.append(tph)
        t_type.append(int(typ))
        t_loc.append(int(loc))
        t_dom.append(d)
        t_proc.append(int(dp[d]))
        t_nobj.append(int(nobj))
        t_cost.append(float(cost))
        t_stage.append(stage)
        return tid

    def add_deps(tid: int, preds: set[int]) -> None:
        for p in preds:
            if p >= 0 and p != tid:
                e_src.append(p)
                e_dst.append(tid)

    def face_sweep(s: int, tph: int, stage: int) -> None:
        for d in range(ndom):
            base = (d * nlev + tph) * 2
            for loc in (Locality.EXTERNAL, Locality.INTERNAL):
                gid = base + int(loc)
                nobj = face_counts[gid]
                if nobj == 0:
                    continue
                tid = add_task(
                    s,
                    tph,
                    ObjectType.FACE,
                    loc,
                    d,
                    nobj,
                    nobj * face_unit_cost * level_cost_factor[tph],
                    stage,
                )
                table = last_face1 if stage == 1 else last_face2
                preds = {int(table[gid])}
                for cg in f2c_a[f2c_x[gid] : f2c_x[gid + 1]]:
                    # Stage 1 reads U (last corrector); stage 2 reads
                    # U* (last predictor) and must also follow the
                    # corrector that cleared acc2 (anti-dependency).
                    preds.add(int(last_cell[cg]))
                    if stage == 2:
                        preds.add(int(last_pred[cg]))
                add_deps(tid, preds)
                table[gid] = tid

    def cell_sweep(s: int, tph: int, kind: str) -> None:
        """kind ∈ {'update', 'predictor', 'corrector'}."""
        stage = 1 if kind != "corrector" else 2
        for d in range(ndom):
            base = (d * nlev + tph) * 2
            for loc in (Locality.EXTERNAL, Locality.INTERNAL):
                gid = base + int(loc)
                nobj = cell_counts[gid]
                if nobj == 0:
                    continue
                tid = add_task(
                    s,
                    tph,
                    ObjectType.CELL,
                    loc,
                    d,
                    nobj,
                    nobj * cell_unit_cost * level_cost_factor[tph],
                    stage,
                )
                preds = {int(last_cell[gid])}
                if kind != "update":
                    preds.add(int(last_pred[gid]))
                for fg in c2f_a[c2f_x[gid] : c2f_x[gid + 1]]:
                    preds.add(int(last_face1[fg]))
                    if kind == "corrector":
                        preds.add(int(last_face2[fg]))
                    elif kind == "predictor":
                        # WAR: the new predictor overwrites U*, which
                        # earlier stage-2 face tasks may still read.
                        preds.add(int(last_face2[fg]))
                add_deps(tid, preds)
                if kind == "predictor":
                    last_pred[gid] = tid
                else:
                    last_cell[gid] = tid

    for it in range(iterations):
        for s_local in range(nsub):
            s = it * nsub + s_local
            for tph in active_levels(s_local, tau_max):
                if scheme == "euler":
                    face_sweep(s, tph, 1)
                    cell_sweep(s, tph, "update")
                else:
                    face_sweep(s, tph, 1)
                    cell_sweep(s, tph, "predictor")
                    face_sweep(s, tph, 2)
                    cell_sweep(s, tph, "corrector")

    tasks = TaskArrays(
        subiteration=np.array(t_sub, dtype=np.int32),
        phase_tau=np.array(t_tau, dtype=np.int32),
        obj_type=np.array(t_type, dtype=np.int8),
        locality=np.array(t_loc, dtype=np.int8),
        domain=np.array(t_dom, dtype=np.int32),
        process=np.array(t_proc, dtype=np.int32),
        num_objects=np.array(t_nobj, dtype=np.int64),
        cost=np.array(t_cost, dtype=np.float64),
        stage=np.array(t_stage, dtype=np.int8),
    )
    edges = (
        np.stack(
            [
                np.array(e_src, dtype=np.int64),
                np.array(e_dst, dtype=np.int64),
            ],
            axis=1,
        )
        if e_src
        else np.empty((0, 2), dtype=np.int64)
    )
    return TaskDAG(tasks=tasks, edges=edges)
