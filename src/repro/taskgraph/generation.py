"""Task graph generation — the paper's Algorithm 1.

For every subiteration, the active temporal levels are traversed in
descending order (*phases*); each phase generates, per domain, a task
for the **external** then the **internal** objects of its level, first
for faces then for cells — provided the object set is non-empty.

Note on fidelity: Algorithm 1's set-builder line reads
``t_lvl(x) ≤ τ``, but the surrounding text and Fig. 8 make clear each
phase processes the objects *of its level* (distinct red/yellow/blue
tasks per τ); we implement equality, which is also what makes MC_TL
produce finer-grained tasks (paper §VI).

Dependencies are derived from last-writer tables over *object groups*
(a group = all cells or faces sharing (domain, level, locality)):

* a **face task** reads the most recent values of its adjacent cell
  groups (flux stencil) and write-after-write orders it after the
  previous task of its own group;
* a **cell task** reads the most recent fluxes of every face group
  bounding its cells and its own previous update.

Because tasks are generated in execution order (subiterations
ascending, phases descending, faces before cells, external before
internal), the last-writer tables automatically resolve the subtle
cases — e.g. a face task of level τ reads its level-τ neighbour cells'
values from subiteration ``s − 2**τ``, not from the cell task that
follows it in the same phase.
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh
from ..partitioning.decomposition import DomainDecomposition
from ..temporal.levels import face_levels
from ..temporal.scheme import active_levels, num_subiterations
from .dag import TaskDAG
from .task import Locality, ObjectType, TaskArrays

__all__ = ["generate_task_graph", "classify_objects"]


def classify_objects(
    mesh: Mesh, tau: np.ndarray, decomp: DomainDecomposition
) -> dict:
    """Classify cells and faces into task object groups.

    Returns a dict with, per object kind, the (domain, level, locality)
    of every object, plus the face→cell and cell→face group relations
    needed for dependency generation.
    """
    tau = np.asarray(tau, dtype=np.int32)
    cdom = decomp.domain
    a = mesh.face_cells[:, 0]
    b = mesh.face_cells[:, 1]
    interior = b >= 0
    bi = np.flatnonzero(interior)

    flevel = face_levels(mesh, tau)
    # Face locality: external iff its two cells live in different domains.
    floc = np.zeros(mesh.num_faces, dtype=np.int8)
    floc[bi] = (cdom[a[bi]] != cdom[b[bi]]).astype(np.int8)
    # Face owner: the domain of its finer adjacent cell (the face is
    # computed at that cell's frequency); ties go to cell a's domain.
    fdom = cdom[a].astype(np.int32).copy()
    finer_b = bi[tau[b[bi]] < tau[a[bi]]]
    fdom[finer_b] = cdom[b[finer_b]]

    # Cell locality: external iff adjacent to another domain.
    cloc = np.zeros(mesh.num_cells, dtype=np.int8)
    ext_faces = np.flatnonzero(floc == 1)
    cloc[a[ext_faces]] = 1
    cloc[b[ext_faces]] = 1

    return {
        "cell_domain": cdom.astype(np.int32),
        "cell_level": tau,
        "cell_locality": cloc,
        "face_domain": fdom,
        "face_level": flevel.astype(np.int32),
        "face_locality": floc,
    }


def _group_ids(
    dom: np.ndarray, lev: np.ndarray, loc: np.ndarray, ndom: int, nlev: int
) -> np.ndarray:
    """Dense group key (domain, level, locality) → scalar id."""
    return (dom.astype(np.int64) * nlev + lev) * 2 + loc


def generate_task_graph(
    mesh: Mesh,
    tau: np.ndarray,
    decomp: DomainDecomposition,
    *,
    cell_unit_cost: float = 1.0,
    face_unit_cost: float = 1.0,
    level_cost_factor: np.ndarray | None = None,
    scheme: str = "euler",
    iterations: int = 1,
) -> TaskDAG:
    """Generate the task graph of one or more iterations (Algorithm 1).

    Parameters
    ----------
    mesh, tau, decomp:
        The mesh, per-cell temporal levels, and domain decomposition.
    cell_unit_cost / face_unit_cost:
        Work units per cell update / per face flux.
    level_cost_factor:
        Optional ``(L,)`` multiplier per temporal level (e.g. to model
        deeper stencils on fine levels).  Defaults to 1 everywhere.
    scheme:
        ``"euler"`` — one (faces, cells) sweep per phase;
        ``"heun"`` — the paper's second-order method: each phase emits
        stage-1 faces, predictor cells, stage-2 faces and corrector
        cells (four sweeps, doubling every task).  The dependency
        structure additionally orders stage-2 face tasks after the
        predictor writes they read and after the correctors that
        cleared their accumulators.

    iterations:
        Number of consecutive solver iterations to expand.  The
        last-writer tables carry across the boundary, so an iteration's
        first tasks depend on the previous iteration's last writers —
        no global barrier separates them, letting the simulator study
        *cross-iteration pipelining* (the paper simulates a single
        iteration and notes the pattern repeats).  Task
        ``subiteration`` indices are global (``iteration · 2**τ_max +
        s``).

    Returns
    -------
    :class:`~repro.taskgraph.dag.TaskDAG` covering ``iterations`` full
    iterations (``iterations · 2**τ_max`` subiterations).
    """
    if scheme not in ("euler", "heun"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    tau = np.asarray(tau, dtype=np.int32)
    info = classify_objects(mesh, tau, decomp)
    ndom = decomp.num_domains
    tau_max = int(tau.max()) if len(tau) else 0
    nlev = tau_max + 1
    if level_cost_factor is None:
        level_cost_factor = np.ones(nlev, dtype=np.float64)
    level_cost_factor = np.asarray(level_cost_factor, dtype=np.float64)
    if len(level_cost_factor) < nlev:
        raise ValueError("level_cost_factor too short")

    # --- group tables --------------------------------------------------
    cgid = _group_ids(
        info["cell_domain"], info["cell_level"], info["cell_locality"], ndom, nlev
    )
    fgid = _group_ids(
        info["face_domain"], info["face_level"], info["face_locality"], ndom, nlev
    )
    ngroups = ndom * nlev * 2
    cell_counts = np.bincount(cgid, minlength=ngroups).astype(np.int64)
    face_counts = np.bincount(fgid, minlength=ngroups).astype(np.int64)

    # --- group relations ------------------------------------------------
    a = mesh.face_cells[:, 0]
    b = mesh.face_cells[:, 1]
    bi = np.flatnonzero(b >= 0)
    pairs = np.concatenate(
        [
            np.stack([fgid, cgid[a]], axis=1),
            np.stack([fgid[bi], cgid[b[bi]]], axis=1),
        ]
    )
    pairs = np.unique(pairs, axis=0)
    # CSR: face group -> adjacent cell groups
    f2c_x = np.zeros(ngroups + 1, dtype=np.int64)
    np.add.at(f2c_x[1:], pairs[:, 0], 1)
    np.cumsum(f2c_x, out=f2c_x)
    order = np.argsort(pairs[:, 0], kind="stable")
    f2c_a = pairs[order, 1]
    # CSR: cell group -> bounding face groups
    rpairs = np.unique(pairs[:, ::-1], axis=0)
    c2f_x = np.zeros(ngroups + 1, dtype=np.int64)
    np.add.at(c2f_x[1:], rpairs[:, 0], 1)
    np.cumsum(c2f_x, out=c2f_x)
    order = np.argsort(rpairs[:, 0], kind="stable")
    c2f_a = rpairs[order, 1]

    # --- generation loop --------------------------------------------------
    nsub = num_subiterations(tau_max)
    dp = decomp.domain_process

    t_sub: list[int] = []
    t_tau: list[int] = []
    t_type: list[int] = []
    t_loc: list[int] = []
    t_dom: list[int] = []
    t_proc: list[int] = []
    t_nobj: list[int] = []
    t_cost: list[float] = []
    t_stage: list[int] = []
    e_src: list[int] = []
    e_dst: list[int] = []

    # Last-writer tables.  Euler uses (last_cell, last_face1); Heun
    # additionally tracks stage-2 faces and predictor cell writes.
    last_cell = np.full(ngroups, -1, dtype=np.int64)  # corrector / update
    last_face1 = np.full(ngroups, -1, dtype=np.int64)
    last_face2 = np.full(ngroups, -1, dtype=np.int64)
    last_pred = np.full(ngroups, -1, dtype=np.int64)

    def add_task(s, tph, typ, loc, d, nobj, cost, stage) -> int:
        tid = len(t_cost)
        t_sub.append(s)
        t_tau.append(tph)
        t_type.append(int(typ))
        t_loc.append(int(loc))
        t_dom.append(d)
        t_proc.append(int(dp[d]))
        t_nobj.append(int(nobj))
        t_cost.append(float(cost))
        t_stage.append(stage)
        return tid

    def add_deps(tid: int, preds: set[int]) -> None:
        for p in preds:
            if p >= 0 and p != tid:
                e_src.append(p)
                e_dst.append(tid)

    def face_sweep(s: int, tph: int, stage: int) -> None:
        for d in range(ndom):
            base = (d * nlev + tph) * 2
            for loc in (Locality.EXTERNAL, Locality.INTERNAL):
                gid = base + int(loc)
                nobj = face_counts[gid]
                if nobj == 0:
                    continue
                tid = add_task(
                    s,
                    tph,
                    ObjectType.FACE,
                    loc,
                    d,
                    nobj,
                    nobj * face_unit_cost * level_cost_factor[tph],
                    stage,
                )
                table = last_face1 if stage == 1 else last_face2
                preds = {int(table[gid])}
                for cg in f2c_a[f2c_x[gid] : f2c_x[gid + 1]]:
                    # Stage 1 reads U (last corrector); stage 2 reads
                    # U* (last predictor) and must also follow the
                    # corrector that cleared acc2 (anti-dependency).
                    preds.add(int(last_cell[cg]))
                    if stage == 2:
                        preds.add(int(last_pred[cg]))
                add_deps(tid, preds)
                table[gid] = tid

    def cell_sweep(s: int, tph: int, kind: str) -> None:
        """kind ∈ {'update', 'predictor', 'corrector'}."""
        stage = 1 if kind != "corrector" else 2
        for d in range(ndom):
            base = (d * nlev + tph) * 2
            for loc in (Locality.EXTERNAL, Locality.INTERNAL):
                gid = base + int(loc)
                nobj = cell_counts[gid]
                if nobj == 0:
                    continue
                tid = add_task(
                    s,
                    tph,
                    ObjectType.CELL,
                    loc,
                    d,
                    nobj,
                    nobj * cell_unit_cost * level_cost_factor[tph],
                    stage,
                )
                preds = {int(last_cell[gid])}
                if kind != "update":
                    preds.add(int(last_pred[gid]))
                for fg in c2f_a[c2f_x[gid] : c2f_x[gid + 1]]:
                    preds.add(int(last_face1[fg]))
                    if kind == "corrector":
                        preds.add(int(last_face2[fg]))
                    elif kind == "predictor":
                        # WAR: the new predictor overwrites U*, which
                        # earlier stage-2 face tasks may still read.
                        preds.add(int(last_face2[fg]))
                add_deps(tid, preds)
                if kind == "predictor":
                    last_pred[gid] = tid
                else:
                    last_cell[gid] = tid

    for it in range(iterations):
        for s_local in range(nsub):
            s = it * nsub + s_local
            for tph in active_levels(s_local, tau_max):
                if scheme == "euler":
                    face_sweep(s, tph, 1)
                    cell_sweep(s, tph, "update")
                else:
                    face_sweep(s, tph, 1)
                    cell_sweep(s, tph, "predictor")
                    face_sweep(s, tph, 2)
                    cell_sweep(s, tph, "corrector")

    tasks = TaskArrays(
        subiteration=np.array(t_sub, dtype=np.int32),
        phase_tau=np.array(t_tau, dtype=np.int32),
        obj_type=np.array(t_type, dtype=np.int8),
        locality=np.array(t_loc, dtype=np.int8),
        domain=np.array(t_dom, dtype=np.int32),
        process=np.array(t_proc, dtype=np.int32),
        num_objects=np.array(t_nobj, dtype=np.int64),
        cost=np.array(t_cost, dtype=np.float64),
        stage=np.array(t_stage, dtype=np.int8),
    )
    edges = (
        np.stack([np.array(e_src), np.array(e_dst)], axis=1)
        if e_src
        else np.empty((0, 2), dtype=np.int64)
    )
    return TaskDAG(tasks=tasks, edges=edges)
