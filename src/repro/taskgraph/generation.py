"""Task graph generation — the paper's Algorithm 1, vectorized.

For every subiteration, the active temporal levels are traversed in
descending order (*phases*); each phase generates, per domain, a task
for the **external** then the **internal** objects of its level, first
for faces then for cells — provided the object set is non-empty.

Note on fidelity: Algorithm 1's set-builder line reads
``t_lvl(x) ≤ τ``, but the surrounding text and Fig. 8 make clear each
phase processes the objects *of its level* (distinct red/yellow/blue
tasks per τ); we implement equality, which is also what makes MC_TL
produce finer-grained tasks (paper §VI).

Dependencies are derived from last-writer tables over *object groups*
(a group = all cells or faces sharing (domain, level, locality)):

* a **face task** reads the most recent values of its adjacent cell
  groups (flux stencil) and write-after-write orders it after the
  previous task of its own group;
* a **cell task** reads the most recent fluxes of every face group
  bounding its cells and its own previous update.

Because tasks are generated in execution order (subiterations
ascending, phases descending, faces before cells, external before
internal), the last-writer tables automatically resolve the subtle
cases — e.g. a face task of level τ reads its level-τ neighbour cells'
values from subiteration ``s − 2**τ``, not from the cell task that
follows it in the same phase.

Implementation
--------------
The seed implementation (kept verbatim as the differential oracle in
:mod:`repro.taskgraph.reference`) appended tasks one Python call at a
time — ``ndom × locality`` appends per sweep, with an inner loop over
neighbour groups per task.  This module produces the identical graph
with three batching layers:

* the non-empty (domain, level, locality) *emission blocks* of every
  temporal level — group ids, their per-group neighbour lists in
  ragged (CSR-gathered) form, and the constant task fields — are
  precomputed once;
* each sweep then emits its whole task block with NumPy primitives:
  task ids are an ``arange``, dependency sources are vectorized
  gathers from the last-writer tables through the block's neighbour
  arrays, and the table update is one fancy-index store (tasks within
  one sweep never depend on each other, so per-sweep batching is
  exact);
* for ``iterations > 1`` the generator exploits the chain's
  periodicity: it builds one iteration's *template* (recording which
  dependency reads crossed the iteration boundary) and replays it with
  task-id offsets — iteration ``i`` is the template shifted by
  ``i·n``, plus cross-iteration edges into the previous iteration's
  last writers — instead of regenerating every iteration.

The result is bit-identical task arrays and the same canonical edge
set as the reference (edges are emitted sorted by ``(successor,
predecessor)``; the reference emits them in per-task Python ``set``
order, so raw edge-array layouts differ while the DAGs are equal).
"""

from __future__ import annotations

import numpy as np

from ..mesh.structures import Mesh
from ..partitioning.decomposition import DomainDecomposition
from ..temporal.levels import face_levels
from ..temporal.scheme import active_levels, num_subiterations
from .dag import TaskDAG
from .task import ObjectType, TaskArrays

__all__ = ["generate_task_graph", "classify_objects"]


def classify_objects(
    mesh: Mesh, tau: np.ndarray, decomp: DomainDecomposition
) -> dict:
    """Classify cells and faces into task object groups.

    Returns a dict with, per object kind, the (domain, level, locality)
    of every object, plus the face→cell and cell→face group relations
    needed for dependency generation.
    """
    tau = np.asarray(tau, dtype=np.int32)
    cdom = decomp.domain
    a = mesh.face_cells[:, 0]
    b = mesh.face_cells[:, 1]
    interior = b >= 0
    bi = np.flatnonzero(interior)

    flevel = face_levels(mesh, tau)
    # Face locality: external iff its two cells live in different domains.
    floc = np.zeros(mesh.num_faces, dtype=np.int8)
    floc[bi] = (cdom[a[bi]] != cdom[b[bi]]).astype(np.int8)
    # Face owner: the domain of its finer adjacent cell (the face is
    # computed at that cell's frequency); ties go to cell a's domain.
    fdom = cdom[a].astype(np.int32).copy()
    finer_b = bi[tau[b[bi]] < tau[a[bi]]]
    fdom[finer_b] = cdom[b[finer_b]]

    # Cell locality: external iff adjacent to another domain.
    cloc = np.zeros(mesh.num_cells, dtype=np.int8)
    ext_faces = np.flatnonzero(floc == 1)
    cloc[a[ext_faces]] = 1
    cloc[b[ext_faces]] = 1

    return {
        "cell_domain": cdom.astype(np.int32),
        "cell_level": tau,
        "cell_locality": cloc,
        "face_domain": fdom,
        "face_level": flevel.astype(np.int32),
        "face_locality": floc,
    }


def _group_ids(
    dom: np.ndarray, lev: np.ndarray, loc: np.ndarray, ndom: int, nlev: int
) -> np.ndarray:
    """Dense group key (domain, level, locality) → scalar id."""
    return (dom.astype(np.int64) * nlev + lev) * 2 + loc


def _group_relations(
    mesh: Mesh, fgid: np.ndarray, cgid: np.ndarray, ngroups: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Unique face-group↔cell-group adjacency as two CSR relations.

    Returns ``(f2c_x, f2c_a, c2f_x, c2f_a)``: face group → adjacent
    cell groups and cell group → bounding face groups.
    """
    a = mesh.face_cells[:, 0]
    b = mesh.face_cells[:, 1]
    bi = np.flatnonzero(b >= 0)
    fg = np.concatenate([fgid, fgid[bi]])
    cg = np.concatenate([cgid[a], cgid[b[bi]]])
    # Scalar-keyed unique: both group ids live in [0, ngroups), so a
    # pair packs into one int64 whose sorted order is the pairs'
    # lexicographic order — orders of magnitude cheaper than
    # ``np.unique(..., axis=0)``'s void-view row sort.  When the key
    # range is modest a presence bitmap beats ``np.unique`` outright.
    n = np.int64(ngroups)
    if ngroups * ngroups <= max(1 << 22, 4 * len(fg)):

        def uniq(keys: np.ndarray) -> np.ndarray:
            seen = np.zeros(ngroups * ngroups, dtype=bool)
            seen[keys] = True
            return np.flatnonzero(seen)

    else:
        uniq = np.unique
    # CSR: face group -> adjacent cell groups
    key = uniq(fg * n + cg)
    f2c_x = np.zeros(ngroups + 1, dtype=np.int64)
    np.cumsum(np.bincount(key // n, minlength=ngroups), out=f2c_x[1:])
    f2c_a = key % n
    # CSR: cell group -> bounding face groups
    rkey = uniq(cg * n + fg)
    c2f_x = np.zeros(ngroups + 1, dtype=np.int64)
    np.cumsum(np.bincount(rkey // n, minlength=ngroups), out=c2f_x[1:])
    c2f_a = rkey % n
    return f2c_x, f2c_a, c2f_x, c2f_a


class _EmissionBlock:
    """Per-(level, object-kind) emission template: the non-empty
    (domain, locality) groups in emission order, their neighbour-group
    reads in flattened ragged form, and the constant task fields."""

    __slots__ = (
        "gids", "read", "owner", "domain", "process", "locality",
        "num_objects", "cost",
    )

    def __init__(
        self,
        gids: np.ndarray,
        read: np.ndarray,
        owner: np.ndarray,
        dp: np.ndarray,
        counts: np.ndarray,
        nlev: int,
        unit_cost: float,
        level_factor: float,
    ) -> None:
        self.gids = gids
        self.read = read
        self.owner = owner
        doms = gids // (2 * nlev)
        self.domain = doms.astype(np.int32)
        self.process = dp[doms].astype(np.int32)
        self.locality = (gids & 1).astype(np.int8)
        self.num_objects = counts[gids]
        self.cost = self.num_objects * unit_cost * level_factor


def _emission_blocks(
    counts: np.ndarray,
    x: np.ndarray,
    adj: np.ndarray,
    dp: np.ndarray,
    ndom: int,
    nlev: int,
    unit_cost: float,
    level_cost_factor: np.ndarray,
) -> list[_EmissionBlock]:
    """Build one :class:`_EmissionBlock` per temporal level.

    Emission order matches the reference sweep: domains ascending,
    EXTERNAL before INTERNAL, empty groups skipped.
    """
    d = np.arange(ndom, dtype=np.int64)
    loc_order = np.array([1, 0], dtype=np.int64)  # EXTERNAL, INTERNAL
    blocks = []
    for tph in range(nlev):
        cand = (((d * nlev + tph) * 2)[:, None] + loc_order).ravel()
        gids = cand[counts[cand] > 0]
        lens = x[gids + 1] - x[gids]
        total = int(lens.sum())
        if total:
            offs = np.concatenate(([0], np.cumsum(lens)[:-1]))
            idx = np.repeat(x[gids] - offs, lens) + np.arange(total)
            read = adj[idx]
        else:
            read = np.empty(0, dtype=np.int64)
        owner = np.repeat(np.arange(len(gids), dtype=np.int64), lens)
        blocks.append(
            _EmissionBlock(
                gids, read, owner, dp, counts, nlev,
                unit_cost, level_cost_factor[tph],
            )
        )
    return blocks


# Sweep kinds of the iteration template.  Values index the last-writer
# table a sweep *writes*; the read pattern is derived per kind.
_FACE1, _FACE2, _UPDATE, _PREDICTOR, _CORRECTOR = range(5)

# Last-writer table rows (stacked so boundary reads can be replayed by
# a single fancy-index gather): 0 = last corrector/update cell task,
# 1 = stage-1 face, 2 = stage-2 face, 3 = predictor cell task.
_T_CELL, _T_FACE1, _T_FACE2, _T_PRED = range(4)


def _sweep_plan(scheme: str, nsub: int, tau_max: int) -> list[tuple[int, int, int]]:
    """The (s_local, phase τ, sweep kind) sequence of one iteration."""
    plan: list[tuple[int, int, int]] = []
    for s_local in range(nsub):
        for tph in active_levels(s_local, tau_max):
            if scheme == "euler":
                plan.append((s_local, tph, _FACE1))
                plan.append((s_local, tph, _UPDATE))
            else:
                plan.append((s_local, tph, _FACE1))
                plan.append((s_local, tph, _PREDICTOR))
                plan.append((s_local, tph, _FACE2))
                plan.append((s_local, tph, _CORRECTOR))
    return plan


def generate_task_graph(
    mesh: Mesh,
    tau: np.ndarray,
    decomp: DomainDecomposition,
    *,
    cell_unit_cost: float = 1.0,
    face_unit_cost: float = 1.0,
    level_cost_factor: np.ndarray | None = None,
    scheme: str = "euler",
    iterations: int = 1,
) -> TaskDAG:
    """Generate the task graph of one or more iterations (Algorithm 1).

    Parameters
    ----------
    mesh, tau, decomp:
        The mesh, per-cell temporal levels, and domain decomposition.
    cell_unit_cost / face_unit_cost:
        Work units per cell update / per face flux.
    level_cost_factor:
        Optional ``(L,)`` multiplier per temporal level (e.g. to model
        deeper stencils on fine levels).  Defaults to 1 everywhere.
    scheme:
        ``"euler"`` — one (faces, cells) sweep per phase;
        ``"heun"`` — the paper's second-order method: each phase emits
        stage-1 faces, predictor cells, stage-2 faces and corrector
        cells (four sweeps, doubling every task).  The dependency
        structure additionally orders stage-2 face tasks after the
        predictor writes they read and after the correctors that
        cleared their accumulators.

    iterations:
        Number of consecutive solver iterations to expand.  The
        last-writer tables carry across the boundary, so an iteration's
        first tasks depend on the previous iteration's last writers —
        no global barrier separates them, letting the simulator study
        *cross-iteration pipelining* (the paper simulates a single
        iteration and notes the pattern repeats).  Task
        ``subiteration`` indices are global (``iteration · 2**τ_max +
        s``).  Internally only the first iteration is generated; the
        rest replay it with shifted task ids (see the module
        docstring).

    Returns
    -------
    :class:`~repro.taskgraph.dag.TaskDAG` covering ``iterations`` full
    iterations (``iterations · 2**τ_max`` subiterations).  Edges are
    sorted by ``(successor, predecessor)``.
    """
    if scheme not in ("euler", "heun"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    tau = np.asarray(tau, dtype=np.int32)
    info = classify_objects(mesh, tau, decomp)
    ndom = decomp.num_domains
    tau_max = int(tau.max()) if len(tau) else 0
    nlev = tau_max + 1
    if level_cost_factor is None:
        level_cost_factor = np.ones(nlev, dtype=np.float64)
    level_cost_factor = np.asarray(level_cost_factor, dtype=np.float64)
    if len(level_cost_factor) < nlev:
        raise ValueError("level_cost_factor too short")

    # --- group tables --------------------------------------------------
    cgid = _group_ids(
        info["cell_domain"], info["cell_level"], info["cell_locality"], ndom, nlev
    )
    fgid = _group_ids(
        info["face_domain"], info["face_level"], info["face_locality"], ndom, nlev
    )
    ngroups = ndom * nlev * 2
    cell_counts = np.bincount(cgid, minlength=ngroups).astype(np.int64)
    face_counts = np.bincount(fgid, minlength=ngroups).astype(np.int64)

    # --- group relations + per-level emission templates -----------------
    f2c_x, f2c_a, c2f_x, c2f_a = _group_relations(mesh, fgid, cgid, ngroups)
    dp = np.asarray(decomp.domain_process)
    fblocks = _emission_blocks(
        face_counts, f2c_x, f2c_a, dp, ndom, nlev,
        face_unit_cost, level_cost_factor,
    )
    cblocks = _emission_blocks(
        cell_counts, c2f_x, c2f_a, dp, ndom, nlev,
        cell_unit_cost, level_cost_factor,
    )

    # --- one-iteration template -----------------------------------------
    nsub = num_subiterations(tau_max)
    plan = _sweep_plan(scheme, nsub, tau_max)

    # Stacked last-writer tables (rows: _T_CELL/_T_FACE1/_T_FACE2/_T_PRED).
    last = np.full((4, ngroups), -1, dtype=np.int64)

    emitted: list[tuple[int, int, int, _EmissionBlock]] = []  # s, tph, kind, blk
    # Dependency reads: parallel chunks of (source tid, dest tid) plus,
    # for boundary replay, which table row and group each read came from.
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    gid_parts: list[np.ndarray] = []
    tab_parts: list[int] = []
    base = 0

    def gather(row: int, gids: np.ndarray, dst: np.ndarray) -> None:
        src_parts.append(last[row, gids])
        dst_parts.append(dst)
        gid_parts.append(gids)
        tab_parts.append(row)

    for s_local, tph, kind in plan:
        if kind in (_FACE1, _FACE2):
            blk = fblocks[tph]
            k = len(blk.gids)
            if k == 0:
                continue
            tids = np.arange(base, base + k, dtype=np.int64)
            row = _T_FACE1 if kind == _FACE1 else _T_FACE2
            gather(row, blk.gids, tids)  # write-after-write on own group
            if len(blk.read):
                rdst = tids[blk.owner]
                gather(_T_CELL, blk.read, rdst)  # flux stencil reads U
                if kind == _FACE2:
                    # Stage 2 reads U* and must follow the corrector
                    # that cleared acc2 (the _T_CELL gather above).
                    gather(_T_PRED, blk.read, rdst)
            last[row, blk.gids] = tids
        else:
            blk = cblocks[tph]
            k = len(blk.gids)
            if k == 0:
                continue
            tids = np.arange(base, base + k, dtype=np.int64)
            gather(_T_CELL, blk.gids, tids)  # own previous update
            if kind != _UPDATE:
                gather(_T_PRED, blk.gids, tids)
            if len(blk.read):
                rdst = tids[blk.owner]
                gather(_T_FACE1, blk.read, rdst)
                if kind != _UPDATE:
                    # Corrector reads stage-2 fluxes; predictor takes a
                    # WAR dependency on stage-2 faces still reading U*.
                    gather(_T_FACE2, blk.read, rdst)
            row = _T_PRED if kind == _PREDICTOR else _T_CELL
            last[row, blk.gids] = tids
        emitted.append((s_local, tph, kind, blk))
        base += k

    n = base  # tasks per iteration

    # --- assemble task arrays -------------------------------------------
    _FACE_KINDS = (_FACE1, _FACE2)
    if emitted:
        tmpl_sub = np.concatenate(
            [np.full(len(b.gids), s, dtype=np.int32) for s, _, _, b in emitted]
        )
        tmpl_tau = np.concatenate(
            [np.full(len(b.gids), t, dtype=np.int32) for _, t, _, b in emitted]
        )
        tmpl_type = np.concatenate(
            [
                np.full(
                    len(b.gids),
                    int(ObjectType.FACE if k in _FACE_KINDS else ObjectType.CELL),
                    dtype=np.int8,
                )
                for _, _, k, b in emitted
            ]
        )
        tmpl_stage = np.concatenate(
            [
                np.full(
                    len(b.gids),
                    2 if k in (_FACE2, _CORRECTOR) else 1,
                    dtype=np.int8,
                )
                for _, _, k, b in emitted
            ]
        )
        tmpl_loc = np.concatenate([b.locality for _, _, _, b in emitted])
        tmpl_dom = np.concatenate([b.domain for _, _, _, b in emitted])
        tmpl_proc = np.concatenate([b.process for _, _, _, b in emitted])
        tmpl_nobj = np.concatenate([b.num_objects for _, _, _, b in emitted])
        tmpl_cost = np.concatenate([b.cost for _, _, _, b in emitted])
    else:
        tmpl_sub = np.empty(0, dtype=np.int32)
        tmpl_tau = np.empty(0, dtype=np.int32)
        tmpl_type = np.empty(0, dtype=np.int8)
        tmpl_stage = np.empty(0, dtype=np.int8)
        tmpl_loc = np.empty(0, dtype=np.int8)
        tmpl_dom = np.empty(0, dtype=np.int32)
        tmpl_proc = np.empty(0, dtype=np.int32)
        tmpl_nobj = np.empty(0, dtype=np.int64)
        tmpl_cost = np.empty(0, dtype=np.float64)

    offs = np.arange(iterations, dtype=np.int64) * n
    if iterations == 1:
        sub = tmpl_sub
    else:
        sub_offs = (np.arange(iterations) * nsub).astype(np.int32)
        sub = (tmpl_sub[None, :] + sub_offs[:, None]).ravel()
    tasks = TaskArrays(
        subiteration=sub,
        phase_tau=np.tile(tmpl_tau, iterations),
        obj_type=np.tile(tmpl_type, iterations),
        locality=np.tile(tmpl_loc, iterations),
        domain=np.tile(tmpl_dom, iterations),
        process=np.tile(tmpl_proc, iterations),
        num_objects=np.tile(tmpl_nobj, iterations),
        cost=np.tile(tmpl_cost, iterations),
        stage=np.tile(tmpl_stage, iterations),
    )

    # --- assemble edges ---------------------------------------------------
    if src_parts:
        src_all = np.concatenate(src_parts)
        dst_all = np.concatenate(dst_parts)
    else:
        src_all = np.empty(0, dtype=np.int64)
        dst_all = np.empty(0, dtype=np.int64)
    seen = src_all >= 0
    tmpl_src = src_all[seen]
    tmpl_dst = dst_all[seen]

    if iterations == 1:
        src, dst = tmpl_src, tmpl_dst
    else:
        # Reads that saw no writer inside the template resolve, from the
        # second iteration on, to the previous iteration's final tables.
        miss = ~seen
        b_dst = dst_all[miss]
        b_gid = np.concatenate(gid_parts)[miss] if gid_parts else b_dst
        b_tab = (
            np.repeat(
                np.asarray(tab_parts, dtype=np.int64),
                [len(p) for p in gid_parts],
            )[miss]
            if gid_parts
            else b_dst
        )
        carry = last[b_tab, b_gid]
        valid = carry >= 0
        cb_src = carry[valid]
        cb_dst = b_dst[valid]
        src = np.concatenate(
            [
                (tmpl_src[None, :] + offs[:, None]).ravel(),
                (cb_src[None, :] + offs[:-1, None]).ravel(),
            ]
        )
        dst = np.concatenate(
            [
                (tmpl_dst[None, :] + offs[:, None]).ravel(),
                (cb_dst[None, :] + offs[1:, None]).ravel(),
            ]
        )

    if len(src):
        order = np.lexsort((src, dst))
        edges = np.stack([src[order], dst[order]], axis=1)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return TaskDAG(tasks=tasks, edges=edges)
