"""Automatic domain-granularity selection.

The paper's conclusion: "We are currently exploring ways to
automatically determine the best domain granularity with respect to
the target machine's number of cores."  The number of domains trades
three effects: more domains = more (finer) tasks = better pipelining
and core occupancy, but also more runtime overhead per task and more
cut faces (communication).

This module implements that exploration as a golden-section-style
search over candidate domain counts (multiples of the process count,
geometric steps).  The objective is simulated makespan plus optional
per-task overhead and per-cut-edge communication penalties — the two
knobs FLUSIM itself abstracts away but a production runtime pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

import numpy as np

from ..mesh.structures import Mesh
from .strategies import make_decomposition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..flusim import ClusterConfig

# NOTE: flusim imports are deferred into the function bodies —
# repro.flusim depends on repro.partitioning (decompositions), so a
# module-level import here would be circular.

__all__ = ["GranularityPoint", "GranularitySearchResult", "tune_granularity"]


@dataclass
class GranularityPoint:
    """One evaluated domain count."""

    domains: int
    makespan: float
    num_tasks: int
    comm_volume: int
    objective: float


@dataclass
class GranularitySearchResult:
    """Outcome of :func:`tune_granularity`.

    Attributes
    ----------
    best:
        The evaluated point minimizing the objective.
    evaluated:
        All evaluated points, ascending domain count.
    """

    best: GranularityPoint
    evaluated: list[GranularityPoint] = field(default_factory=list)

    def domain_counts(self) -> list[int]:
        """Evaluated domain counts, ascending."""
        return [p.domains for p in self.evaluated]


def _evaluate(
    mesh: Mesh,
    tau: np.ndarray,
    cluster: "ClusterConfig",
    domains: int,
    *,
    strategy: str,
    seed: int,
    task_overhead: float,
    comm_cost: float,
    scheduler: str,
) -> GranularityPoint:
    from ..flusim import simulate, taskgraph_comm_volume
    from ..taskgraph import generate_task_graph

    decomp = make_decomposition(
        mesh, tau, domains, cluster.num_processes, strategy=strategy, seed=seed
    )
    dag = generate_task_graph(mesh, tau, decomp)
    durations = dag.tasks.cost + task_overhead
    trace = simulate(dag, cluster, scheduler=scheduler, durations=durations)
    comm = taskgraph_comm_volume(dag)
    objective = trace.makespan + comm_cost * comm
    return GranularityPoint(
        domains=domains,
        makespan=trace.makespan,
        num_tasks=dag.num_tasks,
        comm_volume=comm,
        objective=objective,
    )


def tune_granularity(
    mesh: Mesh,
    tau: np.ndarray,
    cluster: "ClusterConfig",
    *,
    strategy: str = "MC_TL",
    seed: int = 0,
    task_overhead: float = 0.0,
    comm_cost: float = 0.0,
    min_domains: int | None = None,
    max_domains: int | None = None,
    scheduler: str = "eager",
) -> GranularitySearchResult:
    """Search the domain count minimizing the (penalized) makespan.

    Candidates are geometric multiples of the process count
    (``P, 2P, 4P, …``) capped so domains keep a sensible minimum size;
    the search evaluates all candidates (the curve is cheap at replica
    scale and not reliably unimodal once overheads enter).

    Parameters
    ----------
    task_overhead:
        Constant added to every task's duration (runtime submission
        and management cost per task — what makes "very low granularity
        tasks" expensive, paper §IV).
    comm_cost:
        Penalty per cross-process task-graph edge added to the
        objective (models eager-progression communication cost).

    Returns
    -------
    :class:`GranularitySearchResult`; ``result.best.domains`` is the
    recommended domain count.
    """
    P = cluster.num_processes
    if min_domains is None:
        min_domains = P
    if max_domains is None:
        # Do not shrink the average domain below ~32 cells.
        max_domains = max(min_domains, mesh.num_cells // 32)
    candidates: list[int] = []
    d = max(P, min_domains)
    while d <= max_domains:
        candidates.append(d)
        d *= 2
    if not candidates:
        candidates = [min_domains]

    evaluated = [
        _evaluate(
            mesh,
            tau,
            cluster,
            d,
            strategy=strategy,
            seed=seed,
            task_overhead=task_overhead,
            comm_cost=comm_cost,
            scheduler=scheduler,
        )
        for d in candidates
    ]
    best = min(evaluated, key=lambda p: p.objective)
    return GranularitySearchResult(best=best, evaluated=evaluated)
