"""Domain decompositions and their mapping to MPI processes.

FLUSEPA partitions the mesh into *domains* and maps each domain to an
MPI process (Fig. 2 of the paper).  When more domains than processes
are requested (to refine task granularity), domains are distributed
evenly across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DomainDecomposition"]


@dataclass
class DomainDecomposition:
    """A mesh partition plus its process mapping.

    Attributes
    ----------
    domain:
        ``(n_cells,)`` domain index per cell.
    num_domains:
        Number of domains.
    domain_process:
        ``(num_domains,)`` owning MPI process per domain.
    num_processes:
        Number of MPI processes.
    strategy:
        Human-readable name of the strategy that produced it
        (``"SC_OC"``, ``"MC_TL"``, …).
    """

    domain: np.ndarray
    num_domains: int
    domain_process: np.ndarray
    num_processes: int
    strategy: str = "?"
    # Lazy domain -> cells grouping (cells sorted by domain + slice
    # bounds); callers iterate over every domain, so one argsort beats
    # ``num_domains`` full scans.
    _group_order: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _group_bounds: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.domain = np.ascontiguousarray(self.domain, dtype=np.int32)
        self.domain_process = np.ascontiguousarray(
            self.domain_process, dtype=np.int32
        )
        if len(self.domain_process) != self.num_domains:
            raise ValueError("domain_process length mismatch")
        if len(self.domain) and (
            self.domain.min() < 0 or self.domain.max() >= self.num_domains
        ):
            raise ValueError("domain index out of range")
        if len(self.domain_process) and (
            self.domain_process.min() < 0
            or self.domain_process.max() >= self.num_processes
        ):
            raise ValueError("process index out of range")

    @property
    def cell_process(self) -> np.ndarray:
        """``(n_cells,)`` owning process per cell."""
        return self.domain_process[self.domain]

    @classmethod
    def block_mapping(
        cls,
        domain: np.ndarray,
        num_domains: int,
        num_processes: int,
        strategy: str = "?",
    ) -> "DomainDecomposition":
        """Map domains to processes in contiguous blocks.

        Domain ``d`` goes to process ``d * P // D`` — with recursive
        bisection, consecutive domain ids tend to be spatially close,
        so block mapping keeps a process's domains adjacent.
        """
        if num_processes > num_domains:
            raise ValueError("need at least one domain per process")
        dp = (
            np.arange(num_domains, dtype=np.int64) * num_processes
        ) // num_domains
        return cls(
            domain=domain,
            num_domains=num_domains,
            domain_process=dp.astype(np.int32),
            num_processes=num_processes,
            strategy=strategy,
        )

    def domains_of_process(self, p: int) -> np.ndarray:
        """Domain indices owned by process ``p``."""
        return np.flatnonzero(self.domain_process == p)

    def cells_of_domain(self, d: int) -> np.ndarray:
        """Cell indices belonging to domain ``d`` (ascending)."""
        if self._group_order is None:
            order = np.argsort(self.domain, kind="stable")
            bounds = np.searchsorted(
                self.domain[order],
                np.arange(self.num_domains + 1),
            )
            self._group_order = order
            self._group_bounds = bounds
        return self._group_order[
            self._group_bounds[d] : self._group_bounds[d + 1]
        ]
