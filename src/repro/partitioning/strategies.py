"""Mesh-partitioning strategies.

The two protagonists of the paper:

* **SC_OC** (single-constraint, operating cost) — the classical
  strategy: each cell is weighted by its operating cost
  ``2**(τ_max − τ)`` and the partitioner balances the *total* cost per
  domain.  Perfectly balanced per iteration, but the cells of a domain
  tend to share one temporal level, so whole processes idle during most
  subiterations (paper §IV, Fig. 7).

* **MC_TL** (multi-constraint, temporal levels) — the contribution:
  each cell carries a binary indicator vector over temporal levels and
  the partitioner balances *every level class simultaneously*, which
  balances every subiteration at once (paper §IV-A/V, Fig. 10).

Also provided:

* **dual-phase** MC_TL → SC_OC (paper §VII perspective): a first MC_TL
  pass creates one domain per process, then an SC_OC pass splits each
  process's domain for task granularity with minimal communication.
* **RCB** and **SFC** geometric baselines (related-work comparators in
  the spirit of Zoltan and space-filling-curve methods).
"""

from __future__ import annotations

import numpy as np

from ..graph.contracts import weighted_contiguous_cuts
from ..graph.partition import partition_graph
from ..mesh.dual import mesh_to_dual_graph
from ..mesh.structures import Mesh
from ..temporal.levels import operating_costs
from .decomposition import DomainDecomposition


def _check_geometric_inputs(mesh: Mesh, num_domains: int) -> None:
    """Shared degenerate-input gate of the geometric strategies (the
    graph strategies get the same checks from
    :func:`repro.graph.contracts.validate_partition_inputs`)."""
    if num_domains < 1:
        raise ValueError("num_domains must be >= 1")
    if num_domains > mesh.num_cells:
        raise ValueError(
            f"cannot create {num_domains} non-empty parts from "
            f"{mesh.num_cells} vertices"
        )

__all__ = [
    "sc_oc_partition",
    "mc_tl_partition",
    "dual_phase_partition",
    "rcb_partition",
    "sfc_partition",
    "make_decomposition",
    "STRATEGIES",
]


def _level_indicator_matrix(tau: np.ndarray) -> np.ndarray:
    """Binary (n, L) matrix: column τ is 1 exactly for cells of level
    τ — the MC_TL constraint vectors of paper §V."""
    tau = np.asarray(tau, dtype=np.int64)
    nlev = int(tau.max()) + 1
    out = np.zeros((len(tau), nlev), dtype=np.float64)
    out[np.arange(len(tau)), tau] = 1.0
    return out


def sc_oc_partition(
    mesh: Mesh,
    tau: np.ndarray,
    num_domains: int,
    *,
    seed: int = 0,
    imbalance_tol: float = 1.05,
    method: str = "recursive",
    n_jobs: int | None = 1,
    executor: str | None = None,
    index_dtype=None,
    strict: bool = False,
) -> np.ndarray:
    """Single-Constraint Operating-Cost partitioning (the baseline).

    Returns the ``(n_cells,)`` domain assignment.
    """
    vwgt = operating_costs(tau)
    g = mesh_to_dual_graph(mesh, vwgt=vwgt, index_dtype=index_dtype)
    return partition_graph(
        g,
        num_domains,
        seed=seed,
        imbalance_tol=imbalance_tol,
        method=method,
        n_jobs=n_jobs,
        executor=executor,
        coords=mesh.cell_centers,
        strict=strict,
    ).part


def mc_tl_partition(
    mesh: Mesh,
    tau: np.ndarray,
    num_domains: int,
    *,
    seed: int = 0,
    imbalance_tol: float = 1.05,
    method: str = "recursive",
    n_jobs: int | None = 1,
    executor: str | None = None,
    index_dtype=None,
    strict: bool = False,
) -> np.ndarray:
    """Multi-Constraint Temporal-Level partitioning (the paper's
    contribution).

    Every temporal-level class is balanced across domains
    simultaneously, so every subiteration's workload is evenly spread.
    Returns the ``(n_cells,)`` domain assignment.
    """
    vwgt = _level_indicator_matrix(tau)
    g = mesh_to_dual_graph(mesh, vwgt=vwgt, index_dtype=index_dtype)
    return partition_graph(
        g,
        num_domains,
        seed=seed,
        imbalance_tol=imbalance_tol,
        method=method,
        n_jobs=n_jobs,
        executor=executor,
        coords=mesh.cell_centers,
        strict=strict,
    ).part


def dual_phase_partition(
    mesh: Mesh,
    tau: np.ndarray,
    num_processes: int,
    domains_per_process: int,
    *,
    seed: int = 0,
    imbalance_tol: float = 1.05,
    n_jobs: int | None = 1,
    executor: str | None = None,
    strict: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Dual-phase partitioning (paper §VII perspective).

    Phase 1 balances temporal levels across processes (MC_TL, one
    super-domain per process); phase 2 splits each super-domain by
    operating cost (SC_OC) to recover task granularity while keeping
    the extra communication *inside* the process.

    Returns ``(domain, domain_process)``: the per-cell domain index in
    ``[0, num_processes * domains_per_process)`` and the owning process
    of each domain.
    """
    proc_of_cell = mc_tl_partition(
        mesh,
        tau,
        num_processes,
        seed=seed,
        imbalance_tol=imbalance_tol,
        n_jobs=n_jobs,
        executor=executor,
        strict=strict,
    )
    cost = operating_costs(tau)
    g = mesh_to_dual_graph(mesh, vwgt=cost)
    domain = np.zeros(mesh.num_cells, dtype=np.int32)
    domain_process = np.zeros(
        num_processes * domains_per_process, dtype=np.int32
    )
    for p in range(num_processes):
        cells = np.flatnonzero(proc_of_cell == p)
        base = p * domains_per_process
        domain_process[base : base + domains_per_process] = p
        if domains_per_process == 1 or len(cells) <= domains_per_process:
            domain[cells] = base
            continue
        sub, mapping = g.subgraph(cells)
        labels = partition_graph(
            sub,
            domains_per_process,
            seed=seed + 1 + p,
            imbalance_tol=imbalance_tol,
            n_jobs=n_jobs,
            executor=executor,
            coords=mesh.cell_centers[mapping],
            strict=strict,
        ).part
        domain[mapping] = base + labels
    return domain, domain_process


def rcb_partition(
    mesh: Mesh,
    tau: np.ndarray,
    num_domains: int,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Recursive coordinate bisection weighted by operating cost.

    A purely geometric comparator (Zoltan-style): recursively split
    along the longest axis at the cost-weighted median.  Ignores mesh
    connectivity entirely (paper §VIII).
    """
    _check_geometric_inputs(mesh, num_domains)
    cost = operating_costs(tau)
    n = mesh.num_cells
    domain = np.zeros(n, dtype=np.int32)
    stack = [(np.arange(n, dtype=np.int64), 0, num_domains)]
    while stack:
        cells, first, k = stack.pop()
        if k <= 1:
            domain[cells] = first
            continue
        k0 = (k + 1) // 2
        pts = mesh.cell_centers[cells]
        spans = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(spans))
        order = np.argsort(pts[:, axis], kind="stable")
        csum = np.cumsum(cost[cells][order])
        total = csum[-1]
        split = int(np.searchsorted(csum, total * k0 / k)) + 1
        # Leave each side at least as many cells as it has parts, so
        # the recursion can never reach an empty cell set (skewed cost
        # distributions used to crash here).
        split = min(max(split, k0), len(cells) - (k - k0))
        stack.append((cells[order[:split]], first, k0))
        stack.append((cells[order[split:]], first + k0, k - k0))
    return domain


def sfc_partition(
    mesh: Mesh,
    tau: np.ndarray,
    num_domains: int,
    *,
    seed: int = 0,
    curve: str = "hilbert",
) -> np.ndarray:
    """Space-filling-curve partitioning weighted by operating cost.

    Cells are sorted along a space-filling curve (Hilbert by default,
    Morton optionally) and cut into ``num_domains`` consecutive chunks
    of equal operating cost — the classical CFD load-balancing method
    referenced in the paper's conclusion ([1], Aftosmis et al.).
    """
    from .sfc import sfc_order

    _check_geometric_inputs(mesh, num_domains)
    cost = operating_costs(tau)
    order = sfc_order(mesh.cell_centers, curve=curve)
    # weighted_contiguous_cuts guarantees every chunk is non-empty even
    # on heavy-tailed costs, where a plain quantile searchsorted can
    # collapse a chunk to nothing.
    domain = np.zeros(mesh.num_cells, dtype=np.int32)
    domain[order] = weighted_contiguous_cuts(cost[order], num_domains)
    return domain


#: Strategy-name → partition function (``(mesh, tau, ndomains, seed)``).
STRATEGIES = {
    "SC_OC": sc_oc_partition,
    "MC_TL": mc_tl_partition,
    "RCB": rcb_partition,
    "SFC": sfc_partition,
}


def make_decomposition(
    mesh: Mesh,
    tau: np.ndarray,
    num_domains: int,
    num_processes: int,
    *,
    strategy: str = "SC_OC",
    seed: int = 0,
    imbalance_tol: float = 1.05,
    n_jobs: int | None = 1,
    executor: str | None = None,
    index_dtype=None,
    strict: bool = False,
) -> DomainDecomposition:
    """Partition a mesh and map the domains to processes.

    ``strategy`` is one of :data:`STRATEGIES` (``"SC_OC"``,
    ``"MC_TL"``, ``"RCB"``, ``"SFC"``) or ``"DUAL"`` for the dual-phase
    scheme (which requires ``num_domains`` to be a multiple of
    ``num_processes``).  ``n_jobs``, ``executor`` (pool backend, see
    :func:`repro.pipeline.jobs.resolve_executor`) and ``index_dtype``
    (dual-graph ``adjncy`` narrowing, e.g. ``"auto"``) are forwarded
    to the graph partitioner for the strategies that use them, and
    ``strict=True`` makes the graph strategies raise
    :class:`~repro.resilience.errors.PartitionQualityError` instead of
    degrading through the fallback chain.
    """
    if strategy == "DUAL":
        if num_domains % num_processes:
            raise ValueError(
                "DUAL requires num_domains to be a multiple of num_processes"
            )
        domain, domain_process = dual_phase_partition(
            mesh,
            tau,
            num_processes,
            num_domains // num_processes,
            seed=seed,
            imbalance_tol=imbalance_tol,
            n_jobs=n_jobs,
            executor=executor,
            strict=strict,
        )
        return DomainDecomposition(
            domain=domain,
            num_domains=num_domains,
            domain_process=domain_process,
            num_processes=num_processes,
            strategy="DUAL",
        )
    try:
        fn = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from "
            f"{sorted(STRATEGIES)} or 'DUAL'"
        ) from None
    if strategy in ("SC_OC", "MC_TL"):
        domain = fn(
            mesh,
            tau,
            num_domains,
            seed=seed,
            imbalance_tol=imbalance_tol,
            n_jobs=n_jobs,
            executor=executor,
            index_dtype=index_dtype,
            strict=strict,
        )
    else:
        domain = fn(mesh, tau, num_domains, seed=seed)
    return DomainDecomposition.block_mapping(
        domain, num_domains, num_processes, strategy=strategy
    )
