"""Space-filling curves (Morton and Hilbert) for geometric
partitioning.

SFC partitioning is the classical CFD load-balancing method the
paper's conclusion cites (Aftosmis et al. [1]): sort cells along a
locality-preserving curve and cut the sequence into equal-cost chunks.
The Hilbert curve preserves locality strictly better than Morton
(no long diagonal jumps), which translates into fewer cut faces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_codes", "hilbert_codes", "sfc_order"]


def _quantize(points: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    scale = np.maximum(hi - lo, 1e-300)
    q = ((points - lo) / scale * ((1 << bits) - 1)).astype(np.uint64)
    return q[:, 0], q[:, 1]


def morton_codes(points: np.ndarray, *, bits: int = 16) -> np.ndarray:
    """Z-order (Morton) code of 2D points, ``2*bits`` significant
    bits."""
    x, y = _quantize(np.asarray(points, dtype=np.float64), bits)
    code = np.zeros(len(x), dtype=np.uint64)
    for b in range(bits):
        code |= ((x >> np.uint64(b)) & np.uint64(1)) << np.uint64(2 * b + 1)
        code |= ((y >> np.uint64(b)) & np.uint64(1)) << np.uint64(2 * b)
    return code


def hilbert_codes(points: np.ndarray, *, bits: int = 16) -> np.ndarray:
    """Hilbert-curve index of 2D points (vectorized xy→d transform).

    Standard bit-twiddling algorithm (Warren / Wikipedia ``xy2d``),
    applied to all points simultaneously.
    """
    x, y = _quantize(np.asarray(points, dtype=np.float64), bits)
    x = x.astype(np.int64)
    y = y.astype(np.int64)
    d = np.zeros(len(x), dtype=np.int64)
    s = np.int64(1) << (bits - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant so the curve stays continuous.
        rot = ry == 0
        flip = rot & (rx == 1)
        x_f = x[flip]
        y_f = y[flip]
        x[flip] = s - 1 - x_f
        y[flip] = s - 1 - y_f
        x_r = x[rot].copy()
        x[rot] = y[rot]
        y[rot] = x_r
        s >>= 1
    return d.astype(np.uint64)


def sfc_order(
    points: np.ndarray, *, curve: str = "hilbert", bits: int = 16
) -> np.ndarray:
    """Permutation sorting points along the requested curve."""
    if curve == "hilbert":
        codes = hilbert_codes(points, bits=bits)
    elif curve == "morton":
        codes = morton_codes(points, bits=bits)
    else:
        raise ValueError(f"unknown curve {curve!r}")
    return np.argsort(codes, kind="stable")
