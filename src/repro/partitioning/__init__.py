"""Partitioning strategies (SC_OC, MC_TL, dual-phase, geometric
baselines) and domain decompositions."""

from .decomposition import DomainDecomposition
from .granularity import (
    GranularityPoint,
    GranularitySearchResult,
    tune_granularity,
)
from .sfc import hilbert_codes, morton_codes, sfc_order
from .strategies import (
    STRATEGIES,
    dual_phase_partition,
    make_decomposition,
    mc_tl_partition,
    rcb_partition,
    sc_oc_partition,
    sfc_partition,
)

__all__ = [
    "DomainDecomposition",
    "sc_oc_partition",
    "mc_tl_partition",
    "dual_phase_partition",
    "rcb_partition",
    "sfc_partition",
    "make_decomposition",
    "STRATEGIES",
    "GranularityPoint",
    "GranularitySearchResult",
    "tune_granularity",
    "hilbert_codes",
    "morton_codes",
    "sfc_order",
]
