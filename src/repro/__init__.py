"""repro — Multi-Criteria Mesh Partitioning for an Explicit Temporal
Adaptive Task-Distributed Finite-Volume Solver.

A full reproduction of Lasserre et al., PDSEC 2024 (hal-04403209):
temporal-level-aware multi-constraint mesh partitioning (MC_TL) against
the classical operating-cost strategy (SC_OC), evaluated with a
reimplementation of the paper's FLUSIM task-graph simulator and a
mini-FLUSEPA finite-volume solver.

Subpackages
-----------
``repro.graph``
    From-scratch multilevel (multi-constraint) graph partitioner.
``repro.mesh``
    Quadtree FV meshes + synthetic replicas of the paper's meshes.
``repro.temporal``
    Temporal levels, operating costs, subiteration schedules.
``repro.partitioning``
    SC_OC / MC_TL / dual-phase / geometric strategies.
``repro.taskgraph``
    Algorithm 1 task generation and DAG analytics.
``repro.flusim``
    Discrete-event schedule simulator (the paper's FLUSIM).
``repro.solver``
    2D compressible-Euler solver with local time stepping.
``repro.experiments``
    One harness per table/figure of the paper.

Quickstart
----------
>>> from repro.mesh import cylinder_mesh
>>> from repro.temporal import levels_from_depth
>>> from repro.partitioning import make_decomposition
>>> from repro.taskgraph import generate_task_graph
>>> from repro.flusim import ClusterConfig, simulate
>>> mesh = cylinder_mesh(max_depth=8)
>>> tau = levels_from_depth(mesh, num_levels=4)
>>> decomp = make_decomposition(mesh, tau, 16, 4, strategy="MC_TL")
>>> dag = generate_task_graph(mesh, tau, decomp)
>>> trace = simulate(dag, ClusterConfig(4, 8))
>>> trace.makespan > 0
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
