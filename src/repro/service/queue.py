"""Crash-safe filesystem job spool for the ``repro serve`` daemon.

Layout (under one spool root)::

    <spool>/pending/<job_id>.json         submitted requests
    <spool>/running/<job_id>.json         claimed by a daemon
    <spool>/running/<job_id>.status.json  streamed progress snapshots
    <spool>/done/<job_id>.json            terminal: completed status
    <spool>/failed/<job_id>.json          terminal: typed JobFailed status

Every transition is a single atomic ``os.replace``, so a daemon (or
client) killed at any instant leaves the spool in a consistent state:
a job is in exactly one of the four directories, and a request file is
never observed half-written.  Claiming is rename-based — N daemons
polling one spool race on ``os.replace(pending/x, running/x)`` and
exactly one wins.

Job ids are **content addresses** (SHA-256 over the canonical request
JSON), so resubmitting an identical request deduplicates: the client
gets the id of the in-flight or already-completed job instead of a
second compute.

The protocol is plain JSON files; no sockets, no new dependencies —
any process that can see the filesystem can submit and poll, which is
exactly the paper's shared-cluster setting.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from ..pipeline.hashing import canonical_json
from ..pipeline.stages import STAGE_ORDER

__all__ = ["JobRequest", "JobStatus", "SpoolQueue", "JOB_STATES"]

#: Spool subdirectories, in lifecycle order.
JOB_STATES = ("pending", "running", "done", "failed")


@dataclass(frozen=True)
class JobRequest:
    """One scenario request (the unit of ``repro serve`` work).

    ``scenario`` names a registry entry; ``options`` are leaf-config
    overrides (``domains=64``, ``strategy="MC_TL"``, ...); ``through``
    stops the chain early (any of the pipeline's stage names).
    """

    scenario: str
    options: dict[str, Any] = field(default_factory=dict)
    through: str = "schedule"

    def __post_init__(self) -> None:
        if self.through not in STAGE_ORDER:
            raise ValueError(
                f"unknown stage {self.through!r}; choose from {STAGE_ORDER}"
            )

    def job_id(self) -> str:
        """Content address of this request (dedup key)."""
        payload = canonical_json(
            {
                "scenario": self.scenario,
                "options": self.options,
                "through": self.through,
            }
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRequest":
        return cls(
            scenario=str(data["scenario"]),
            options=dict(data.get("options") or {}),
            through=str(data.get("through", "schedule")),
        )


@dataclass
class JobStatus:
    """Typed job status/provenance record streamed through the spool.

    ``stages`` accumulates per-stage provenance (stage name, digest,
    cache source, wall time) as the job progresses, and survives into
    the terminal record — a failed job still reports the prefix it
    completed (*partial provenance*).
    """

    job_id: str
    state: str  # one of JOB_STATES
    request: dict[str, Any] = field(default_factory=dict)
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    worker: dict[str, Any] = field(default_factory=dict)
    stages: list[dict[str, Any]] = field(default_factory=list)
    result: dict[str, Any] | None = None
    error: str | None = None
    error_kind: str | None = None
    heartbeat: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobStatus":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in known})


def _atomic_json(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> dict[str, Any] | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


class SpoolQueue:
    """The filesystem spool (see module docstring)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        for state in JOB_STATES:
            (self.root / state).mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------
    def _job_path(self, state: str, job_id: str) -> Path:
        return self.root / state / f"{job_id}.json"

    def _status_path(self, job_id: str) -> Path:
        return self.root / "running" / f"{job_id}.status.json"

    # -- submission --------------------------------------------------------
    def submit(self, request: JobRequest) -> str:
        """Enqueue a request; returns its job id.

        Content-addressed dedup: if an identical request is already
        pending, running, done or failed, no new job is created and
        the existing id is returned.
        """
        job_id = request.job_id()
        for state in ("done", "running", "pending", "failed"):
            if self._job_path(state, job_id).exists():
                return job_id
        record = {
            "job_id": job_id,
            "request": request.to_dict(),
            "submitted_at": time.time(),
        }
        _atomic_json(self._job_path("pending", job_id), record)
        return job_id

    def resubmit(self, job_id: str) -> bool:
        """Move a failed job back to pending (retry after a fix)."""
        src = self._job_path("failed", job_id)
        record = _read_json(src)
        if record is None:
            return False
        fresh = {
            "job_id": job_id,
            "request": record.get("request", {}),
            "submitted_at": time.time(),
        }
        _atomic_json(self._job_path("pending", job_id), fresh)
        try:
            src.unlink()
        except OSError:
            pass
        return True

    # -- daemon side -------------------------------------------------------
    def claim_next(self) -> tuple[str, JobRequest, dict[str, Any]] | None:
        """Atomically claim the oldest pending job (``None`` if idle).

        Rename-based: of N daemons racing on one spool, exactly one
        ``os.replace`` succeeds per job.
        """
        pending = self.root / "pending"
        try:
            candidates = sorted(
                pending.glob("*.json"), key=lambda p: p.stat().st_mtime
            )
        except OSError:
            return None
        for path in candidates:
            target = self.root / "running" / path.name
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # another daemon won this one
            except OSError:
                continue
            record = _read_json(target)
            if record is None or "request" not in record:
                # Unreadable request: fail it with evidence rather
                # than looping on it forever.
                status = JobStatus(
                    job_id=path.stem,
                    state="failed",
                    error="unreadable job request",
                    error_kind="CorruptRequest",
                    finished_at=time.time(),
                )
                self.finish(path.stem, status)
                continue
            try:
                request = JobRequest.from_dict(record["request"])
            except (KeyError, TypeError, ValueError) as exc:
                status = JobStatus(
                    job_id=path.stem,
                    state="failed",
                    request=dict(record.get("request") or {}),
                    error=f"invalid job request: {exc}",
                    error_kind="InvalidRequest",
                    finished_at=time.time(),
                )
                self.finish(path.stem, status)
                continue
            return path.stem, request, record
        return None

    def write_status(self, status: JobStatus) -> None:
        """Stream a progress snapshot for a running job (atomic)."""
        _atomic_json(self._status_path(status.job_id), status.to_dict())

    def finish(self, job_id: str, status: JobStatus) -> None:
        """Move a job to its terminal directory with its final status."""
        if status.state not in ("done", "failed"):
            raise ValueError(f"terminal state expected, got {status.state!r}")
        _atomic_json(self._job_path(status.state, job_id), status.to_dict())
        for leftover in (
            self._job_path("running", job_id),
            self._status_path(job_id),
        ):
            try:
                leftover.unlink()
            except OSError:
                pass

    def recover_orphans(self, *, requeue: bool = True) -> list[str]:
        """Requeue running jobs whose worker daemon is gone.

        Called at daemon startup: a job stuck in ``running/`` whose
        recorded worker pid is dead (or that has no status at all) was
        orphaned by a crash; it goes back to ``pending`` so the work is
        not lost.
        """
        from ..pipeline.locking import pid_alive

        orphans: list[str] = []
        for path in (self.root / "running").glob("*.json"):
            if path.name.endswith(".status.json"):
                continue
            job_id = path.stem
            status = _read_json(self._status_path(job_id))
            pid = (status or {}).get("worker", {}).get("daemon_pid")
            if pid is not None and pid_alive(int(pid)) and pid != os.getpid():
                continue  # genuinely still being worked on
            orphans.append(job_id)
            if requeue:
                record = _read_json(path) or {}
                fresh = {
                    "job_id": job_id,
                    "request": record.get("request", {}),
                    "submitted_at": time.time(),
                    "recovered": True,
                }
                _atomic_json(self._job_path("pending", job_id), fresh)
                for leftover in (path, self._status_path(job_id)):
                    try:
                        leftover.unlink()
                    except OSError:
                        pass
        return orphans

    # -- client side ---------------------------------------------------
    def status(self, job_id: str) -> JobStatus | None:
        """The current status of a job, wherever it is in the spool."""
        for state in ("done", "failed"):
            data = _read_json(self._job_path(state, job_id))
            if data is not None:
                data.setdefault("state", state)
                return JobStatus.from_dict(data)
        if self._job_path("running", job_id).exists():
            data = _read_json(self._status_path(job_id))
            if data is not None:
                data.setdefault("state", "running")
                return JobStatus.from_dict(data)
            record = _read_json(self._job_path("running", job_id)) or {}
            return JobStatus(
                job_id=job_id,
                state="running",
                request=dict(record.get("request") or {}),
                submitted_at=float(record.get("submitted_at") or 0.0),
            )
        record = _read_json(self._job_path("pending", job_id))
        if record is not None:
            return JobStatus(
                job_id=job_id,
                state="pending",
                request=dict(record.get("request") or {}),
                submitted_at=float(record.get("submitted_at") or 0.0),
            )
        return None

    def jobs(self) -> dict[str, list[str]]:
        """Job ids by state (spool overview)."""
        out: dict[str, list[str]] = {}
        for state in JOB_STATES:
            out[state] = sorted(
                p.stem
                for p in (self.root / state).glob("*.json")
                if not p.name.endswith(".status.json")
            )
        return out
