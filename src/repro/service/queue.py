"""Crash-safe filesystem job spool for the ``repro serve`` daemon.

Layout (under one spool root)::

    <spool>/pending/<job_id>.json         submitted requests
    <spool>/running/<job_id>.json         claimed by a daemon
    <spool>/running/<job_id>.status.json  streamed progress snapshots
    <spool>/done/<job_id>.json            terminal: completed status
    <spool>/failed/<job_id>.json          terminal: typed JobFailed status
    <spool>/deadletter/<job_id>.json      terminal: quarantined poison job
    <spool>/deadletter/<job_id>.bundle/   forensic bundle (raw evidence)
    <spool>/work/<job_id>/                per-attempt scratch (progress.json)
    <spool>/health/                       daemon liveness/readiness/pressure

Every transition is a single atomic ``os.replace``, so a daemon (or
client) killed at any instant leaves the spool in a consistent state:
a job is in exactly one of the five lifecycle directories, and a
request file is never observed half-written.  Claiming is rename-based
— N daemons polling one spool race on ``os.replace(pending/x,
running/x)`` and exactly one wins.

Job ids are **content addresses** (SHA-256 over the canonical request
JSON), so resubmitting an identical request deduplicates: the client
gets the id of the in-flight or already-completed job instead of a
second compute.

**Admission control**: a queue constructed with :class:`QueueLimits`
bounds the pending tier by depth and by byte budget; past either
bound, :meth:`SpoolQueue.submit` raises the typed
:class:`~repro.resilience.errors.QueueFull` carrying a retry-after
hint instead of accepting unbounded work.  Deduplicated resubmissions
of jobs already in the spool are always admitted (they create no new
work).

**Dead-letter tier**: poison jobs — retries exhausted, or a worker
deterministically killed at the same stage twice — are quarantined
under ``deadletter/`` with a forensic bundle, and a per-digest circuit
breaker fast-fails resubmissions of a dead-lettered request with the
typed :class:`~repro.resilience.errors.CircuitOpenError` until
``deadletter retry``/``purge`` closes it.

The protocol is plain JSON files; no sockets, no new dependencies —
any process that can see the filesystem can submit and poll, which is
exactly the paper's shared-cluster setting.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from ..pipeline.hashing import canonical_json
from ..pipeline.locking import FileLock, parse_bytes, pid_alive
from ..pipeline.stages import STAGE_ORDER
from ..util.fsjson import atomic_write_json, read_json
from ..resilience.errors import CircuitOpenError, QueueFull

__all__ = [
    "JobRequest",
    "JobStatus",
    "QueueLimits",
    "SpoolQueue",
    "JOB_STATES",
    "TERMINAL_STATES",
    "stale_spool_files",
    "sweep_stale_spool",
]

#: Spool subdirectories, in lifecycle order.
JOB_STATES = ("pending", "running", "done", "failed", "deadletter")

#: States a job never leaves on its own (``deadletter`` only via the
#: operator's ``deadletter retry``).
TERMINAL_STATES = ("done", "failed", "deadletter")


@dataclass(frozen=True)
class JobRequest:
    """One scenario request (the unit of ``repro serve`` work).

    ``scenario`` names a registry entry; ``options`` are leaf-config
    overrides (``domains=64``, ``strategy="MC_TL"``, ...); ``through``
    stops the chain early (any of the pipeline's stage names).
    """

    scenario: str
    options: dict[str, Any] = field(default_factory=dict)
    through: str = "schedule"

    def __post_init__(self) -> None:
        if self.through not in STAGE_ORDER:
            raise ValueError(
                f"unknown stage {self.through!r}; choose from {STAGE_ORDER}"
            )

    def job_id(self) -> str:
        """Content address of this request (dedup key)."""
        payload = canonical_json(
            {
                "scenario": self.scenario,
                "options": self.options,
                "through": self.through,
            }
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRequest":
        return cls(
            scenario=str(data["scenario"]),
            options=dict(data.get("options") or {}),
            through=str(data.get("through", "schedule")),
        )


@dataclass
class JobStatus:
    """Typed job status/provenance record streamed through the spool.

    ``stages`` accumulates per-stage provenance (stage name, digest,
    cache source, wall time) as the job progresses, and survives into
    the terminal record — a failed job still reports the prefix it
    completed (*partial provenance*).  ``history`` is the per-attempt
    forensic log (outcome, failure kind, exit code, last completed
    stage); ``pressure``/``degradation`` record the resource state the
    job ran under and every degradation decision taken for it.
    """

    job_id: str
    state: str  # one of JOB_STATES
    request: dict[str, Any] = field(default_factory=dict)
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    worker: dict[str, Any] = field(default_factory=dict)
    stages: list[dict[str, Any]] = field(default_factory=list)
    result: dict[str, Any] | None = None
    error: str | None = None
    error_kind: str | None = None
    heartbeat: float | None = None
    history: list[dict[str, Any]] = field(default_factory=list)
    pressure: dict[str, Any] | None = None
    degradation: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobStatus":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in known})


def _atomic_json(path: Path, payload: dict[str, Any]) -> None:
    # Spool records stay indented + key-sorted: they are the protocol's
    # human-auditable surface (forensic bundles, `repro serve status`).
    atomic_write_json(path, payload, indent=1, sort_keys=True)


_read_json = read_json


@dataclass(frozen=True)
class QueueLimits:
    """Admission-control bounds for one spool.

    ``max_pending``/``max_pending_bytes`` bound the pending tier
    (``None`` = unbounded); ``retry_after`` is the base backpressure
    hint carried by :class:`~repro.resilience.errors.QueueFull` (the
    hint scales with how far past the bound the queue is, so a deeper
    overload pushes clients further away).
    """

    max_pending: int | None = None
    max_pending_bytes: int | None = None
    retry_after: float = 0.5

    @classmethod
    def from_env(cls) -> "QueueLimits":
        """``REPRO_SPOOL_MAX_PENDING`` / ``REPRO_SPOOL_MAX_BYTES``
        (unset = unbounded, the pre-admission-control behaviour)."""
        depth_raw = os.environ.get("REPRO_SPOOL_MAX_PENDING", "").strip()
        depth = int(depth_raw) if depth_raw else None
        bytes_raw = os.environ.get("REPRO_SPOOL_MAX_BYTES", "").strip()
        return cls(
            max_pending=depth,
            max_pending_bytes=parse_bytes(bytes_raw or None),
        )


class SpoolQueue:
    """The filesystem spool (see module docstring)."""

    def __init__(
        self, root: str | Path, *, limits: QueueLimits | None = None
    ) -> None:
        self.root = Path(root).expanduser()
        self.limits = limits if limits is not None else QueueLimits.from_env()
        for state in JOB_STATES:
            (self.root / state).mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------
    def _job_path(self, state: str, job_id: str) -> Path:
        return self.root / state / f"{job_id}.json"

    def _status_path(self, job_id: str) -> Path:
        return self.root / "running" / f"{job_id}.status.json"

    def _bundle_path(self, job_id: str) -> Path:
        return self.root / "deadletter" / f"{job_id}.bundle"

    def workdir(self, job_id: str) -> Path:
        return self.root / "work" / job_id

    # -- admission ---------------------------------------------------------
    def pending_load(self) -> tuple[int, int]:
        """Current pending tier load as ``(depth, bytes)``."""
        depth = 0
        nbytes = 0
        try:
            for p in (self.root / "pending").glob("*.json"):
                try:
                    nbytes += p.stat().st_size
                except OSError:
                    continue
                depth += 1
        except OSError:
            pass
        return depth, nbytes

    def _admit(self) -> None:
        """Raise :class:`QueueFull` when a new request would push the
        pending tier past its bounds."""
        limits = self.limits
        if limits.max_pending is None and limits.max_pending_bytes is None:
            return
        depth, nbytes = self.pending_load()
        if limits.max_pending is not None and depth >= limits.max_pending:
            overshoot = depth / max(limits.max_pending, 1)
            raise QueueFull(
                f"spool pending depth {depth} at its bound "
                f"{limits.max_pending}",
                retry_after=limits.retry_after * max(1.0, overshoot),
                reason="depth",
                observed=depth,
                limit=limits.max_pending,
            )
        if (
            limits.max_pending_bytes is not None
            and nbytes >= limits.max_pending_bytes
        ):
            raise QueueFull(
                f"spool pending bytes {nbytes} at the "
                f"{limits.max_pending_bytes}-byte budget",
                retry_after=limits.retry_after,
                reason="bytes",
                observed=nbytes,
                limit=limits.max_pending_bytes,
            )

    # -- submission --------------------------------------------------------
    def submit(self, request: JobRequest) -> str:
        """Enqueue a request; returns its job id.

        Content-addressed dedup: if an identical request is already
        anywhere in the spool, no new job is created and the existing
        id is returned (dedup is never rejected — it adds no work).  A
        dead-lettered identical request fast-fails with the typed
        :class:`CircuitOpenError` (breaker open); a genuinely new
        request passes admission control first and may be rejected
        with :class:`QueueFull`.
        """
        job_id = request.job_id()
        for state in ("done", "running", "pending", "failed"):
            if self._job_path(state, job_id).exists():
                return job_id
        entry = self._job_path("deadletter", job_id)
        if entry.exists():
            record = _read_json(entry) or {}
            raise CircuitOpenError(
                job_id, str(entry), reason=record.get("error_kind")
            )
        self._admit()
        record = {
            "job_id": job_id,
            "request": request.to_dict(),
            "submitted_at": time.time(),
        }
        _atomic_json(self._job_path("pending", job_id), record)
        return job_id

    def resubmit(self, job_id: str) -> bool:
        """Move a failed job back to pending (retry after a fix)."""
        src = self._job_path("failed", job_id)
        record = _read_json(src)
        if record is None:
            return False
        fresh = {
            "job_id": job_id,
            "request": record.get("request", {}),
            "submitted_at": time.time(),
        }
        _atomic_json(self._job_path("pending", job_id), fresh)
        try:
            src.unlink()
        except OSError:
            pass
        return True

    # -- daemon side -------------------------------------------------------
    def claim_next(self) -> tuple[str, JobRequest, dict[str, Any]] | None:
        """Atomically claim the oldest pending job (``None`` if idle).

        Rename-based: of N daemons racing on one spool, exactly one
        ``os.replace`` succeeds per job.
        """
        pending = self.root / "pending"
        try:
            candidates = sorted(
                pending.glob("*.json"), key=lambda p: p.stat().st_mtime
            )
        except OSError:
            return None
        for path in candidates:
            target = self.root / "running" / path.name
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # another daemon won this one
            except OSError:
                continue
            record = _read_json(target)
            if record is None or "request" not in record:
                # Unreadable request: fail it with evidence rather
                # than looping on it forever.
                status = JobStatus(
                    job_id=path.stem,
                    state="failed",
                    error="unreadable job request",
                    error_kind="CorruptRequest",
                    finished_at=time.time(),
                )
                self.finish(path.stem, status)
                continue
            try:
                request = JobRequest.from_dict(record["request"])
            except (KeyError, TypeError, ValueError) as exc:
                status = JobStatus(
                    job_id=path.stem,
                    state="failed",
                    request=dict(record.get("request") or {}),
                    error=f"invalid job request: {exc}",
                    error_kind="InvalidRequest",
                    finished_at=time.time(),
                )
                self.finish(path.stem, status)
                continue
            return path.stem, request, record
        return None

    def write_status(self, status: JobStatus) -> None:
        """Stream a progress snapshot for a running job (atomic)."""
        _atomic_json(self._status_path(status.job_id), status.to_dict())

    def finish(self, job_id: str, status: JobStatus) -> None:
        """Move a job to its terminal directory with its final status."""
        if status.state not in TERMINAL_STATES:
            raise ValueError(f"terminal state expected, got {status.state!r}")
        _atomic_json(self._job_path(status.state, job_id), status.to_dict())
        for leftover in (
            self._job_path("running", job_id),
            self._status_path(job_id),
        ):
            try:
                leftover.unlink()
            except OSError:
                pass

    def requeue(self, job_id: str, *, reason: str = "requeued") -> bool:
        """Move a running job back to pending (drain / orphan rescue).

        Pending is written before running is removed, so a crash in
        between leaves the job claimable (a duplicate pending entry
        loses the claim race and is cleaned by the winner's rename) —
        never lost.
        """
        src = self._job_path("running", job_id)
        record = _read_json(src)
        if record is None:
            return False
        fresh = {
            "job_id": job_id,
            "request": record.get("request", {}),
            "submitted_at": float(record.get("submitted_at") or time.time()),
            reason: True,
        }
        _atomic_json(self._job_path("pending", job_id), fresh)
        for leftover in (src, self._status_path(job_id)):
            try:
                leftover.unlink()
            except OSError:
                pass
        return True

    def recover_orphans(self, *, requeue: bool = True) -> list[str]:
        """Requeue running jobs whose worker daemon is gone.

        Called at daemon startup: a job stuck in ``running/`` whose
        recorded worker pid is dead (or that has no status at all) was
        orphaned by a crash; it goes back to ``pending`` so the work is
        not lost.

        The scan is serialized through an advisory ``.recover.lock``
        on the spool root: two daemons starting against one spool
        simultaneously would otherwise both observe the same orphan
        mid-requeue and double-enqueue it.  The loser skips — the
        winner's sweep covers the spool.
        """
        lock = FileLock(self.root / ".recover.lock")
        try:
            if not lock.try_acquire():
                return []
        except OSError:
            lock = None  # filesystem without locking: proceed unguarded
        orphans: list[str] = []
        try:
            for path in (self.root / "running").glob("*.json"):
                if path.name.endswith(".status.json"):
                    continue
                job_id = path.stem
                status = _read_json(self._status_path(job_id))
                pid = (status or {}).get("worker", {}).get("daemon_pid")
                if (
                    pid is not None
                    and pid_alive(int(pid))
                    and pid != os.getpid()
                ):
                    continue  # genuinely still being worked on
                orphans.append(job_id)
                if requeue:
                    self.requeue(job_id, reason="recovered")
        finally:
            if lock is not None:
                lock.release()
        return orphans

    # -- dead-letter tier --------------------------------------------------
    def deadletter(
        self,
        job_id: str,
        status: JobStatus,
        *,
        workdir: Path | None = None,
    ) -> Path:
        """Quarantine a poison job with its forensic bundle.

        The record (stage provenance, attempt/exit-code history, the
        pressure/degradation trail) lands atomically at
        ``deadletter/<job_id>.json``; raw evidence files from the
        job's scratch directory (the last ``progress.json``, the
        child's ``error.json``) are copied into
        ``deadletter/<job_id>.bundle/``.  Once the entry exists, the
        per-digest circuit breaker is **open**: resubmissions of this
        request fast-fail until :meth:`deadletter_retry` or
        :meth:`deadletter_purge`.
        """
        status.state = "deadletter"
        bundle = self._bundle_path(job_id)
        if workdir is not None and workdir.is_dir():
            bundle.mkdir(parents=True, exist_ok=True)
            for name in ("progress.json", "error.json", "result.json"):
                src = workdir / name
                if src.is_file():
                    try:
                        shutil.copy2(src, bundle / name)
                    except OSError:
                        pass
        self.finish(job_id, status)
        return self._job_path("deadletter", job_id)

    def deadletter_list(self) -> list[str]:
        """Dead-lettered job ids (each one an open breaker)."""
        return sorted(
            p.stem
            for p in (self.root / "deadletter").glob("*.json")
        )

    def deadletter_show(self, job_id: str) -> dict[str, Any] | None:
        """The full forensic record of one dead-lettered job."""
        record = _read_json(self._job_path("deadletter", job_id))
        if record is None:
            return None
        bundle = self._bundle_path(job_id)
        if bundle.is_dir():
            record["bundle"] = {
                p.name: _read_json(p) for p in sorted(bundle.glob("*.json"))
            }
        return record

    def deadletter_retry(self, job_id: str) -> bool:
        """Close the breaker and re-admit the job (operator action).

        The entry and its bundle are removed and the original request
        goes back to ``pending`` — the one path by which a
        dead-lettered digest becomes runnable again.
        """
        src = self._job_path("deadletter", job_id)
        record = _read_json(src)
        if record is None:
            return False
        fresh = {
            "job_id": job_id,
            "request": record.get("request", {}),
            "submitted_at": time.time(),
            "deadletter_retried": True,
        }
        _atomic_json(self._job_path("pending", job_id), fresh)
        try:
            src.unlink()
        except OSError:
            pass
        shutil.rmtree(self._bundle_path(job_id), ignore_errors=True)
        return True

    def deadletter_purge(self, job_id: str | None = None) -> list[str]:
        """Discard dead-letter entries (all of them when ``job_id`` is
        ``None``); their breakers close with the evidence."""
        targets = [job_id] if job_id is not None else self.deadletter_list()
        purged: list[str] = []
        for jid in targets:
            path = self._job_path("deadletter", jid)
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            except OSError:
                continue
            shutil.rmtree(self._bundle_path(jid), ignore_errors=True)
            purged.append(jid)
        return purged

    def breaker_open(self, request: JobRequest | str) -> bool:
        """Whether the per-digest breaker for this request is open."""
        job_id = (
            request if isinstance(request, str) else request.job_id()
        )
        return self._job_path("deadletter", job_id).exists()

    # -- client side ---------------------------------------------------
    def status(self, job_id: str) -> JobStatus | None:
        """The current status of a job, wherever it is in the spool."""
        for state in TERMINAL_STATES:
            data = _read_json(self._job_path(state, job_id))
            if data is not None:
                data.setdefault("state", state)
                return JobStatus.from_dict(data)
        if self._job_path("running", job_id).exists():
            data = _read_json(self._status_path(job_id))
            if data is not None:
                data.setdefault("state", "running")
                return JobStatus.from_dict(data)
            record = _read_json(self._job_path("running", job_id)) or {}
            return JobStatus(
                job_id=job_id,
                state="running",
                request=dict(record.get("request") or {}),
                submitted_at=float(record.get("submitted_at") or 0.0),
            )
        record = _read_json(self._job_path("pending", job_id))
        if record is not None:
            return JobStatus(
                job_id=job_id,
                state="pending",
                request=dict(record.get("request") or {}),
                submitted_at=float(record.get("submitted_at") or 0.0),
            )
        return None

    def jobs(self) -> dict[str, list[str]]:
        """Job ids by state (spool overview)."""
        out: dict[str, list[str]] = {}
        for state in JOB_STATES:
            out[state] = sorted(
                p.stem
                for p in (self.root / state).glob("*.json")
                if not p.name.endswith(".status.json")
            )
        return out


# ----------------------------------------------------------------------
# Stale-spool garbage collection (``repro gc --spool``)
# ----------------------------------------------------------------------
def stale_spool_files(root: str | Path) -> list[Path]:
    """Spool litter left by dead daemons, pid-checked.

    Two classes, both attributable to a pid that no longer exists:

    * ``*.tmp<pid>`` files anywhere in the spool — torn atomic writes
      from a daemon/client killed between ``write_text`` and
      ``os.replace``;
    * ``work/<job_id>/`` scratch directories (holding ``progress.json``
      etc.) whose job is no longer running, or whose recorded worker
      daemon pid is dead.

    Files owned by live pids are never touched.
    """
    spool = Path(root).expanduser()
    stale: list[Path] = []
    if not spool.is_dir():
        return stale
    for sub in (*JOB_STATES, "health"):
        directory = spool / sub
        try:
            entries = list(directory.iterdir())
        except OSError:
            continue
        for path in entries:
            _, sep, pid_text = path.name.rpartition(".tmp")
            if not sep or not pid_text.isdigit():
                continue
            pid = int(pid_text)
            if pid != os.getpid() and not pid_alive(pid):
                stale.append(path)
    workroot = spool / "work"
    try:
        workdirs = [p for p in workroot.iterdir() if p.is_dir()]
    except OSError:
        workdirs = []
    queue = SpoolQueue.__new__(SpoolQueue)  # paths only; no mkdir
    queue.root = spool
    for workdir in workdirs:
        job_id = workdir.name
        running = spool / "running" / f"{job_id}.json"
        if not running.exists():
            stale.append(workdir)
            continue
        status = _read_json(queue._status_path(job_id))
        pid = (status or {}).get("worker", {}).get("daemon_pid")
        if pid is None:
            continue  # claimed but unattributed yet: assume live
        if int(pid) == os.getpid() or pid_alive(int(pid)):
            continue
        stale.append(workdir)
    return stale


def sweep_stale_spool(root: str | Path, *, remove: bool = True) -> list[str]:
    """Reclaim dead daemons' spool litter; returns the affected names.

    With ``remove=False`` (``repro gc --dry-run``) only reports.
    Races with a concurrent sweep are benign — already-deleted entries
    are skipped.
    """
    swept: list[str] = []
    for path in stale_spool_files(root):
        if remove:
            try:
                if path.is_dir():
                    shutil.rmtree(path)
                else:
                    path.unlink()
            except FileNotFoundError:
                continue
            except OSError:
                continue
        swept.append(path.name)
    return swept
