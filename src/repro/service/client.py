"""Client side of the ``repro serve`` spool protocol.

``ServiceClient`` talks to the same filesystem spool the daemon polls:
submit a :class:`~repro.service.queue.JobRequest` (content-addressed —
identical requests dedupe to one job), poll its typed
:class:`~repro.service.queue.JobStatus`, block until it reaches a
terminal state, and fetch the result — raising the typed
:class:`~repro.resilience.errors.JobFailedError` (with the partial
per-stage provenance intact) when the daemon gave up on it.

The client is a *well-behaved* tenant of an overloaded service:

* :meth:`submit` with ``block=True`` honors the ``retry_after`` hint
  carried by :class:`~repro.resilience.errors.QueueFull` instead of
  hammering a spool that just rejected it;
* :meth:`wait` polls with jittered exponential backoff (base ``poll``,
  factor 2, cap ``poll_cap``, ±50% jitter) so a thousand clients
  waiting on one spool do not synchronize into a stat() stampede;
* a dead-lettered job surfaces as :class:`JobFailedError` with the
  quarantine diagnosis — and resubmitting it trips the typed
  :class:`~repro.resilience.errors.CircuitOpenError` breaker until an
  operator re-admits or purges the entry.
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from typing import Any

from ..resilience.errors import JobFailedError, QueueFull
from .queue import TERMINAL_STATES, JobRequest, JobStatus, SpoolQueue

__all__ = ["ServiceClient"]


class ServiceClient:
    """Submit / poll / wait / fetch against one spool root."""

    def __init__(
        self,
        spool: str | Path | SpoolQueue,
        *,
        rng: random.Random | None = None,
    ) -> None:
        self.queue = spool if isinstance(spool, SpoolQueue) else SpoolQueue(spool)
        # Own jitter source: deterministic under injection, and never
        # couples to the global random state of the caller.
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    def submit(
        self,
        scenario: str,
        *,
        options: dict[str, Any] | None = None,
        through: str = "schedule",
        block: bool = False,
        timeout: float | None = None,
    ) -> str:
        """Enqueue a scenario request; returns its (deduped) job id.

        When admission control rejects the request
        (:class:`QueueFull`), ``block=False`` re-raises immediately;
        ``block=True`` sleeps the server's ``retry_after`` hint
        (jittered) and resubmits until admitted or ``timeout`` elapses
        (then re-raises the last :class:`QueueFull`).
        """
        request = JobRequest(
            scenario=scenario,
            options=dict(options or {}),
            through=through,
        )
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                return self.queue.submit(request)
            except QueueFull as exc:
                if not block:
                    raise
                delay = max(0.01, exc.retry_after) * self._rng.uniform(
                    0.5, 1.5
                )
                if (
                    deadline is not None
                    and time.monotonic() + delay > deadline
                ):
                    raise
                time.sleep(delay)

    def submit_many(
        self,
        scenario: str,
        options_list: list[dict[str, Any]],
        *,
        through: str = "schedule",
        block: bool = False,
        timeout: float | None = None,
    ) -> list[str]:
        """Submit one scenario under many option sets (a sweep) and
        return the job ids, in order.

        The natural feeder for a ``--dag`` daemon: jobs submitted
        together land in one claim batch and their shared prefixes
        collapse into single plan nodes.
        """
        return [
            self.submit(
                scenario,
                options=options,
                through=through,
                block=block,
                timeout=timeout,
            )
            for options in options_list
        ]

    def wait_many(
        self,
        job_ids: list[str],
        *,
        timeout: float | None = None,
        poll: float = 0.1,
        poll_cap: float = 2.0,
    ) -> list[JobStatus]:
        """Block until *every* job is terminal; statuses in input
        order.  ``timeout`` bounds the whole batch, not each job."""
        deadline = None if timeout is None else time.monotonic() + timeout
        statuses = []
        for job_id in job_ids:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            statuses.append(
                self.wait(
                    job_id,
                    timeout=remaining,
                    poll=poll,
                    poll_cap=poll_cap,
                )
            )
        return statuses

    def status(self, job_id: str) -> JobStatus | None:
        """Current typed status (``None`` for an unknown id)."""
        return self.queue.status(job_id)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll: float = 0.1,
        poll_cap: float = 2.0,
    ) -> JobStatus:
        """Block until the job is terminal (``done``, ``failed`` or
        ``deadletter``).

        Polls with jittered exponential backoff from ``poll`` up to
        ``poll_cap`` seconds.  Raises :class:`TimeoutError` when
        ``timeout`` elapses first and :class:`KeyError` for an unknown
        job id.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = max(1e-3, poll)
        while True:
            status = self.queue.status(job_id)
            if status is None:
                raise KeyError(f"unknown job id {job_id!r}")
            if status.state in TERMINAL_STATES:
                return status
            sleep = min(delay, poll_cap) * self._rng.uniform(0.5, 1.5)
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {status.state} "
                        f"after {timeout:g}s"
                    )
                sleep = min(sleep, remaining)
            time.sleep(sleep)
            delay = min(delay * 2.0, poll_cap)

    def result(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll: float = 0.1,
    ) -> dict[str, Any]:
        """The result payload of a completed job (waits if needed).

        Raises :class:`~repro.resilience.errors.JobFailedError` for a
        job that reached the typed ``failed`` or ``deadletter`` state.
        """
        status = self.wait(job_id, timeout=timeout, poll=poll)
        if status.state in ("failed", "deadletter"):
            raise JobFailedError(
                job_id,
                status.error or f"job {status.state}",
                kind=status.error_kind,
                attempts=status.attempts,
                stages=status.stages,
            )
        return dict(status.result or {})

    def run(
        self,
        scenario: str,
        *,
        options: dict[str, Any] | None = None,
        through: str = "schedule",
        timeout: float | None = None,
        block: bool = False,
    ) -> dict[str, Any]:
        """Submit and block for the result (one-call convenience)."""
        job_id = self.submit(
            scenario,
            options=options,
            through=through,
            block=block,
            timeout=timeout,
        )
        return self.result(job_id, timeout=timeout)
