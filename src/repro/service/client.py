"""Client side of the ``repro serve`` spool protocol.

``ServiceClient`` talks to the same filesystem spool the daemon polls:
submit a :class:`~repro.service.queue.JobRequest` (content-addressed —
identical requests dedupe to one job), poll its typed
:class:`~repro.service.queue.JobStatus`, block until it reaches a
terminal state, and fetch the result — raising the typed
:class:`~repro.resilience.errors.JobFailedError` (with the partial
per-stage provenance intact) when the daemon gave up on it.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from ..resilience.errors import JobFailedError
from .queue import JobRequest, JobStatus, SpoolQueue

__all__ = ["ServiceClient"]


class ServiceClient:
    """Submit / poll / wait / fetch against one spool root."""

    def __init__(self, spool: str | Path | SpoolQueue) -> None:
        self.queue = spool if isinstance(spool, SpoolQueue) else SpoolQueue(spool)

    # ------------------------------------------------------------------
    def submit(
        self,
        scenario: str,
        *,
        options: dict[str, Any] | None = None,
        through: str = "schedule",
    ) -> str:
        """Enqueue a scenario request; returns its (deduped) job id."""
        request = JobRequest(
            scenario=scenario,
            options=dict(options or {}),
            through=through,
        )
        return self.queue.submit(request)

    def status(self, job_id: str) -> JobStatus | None:
        """Current typed status (``None`` for an unknown id)."""
        return self.queue.status(job_id)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll: float = 0.1,
    ) -> JobStatus:
        """Block until the job is terminal (``done`` or ``failed``).

        Raises :class:`TimeoutError` when ``timeout`` elapses first and
        :class:`KeyError` for an unknown job id.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.queue.status(job_id)
            if status is None:
                raise KeyError(f"unknown job id {job_id!r}")
            if status.state in ("done", "failed"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.state} after {timeout:g}s"
                )
            time.sleep(poll)

    def result(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll: float = 0.1,
    ) -> dict[str, Any]:
        """The result payload of a completed job (waits if needed).

        Raises :class:`~repro.resilience.errors.JobFailedError` for a
        job that reached the typed ``failed`` state.
        """
        status = self.wait(job_id, timeout=timeout, poll=poll)
        if status.state == "failed":
            raise JobFailedError(
                job_id,
                status.error or "job failed",
                kind=status.error_kind,
                attempts=status.attempts,
                stages=status.stages,
            )
        return dict(status.result or {})

    def run(
        self,
        scenario: str,
        *,
        options: dict[str, Any] | None = None,
        through: str = "schedule",
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Submit and block for the result (one-call convenience)."""
        job_id = self.submit(scenario, options=options, through=through)
        return self.result(job_id, timeout=timeout)
