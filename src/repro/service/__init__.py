"""The ``repro serve`` job service: an overload-safe scenario daemon
over the cross-process artifact store.

Three layers, no hard dependencies beyond the standard library:

* :mod:`repro.service.queue` — a crash-safe filesystem spool
  (``pending/ → running/ → done|failed|deadletter/``) with
  content-addressed job ids, atomic rename-based claiming, typed
  :class:`~repro.service.queue.JobStatus` records, bounded admission
  (:class:`~repro.service.queue.QueueLimits` →
  :class:`~repro.resilience.errors.QueueFull` with a retry-after
  hint), a dead-letter quarantine with forensic bundles, and the
  per-digest circuit breaker
  (:class:`~repro.resilience.errors.CircuitOpenError`);
* :mod:`repro.service.daemon` — the long-running worker: claims jobs,
  runs each scenario chain in a child process (so a worker death is a
  recoverable event, not a daemon crash), retries with the runtime's
  :class:`~repro.runtime.executor.RetryPolicy` backoff, enforces a
  per-stage progress watchdog, dead-letters poison jobs, drains
  cleanly on SIGTERM/SIGINT (finish-or-requeue, liveness/readiness
  heartbeats), and degrades gracefully under the
  :class:`~repro.resilience.sentinel.ResourceSentinel`'s pressure
  verdicts;
* :mod:`repro.service.client` — submit / poll / wait / fetch, with
  jittered-backoff polling and retry-after-honoring submission.

Deduplication is by content address twice over: identical requests
collapse to one job id in the spool, and distinct jobs sharing a chain
prefix share the underlying artifacts through the store's per-digest
claims — N concurrent workers never recompute one digest.
"""

from .client import ServiceClient
from .daemon import ServeDaemon, read_health
from .queue import (
    TERMINAL_STATES,
    JobRequest,
    JobStatus,
    QueueLimits,
    SpoolQueue,
    stale_spool_files,
    sweep_stale_spool,
)

__all__ = [
    "JobRequest",
    "JobStatus",
    "QueueLimits",
    "SpoolQueue",
    "TERMINAL_STATES",
    "ServeDaemon",
    "ServiceClient",
    "read_health",
    "stale_spool_files",
    "sweep_stale_spool",
]
