"""The ``repro serve`` job service: a resilient scenario daemon over
the cross-process artifact store.

Three layers, no hard dependencies beyond the standard library:

* :mod:`repro.service.queue` — a crash-safe filesystem spool
  (``pending/ → running/ → done|failed/``) with content-addressed job
  ids, atomic rename-based claiming and typed
  :class:`~repro.service.queue.JobStatus` records;
* :mod:`repro.service.daemon` — the long-running worker: claims jobs,
  runs each scenario chain in a child process (so a worker death is a
  recoverable event, not a daemon crash), retries with the runtime's
  :class:`~repro.runtime.executor.RetryPolicy` backoff, enforces a
  per-stage progress watchdog, and streams per-stage provenance back
  through the spool;
* :mod:`repro.service.client` — submit / poll / wait / fetch.

Deduplication is by content address twice over: identical requests
collapse to one job id in the spool, and distinct jobs sharing a chain
prefix share the underlying artifacts through the store's per-digest
claims — N concurrent workers never recompute one digest.
"""

from .client import ServiceClient
from .daemon import ServeDaemon
from .queue import JobRequest, JobStatus, SpoolQueue

__all__ = [
    "JobRequest",
    "JobStatus",
    "SpoolQueue",
    "ServeDaemon",
    "ServiceClient",
]
