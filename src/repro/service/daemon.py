"""The ``repro serve`` daemon: a resilient scenario-serving worker.

The daemon polls a :class:`~repro.service.queue.SpoolQueue`, claims
jobs, and runs each scenario chain **in a child process** — the unit
of failure is the job, not the daemon.  A worker that dies mid-stage
(segfault, OOM-kill, a chaos harness's injected kill) is observed as a
child exit, retried with the runtime's
:class:`~repro.runtime.executor.RetryPolicy` exponential backoff, and
only after the budget is exhausted surfaced as a typed ``JobFailed``
record — with the per-stage provenance the job managed to stream
before dying intact.

Robustness properties:

* **per-stage watchdog** — the child streams a progress record after
  every pipeline stage; if no progress lands within ``watchdog``
  seconds the child is terminated and the attempt counts as a worker
  death (retryable);
* **crash-safe store** — the child runs against the cross-process
  artifact store, so a retried attempt reuses every stage the dead
  attempt already published, and concurrent daemons sharing a store
  never recompute one digest;
* **graceful degradation** — disk-full/permission errors inside the
  store drop it to memory-only with a warning instead of failing the
  job (see :class:`~repro.pipeline.store.ArtifactStore`);
* **orphan recovery** — on startup, running jobs whose daemon pid is
  dead are requeued (:meth:`SpoolQueue.recover_orphans`).

Chaos hook: a seeded
:class:`~repro.resilience.faults.FaultPlan` may be installed; its
``transient`` decisions kill the job's child process after its first
completed stage — deterministic worker death for the chaos suite, in
exactly the idiom the campaign driver uses for task-level faults.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import socket
import time
import warnings
from pathlib import Path
from typing import Any

from ..resilience.faults import FaultPlan
from ..runtime.executor import RetryPolicy
from .queue import JobRequest, JobStatus, SpoolQueue

__all__ = ["ServeDaemon"]

#: Child exit codes (picked clear of Python/shell conventions).
_EXIT_TRANSIENT = 75  # EX_TEMPFAIL: retryable typed failure
_EXIT_PERMANENT = 70  # EX_SOFTWARE: typed permanent failure
_EXIT_CHAOS = 86  # injected worker death (chaos harness)


def _atomic_json(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)


def _read_json(path: Path) -> dict[str, Any] | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def _child_main(
    request_dict: dict[str, Any],
    store_root: str | None,
    workdir: str,
    chaos_kill_after: str | None = None,
) -> None:
    """Job body, run in a spawned child process.

    Streams a progress record after every completed stage (the
    parent's watchdog heartbeat *and* the partial provenance a failed
    job reports), then an atomic result file.  Typed failures exit
    with a dedicated code and leave an error record; anything that
    kills the process outright is the parent's problem to observe.
    """
    work = Path(workdir)
    progress_path = work / "progress.json"
    result_path = work / "result.json"
    error_path = work / "error.json"
    try:
        from ..pipeline import ArtifactStore, Pipeline, get_scenario
        from ..pipeline.stages import STAGE_ORDER
        from ..resilience.errors import TransientError

        try:
            request = JobRequest.from_dict(request_dict)
            scenario = get_scenario(request.scenario, **request.options)
            store = (
                ArtifactStore(store_root) if store_root else None
            )
            pipe = Pipeline(store)
            stop = STAGE_ORDER.index(request.through)
            stages: list[dict[str, Any]] = []
            rec = None
            for name in STAGE_ORDER[: stop + 1]:
                rec = pipe.run(scenario, through=name)
                sr = rec.provenance[name]
                stages.append(
                    {
                        "stage": name,
                        "digest": sr.digest,
                        "cache": sr.cache,
                        "wall_time": sr.wall_time,
                        "finished_at": time.time(),
                    }
                )
                _atomic_json(
                    progress_path,
                    {"stages": stages, "heartbeat": time.time()},
                )
                if chaos_kill_after == name:
                    os._exit(_EXIT_CHAOS)  # injected worker death
            result: dict[str, Any] = {"stages": stages}
            if rec is not None and rec.metrics is not None:
                result["metrics"] = {
                    "makespan": float(rec.metrics.makespan),
                    "efficiency": float(rec.metrics.efficiency),
                }
            result["cache_hits"] = rec.cache_hits if rec is not None else 0
            if store is not None and store.stats.degraded:
                result["store_degraded"] = store.stats.degraded
            _atomic_json(result_path, result)
        except TransientError as exc:
            _atomic_json(
                error_path,
                {"kind": "TransientError", "message": str(exc)},
            )
            os._exit(_EXIT_TRANSIENT)
        except Exception as exc:  # typed permanent failure
            _atomic_json(
                error_path,
                {"kind": type(exc).__name__, "message": str(exc)},
            )
            os._exit(_EXIT_PERMANENT)
    except BaseException:
        # Last resort (import failure, broken workdir): die visibly so
        # the parent counts a worker death instead of hanging.
        os._exit(1)


class ServeDaemon:
    """Claim → run-in-child → retry → publish, forever (or bounded).

    Parameters
    ----------
    spool:
        Spool root directory (shared with clients) or a
        :class:`SpoolQueue`.
    store_root:
        Artifact-store root the job children run against (``None`` =
        each child memory-only; normally the shared ``--artifacts``
        dir).
    retry:
        :class:`RetryPolicy` for worker deaths and transient job
        failures (``max_retries`` per job, exponential ``backoff``).
        ``None`` uses ``RetryPolicy(max_retries=2)``.
    watchdog:
        Per-stage progress deadline in seconds; a child that streams
        no progress for this long is terminated and retried.  ``None``
        disables it.
    poll:
        Spool poll interval while idle.
    fault_plan:
        Optional seeded chaos hook (see module docstring).
    """

    def __init__(
        self,
        spool: str | Path | SpoolQueue,
        *,
        store_root: str | Path | None = None,
        retry: RetryPolicy | None = None,
        watchdog: float | None = None,
        poll: float = 0.2,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.queue = spool if isinstance(spool, SpoolQueue) else SpoolQueue(spool)
        self.store_root = str(store_root) if store_root is not None else None
        self.retry = retry if retry is not None else RetryPolicy(max_retries=2)
        if watchdog is not None and watchdog <= 0:
            raise ValueError("watchdog deadline must be positive")
        self.watchdog = watchdog
        self.poll = poll
        self.fault_plan = fault_plan
        self._job_seq = 0
        self._ctx = multiprocessing.get_context("spawn")

    # ------------------------------------------------------------------
    def recover(self) -> list[str]:
        """Requeue orphaned running jobs (call once at startup)."""
        orphans = self.queue.recover_orphans()
        for job_id in orphans:
            warnings.warn(
                f"requeued orphaned job {job_id} (its daemon is gone)",
                RuntimeWarning,
                stacklevel=2,
            )
        return orphans

    def serve_forever(
        self,
        *,
        max_jobs: int | None = None,
        idle_timeout: float | None = None,
        deadline: float | None = None,
    ) -> int:
        """Process jobs until a bound trips; returns the job count.

        ``max_jobs`` stops after N jobs; ``idle_timeout`` stops after
        that many seconds without work; ``deadline`` is an absolute
        wall budget in seconds.
        """
        self.recover()
        done = 0
        t0 = time.monotonic()
        idle_since = time.monotonic()
        while True:
            if max_jobs is not None and done >= max_jobs:
                return done
            if deadline is not None and time.monotonic() - t0 > deadline:
                return done
            claimed = self.queue.claim_next()
            if claimed is None:
                if (
                    idle_timeout is not None
                    and time.monotonic() - idle_since > idle_timeout
                ):
                    return done
                time.sleep(self.poll)
                continue
            idle_since = time.monotonic()
            job_id, request, record = claimed
            self.process_job(job_id, request, record)
            done += 1

    # ------------------------------------------------------------------
    def process_job(
        self,
        job_id: str,
        request: JobRequest,
        record: dict[str, Any] | None = None,
    ) -> JobStatus:
        """Run one claimed job to a terminal state (with retries)."""
        self._job_seq += 1
        seq = self._job_seq
        status = JobStatus(
            job_id=job_id,
            state="running",
            request=request.to_dict(),
            submitted_at=float((record or {}).get("submitted_at") or 0.0),
            started_at=time.time(),
            worker={
                "daemon_pid": os.getpid(),
                "hostname": socket.gethostname(),
            },
        )
        workdir = self.queue.root / "work" / job_id
        policy = self.retry
        attempt = 0
        while True:
            status.attempts = attempt + 1
            self.queue.write_status(status)
            outcome, detail = self._run_attempt(
                job_id, request, workdir, status, seq, attempt
            )
            if outcome == "done":
                status.state = "done"
                status.result = detail
                status.stages = list(detail.get("stages") or status.stages)
                status.finished_at = time.time()
                break
            retryable = outcome in ("death", "timeout", "transient")
            if retryable and attempt < policy.max_retries:
                delay = policy.delay(attempt + 1)
                warnings.warn(
                    f"job {job_id} attempt {attempt + 1} failed "
                    f"({outcome}: {detail.get('message')}); retrying"
                    + (f" in {delay:.3g}s" if delay > 0 else ""),
                    RuntimeWarning,
                    stacklevel=2,
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            # Typed JobFailed: terminal, with partial provenance.
            status.state = "failed"
            status.error = str(detail.get("message") or outcome)
            status.error_kind = str(detail.get("kind") or outcome)
            status.finished_at = time.time()
            break
        self.queue.finish(job_id, status)
        shutil.rmtree(workdir, ignore_errors=True)
        return status

    # ------------------------------------------------------------------
    def _chaos_kill_stage(self, seq: int, attempt: int) -> str | None:
        """Seeded worker-death injection (chaos suite only)."""
        if self.fault_plan is None:
            return None
        hits = self.fault_plan.decide(seq, attempt)
        if any(s.kind == "transient" for s in hits):
            with self.fault_plan._lock:
                self.fault_plan.injected["worker_death"] += 1
            from ..pipeline.stages import STAGE_ORDER

            return STAGE_ORDER[0]
        return None

    def _run_attempt(
        self,
        job_id: str,
        request: JobRequest,
        workdir: Path,
        status: JobStatus,
        seq: int,
        attempt: int,
    ) -> tuple[str, dict[str, Any]]:
        """One child-process attempt.

        Returns ``(outcome, detail)`` with outcome one of ``"done"``,
        ``"death"``, ``"timeout"``, ``"transient"``, ``"permanent"``.
        """
        shutil.rmtree(workdir, ignore_errors=True)
        workdir.mkdir(parents=True, exist_ok=True)
        progress_path = workdir / "progress.json"
        result_path = workdir / "result.json"
        error_path = workdir / "error.json"

        child = self._ctx.Process(
            target=_child_main,
            args=(
                request.to_dict(),
                self.store_root,
                str(workdir),
                self._chaos_kill_stage(seq, attempt),
            ),
            daemon=True,
        )
        child.start()
        status.worker["child_pid"] = child.pid
        last_progress = time.monotonic()
        last_mtime = 0.0
        timed_out = False
        while True:
            child.join(timeout=min(self.poll, 0.1))
            try:
                mtime = progress_path.stat().st_mtime
            except OSError:
                mtime = 0.0
            if mtime > last_mtime:
                last_mtime = mtime
                last_progress = time.monotonic()
                progress = _read_json(progress_path)
                if progress is not None:
                    status.stages = list(progress.get("stages") or [])
            status.heartbeat = time.time()
            self.queue.write_status(status)
            if not child.is_alive():
                break
            if (
                self.watchdog is not None
                and time.monotonic() - last_progress > self.watchdog
            ):
                timed_out = True
                child.terminate()
                child.join(timeout=5.0)
                if child.is_alive():  # pragma: no cover - defensive
                    child.kill()
                    child.join(timeout=5.0)
                break
        code = child.exitcode
        child.close()
        if timed_out:
            return "timeout", {
                "kind": "StageTimeout",
                "message": (
                    f"no stage progress for {self.watchdog:g}s "
                    f"(attempt {attempt + 1})"
                ),
            }
        if code == 0:
            result = _read_json(result_path)
            if result is None:
                return "death", {
                    "kind": "WorkerDeath",
                    "message": "child exited cleanly but left no result",
                }
            return "done", result
        error = _read_json(error_path)
        if code == _EXIT_TRANSIENT:
            return "transient", error or {
                "kind": "TransientError",
                "message": "transient job failure",
            }
        if code == _EXIT_PERMANENT and error is not None:
            return "permanent", error
        return "death", {
            "kind": "WorkerDeath",
            "message": f"worker died with exit code {code}",
        }
